"""Generic control-flow graphs.

A :class:`CFG` partitions a linear instruction sequence into basic blocks
and records edges between them.  It is deliberately representation-
agnostic: the builders in :mod:`repro.analyze.ircfg` (mini-C IR) and
:mod:`repro.analyze.machine` (linked machine code) both produce this same
structure, so the dataflow solver and the dominator computation are written
exactly once.

Instruction indices are always indices into the *original* sequence the
CFG was built from — never block-relative — so diagnostics can point at
real program locations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple


class BasicBlock:
    """A maximal straight-line region ``[start, end)`` of the sequence."""

    __slots__ = ("index", "start", "end", "succ", "pred")

    def __init__(self, index: int, start: int, end: int):
        self.index = index
        self.start = start
        self.end = end
        self.succ: List[int] = []
        self.pred: List[int] = []

    def __repr__(self) -> str:
        return (f"BasicBlock(#{self.index}, [{self.start}:{self.end}), "
                f"succ={self.succ})")


class CFG:
    """Basic blocks over an instruction sequence, plus edges.

    The entry block is always block 0 (the block containing the first
    instruction).  Blocks with no successors are exits.
    """

    def __init__(self, instrs: Sequence, blocks: List[BasicBlock]):
        self.instrs = instrs
        self.blocks = blocks
        self._block_of_index: Dict[int, int] = {
            b.start: b.index for b in blocks
        }

    # -- construction helpers ------------------------------------------------

    def add_edge(self, src: int, dst: int) -> None:
        """Wire ``src -> dst`` (idempotent)."""
        if dst not in self.blocks[src].succ:
            self.blocks[src].succ.append(dst)
            self.blocks[dst].pred.append(src)

    def block_at(self, instr_index: int) -> int:
        """Index of the block whose first instruction is *instr_index*."""
        return self._block_of_index[instr_index]

    # -- queries -------------------------------------------------------------

    def block_instrs(self, block_index: int):
        """``(instruction index, instruction)`` pairs of one block."""
        block = self.blocks[block_index]
        for i in range(block.start, block.end):
            yield i, self.instrs[i]

    def reachable(self) -> Set[int]:
        """Block indices reachable from the entry block."""
        if not self.blocks:
            return set()
        seen = {0}
        stack = [0]
        while stack:
            for succ in self.blocks[stack.pop()].succ:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def postorder(self) -> List[int]:
        """Postorder over reachable blocks (iterative DFS from entry)."""
        if not self.blocks:
            return []
        order: List[int] = []
        visited = set()
        # (block, next-successor-position) stack for an iterative DFS.
        stack: List[Tuple[int, int]] = [(0, 0)]
        visited.add(0)
        while stack:
            block, pos = stack[-1]
            succs = self.blocks[block].succ
            if pos < len(succs):
                stack[-1] = (block, pos + 1)
                nxt = succs[pos]
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                order.append(block)
        return order

    def rpo(self) -> List[int]:
        """Reverse postorder (the canonical forward-analysis order)."""
        return list(reversed(self.postorder()))


def build_blocks(instrs: Sequence, leaders: Set[int]) -> List[BasicBlock]:
    """Cut *instrs* at the given leader indices into :class:`BasicBlock`s.

    Index 0 is always a leader; leaders outside ``[0, len)`` are ignored.
    """
    if not len(instrs):
        return []
    starts = sorted({0} | {i for i in leaders if 0 <= i < len(instrs)})
    blocks: List[BasicBlock] = []
    for bi, start in enumerate(starts):
        end = starts[bi + 1] if bi + 1 < len(starts) else len(instrs)
        blocks.append(BasicBlock(bi, start, end))
    return blocks


def dominators(cfg: CFG) -> List[Optional[int]]:
    """Immediate dominator of every block (Cooper-Harvey-Kennedy).

    Returns ``idom[b]`` for each block index; the entry block's idom is
    itself, and unreachable blocks get ``None``.
    """
    if not cfg.blocks:
        return []
    rpo = cfg.rpo()
    order = {b: i for i, b in enumerate(rpo)}
    idom: List[Optional[int]] = [None] * len(cfg.blocks)
    idom[0] = 0

    def intersect(a: int, b: int) -> int:
        while a != b:
            while order[a] > order[b]:
                a = idom[a]  # type: ignore[assignment]
            while order[b] > order[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for block in rpo:
            if block == 0:
                continue
            new_idom: Optional[int] = None
            for pred in cfg.blocks[block].pred:
                if idom[pred] is None:
                    continue  # pred not processed / unreachable yet
                new_idom = pred if new_idom is None \
                    else intersect(new_idom, pred)
            if new_idom is not None and idom[block] != new_idom:
                idom[block] = new_idom
                changed = True
    return idom


def dominates(idom: List[Optional[int]], a: int, b: int) -> bool:
    """True when block *a* dominates block *b* (per the idom tree)."""
    node: Optional[int] = b
    while node is not None:
        if node == a:
            return True
        if node == 0:
            return False
        node = idom[node]
    return False

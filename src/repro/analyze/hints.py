"""Machine-level soundness checking of ``local`` access hints.

The decoupled LVAQ only works if every instruction tagged
``local_hint=True`` really does access the stack region: a mis-tagged
access would be steered past the main load/store queue and break memory
ordering.  This module proves the tag sound with a forward
reaching-regions analysis over base registers:

* ``R_STACK`` — provably a stack address (derived from ``$sp``);
* ``R_DATA`` — provably a static-data or heap address (``la`` / ``sbrk``);
* ``R_NUM`` — provably a non-address integer/float;
* ``R_UNKNOWN`` — anything else (loaded pointers, merged regions...).

Rules applied at each load/store:

* ``local=True`` requires the base to be ``$sp`` or ``R_STACK`` — else a
  **hard error** (``hint.unsound-local``);
* ``local=False`` with a provably-``R_STACK`` base is equally unsound
  (the access would bypass LVAQ ordering) — ``hint.unsound-global``;
  an *unprovable* base only warrants a warning;
* ``local=None`` with a provably-stack base is sound but wasteful — it
  is counted as a missed opportunity in the coverage metrics.

Spill-slot contents are tracked through the frame so reloads of spilled
stack pointers keep their region.  Only single-word slots marked
``is_spill`` are tracked: their addresses are never taken (the stack
verifier separately proves ``la``-style frame addresses only target
named slots), so under the usual in-bounds assumption for source
programs nothing can alias them.  Values parked in callee-saved
registers and spill slots survive ``jal`` because every function in the
image is held to the callee-save protocol by
:mod:`repro.analyze.stackcheck`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analyze.cfg import CFG
from repro.analyze.dataflow import DataflowProblem, solve
from repro.analyze.machine import function_cfg
from repro.analyze.report import Diagnostic
from repro.isa.frames import FrameInfo
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, Syscall
from repro.isa.program import Program
from repro.isa.registers import (CALLEE_SAVED_FPRS, Reg, TOTAL_REGS,
                                 reg_name)

R_STACK = "S"
R_DATA = "D"
R_NUM = "N"
R_UNKNOWN = "U"

_SP = int(Reg.SP)
_ZERO = int(Reg.ZERO)
_V0 = int(Reg.V0)
_RA = int(Reg.RA)

#: Registers whose contents survive a ``jal`` (guaranteed by the
#: callee-save protocol, which stackcheck verifies for every function).
_CALL_PRESERVED = frozenset(
    {_ZERO, _SP, int(Reg.GP), int(Reg.K0), int(Reg.K1),
     int(Reg.S0), int(Reg.S1), int(Reg.S2), int(Reg.S3),
     int(Reg.S4), int(Reg.S5), int(Reg.S6), int(Reg.S7), int(Reg.FP)}
    | set(CALLEE_SAVED_FPRS))

#: Opcodes whose integer result is never an address.
_NUMERIC_OPS = frozenset({
    Opcode.AND, Opcode.ANDI, Opcode.OR, Opcode.ORI, Opcode.XOR,
    Opcode.XORI, Opcode.NOR, Opcode.SLL, Opcode.SRL, Opcode.SRA,
    Opcode.SLLV, Opcode.SRLV, Opcode.SRAV, Opcode.SLT, Opcode.SLTI,
    Opcode.SLTU, Opcode.MUL, Opcode.DIV, Opcode.REM,
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FNEG,
    Opcode.CVTSW, Opcode.CVTWS, Opcode.CLTS, Opcode.CLES, Opcode.CEQS,
})


def _combine(a: str, b: str) -> str:
    """Region of ``a op b`` for additive ops (add/sub/addi)."""
    if a == R_NUM:
        return b
    if b == R_NUM:
        return a
    return R_UNKNOWN  # pointer+pointer, anything with UNKNOWN...


class _RegionState:
    """Immutable: region per flat register x region per tracked slot."""

    __slots__ = ("regs", "slots")

    def __init__(self, regs: Tuple[str, ...], slots: Tuple[str, ...]):
        self.regs = regs
        self.slots = slots

    def __eq__(self, other):
        return (isinstance(other, _RegionState)
                and self.regs == other.regs and self.slots == other.slots)


class _RegionProblem(DataflowProblem):
    """Forward reaching-regions analysis for one function."""

    direction = "forward"

    def __init__(self, frame: FrameInfo):
        self.frame = frame
        #: Frame offsets of value-tracked spill slots, in layout order.
        self.tracked: Tuple[int, ...] = tuple(sorted(
            slot.offset for slot in frame.slots
            if slot.is_spill and slot.words == 1))
        self._slot_index = {off: i for i, off in enumerate(self.tracked)}

    def boundary_state(self) -> _RegionState:
        regs = [R_UNKNOWN] * TOTAL_REGS
        regs[_ZERO] = R_NUM
        regs[_SP] = R_STACK
        return _RegionState(tuple(regs),
                            (R_UNKNOWN,) * len(self.tracked))

    def initial_state(self) -> Optional[_RegionState]:
        return None  # lattice top: block not yet reached

    def meet(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        regs = tuple(x if x == y else R_UNKNOWN
                     for x, y in zip(a.regs, b.regs))
        slots = tuple(x if x == y else R_UNKNOWN
                      for x, y in zip(a.slots, b.slots))
        return _RegionState(regs, slots)

    def base_region(self, ins: Instruction, state: _RegionState) -> str:
        """Region of the base register of a memory access."""
        return state.regs[ins.rs]

    def transfer(self, index: int, ins: Instruction, state):
        if state is None:
            return None
        op = ins.op
        regs, slots = state.regs, state.slots
        if op is Opcode.JAL:
            regs = tuple(
                value if reg in _CALL_PRESERVED
                else (R_NUM if reg == _RA else R_UNKNOWN)
                for reg, value in enumerate(regs))
            return _RegionState(regs, slots)
        if op.is_store:
            if ins.rs == _SP:
                pos = self._slot_index.get(ins.imm)
                if pos is not None:
                    slots = (slots[:pos] + (regs[ins.rt],)
                             + slots[pos + 1:])
            return _RegionState(regs, slots)
        value = self._value_of(ins, regs, slots)
        if value is None:
            return state
        rd = ins.rd if ins.rd is not None else ins.writes[0]
        if rd == _ZERO:
            return state  # hardwired zero swallows the write
        regs = regs[:rd] + (value,) + regs[rd + 1:]
        return _RegionState(regs, slots)

    def _value_of(self, ins: Instruction, regs, slots) -> Optional[str]:
        """Region written by *ins*, or None when it writes nothing."""
        op = ins.op
        if op.is_load:
            if ins.rs == _SP:
                pos = self._slot_index.get(ins.imm)
                if pos is not None:
                    return slots[pos]
            return R_UNKNOWN
        if op in (Opcode.LI, Opcode.LUI):
            return R_NUM
        if op is Opcode.LA:
            return R_DATA
        if op in (Opcode.MOVE, Opcode.FMOV):
            return regs[ins.rs]
        if op is Opcode.ADDI:
            return _combine(regs[ins.rs], R_NUM)
        if op in (Opcode.ADD, Opcode.SUB):
            return _combine(regs[ins.rs], regs[ins.rt])
        if op in _NUMERIC_OPS:
            return R_NUM
        if op is Opcode.SYSCALL:
            if ins.imm == int(Syscall.SBRK):
                return R_DATA
            if ins.writes:
                return R_NUM
            return None
        if op is Opcode.JALR:
            return R_NUM  # $ra := code address (flagged by stackcheck)
        if ins.writes:
            return R_UNKNOWN
        return None


def check_hints(program: Program, frame: FrameInfo,
                cfg: Optional[CFG] = None
                ) -> Tuple[List[Diagnostic], Dict[str, int]]:
    """Verify the ``local`` hints of one function.

    Returns diagnostics plus raw counts for the coverage metrics:
    accesses by hint value, and how many untagged accesses were provably
    stack (missed LVAQ opportunities) or provably data.
    """
    if cfg is None:
        cfg, _ = function_cfg(program, frame)
    problem = _RegionProblem(frame)
    solution = solve(cfg, problem)
    diagnostics: List[Diagnostic] = []
    counts = {"mem_total": 0, "hint_local": 0, "hint_global": 0,
              "hint_none": 0, "missed_local": 0, "provable_data": 0,
              "unknown_base": 0}

    def diag(severity: str, rule: str, index: int, message: str) -> None:
        diagnostics.append(Diagnostic(
            severity, rule, frame.name, frame.code_start + index,
            message))

    for block in cfg.blocks:
        for index, ins, state in solution.instruction_states(block.index):
            if state is None or not ins.op.is_mem:
                continue
            counts["mem_total"] += 1
            region = problem.base_region(ins, state)
            base = reg_name(ins.rs)
            if ins.local is True:
                counts["hint_local"] += 1
                if region != R_STACK:
                    diag("error", "hint.unsound-local", index,
                         f"local_hint=True but base {base} is not "
                         f"provably a stack address (region "
                         f"{region!r})")
            elif ins.local is False:
                counts["hint_global"] += 1
                if region == R_STACK:
                    diag("error", "hint.unsound-global", index,
                         f"local_hint=False but base {base} is "
                         f"provably a stack address")
                elif region == R_UNKNOWN:
                    counts["unknown_base"] += 1
                    diag("warning", "hint.unprovable-global", index,
                         f"local_hint=False but base {base} could not "
                         f"be proven non-stack")
            else:
                counts["hint_none"] += 1
                if region == R_STACK:
                    counts["missed_local"] += 1
                elif region == R_DATA:
                    counts["provable_data"] += 1
    return diagnostics, counts


def check_program_hints(program: Program,
                        cfgs: Optional[Dict[str, CFG]] = None
                        ) -> Tuple[List[Diagnostic], Dict[str, int]]:
    """Verify hints across the whole image; aggregate the counts."""
    diagnostics: List[Diagnostic] = []
    totals: Dict[str, int] = {}
    for frame in sorted(program.frames.values(),
                        key=lambda f: f.code_start):
        cfg = cfgs.get(frame.name) if cfgs else None
        diags, counts = check_hints(program, frame, cfg)
        diagnostics.extend(diags)
        for key, value in counts.items():
            totals[key] = totals.get(key, 0) + value
    return diagnostics, totals

"""Diagnostics and whole-program analysis reports.

Severities:

* ``error`` — a soundness violation (unsound hint, broken stack
  discipline, out-of-frame access).  Any error fails verification.
* ``warning`` — suspicious but not unsound (dead store, unreachable
  code, an unprovable-but-plausible annotation).
* ``note`` — informational (skipped checks, coverage remarks).

Rule names are stable dotted identifiers (``stack.sp-write``,
``hint.unsound-local`` ...) so tests and CI can match on them without
parsing message text.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

SEVERITIES = ("error", "warning", "note")


class Diagnostic:
    """One finding, anchored to a function and an instruction index."""

    __slots__ = ("severity", "rule", "function", "index", "message")

    def __init__(self, severity: str, rule: str, function: Optional[str],
                 index: Optional[int], message: str):
        assert severity in SEVERITIES, severity
        self.severity = severity
        self.rule = rule
        self.function = function
        self.index = index
        self.message = message

    def describe(self) -> Dict[str, Any]:
        """JSON-serialisable view."""
        return {"severity": self.severity, "rule": self.rule,
                "function": self.function, "index": self.index,
                "message": self.message}

    def render(self) -> str:
        """One human-readable report line."""
        where = self.function or "<program>"
        if self.index is not None:
            where += f"+{self.index}"
        return f"{self.severity}: [{self.rule}] {where}: {self.message}"

    def __repr__(self) -> str:
        return f"<{self.render()}>"


class AnalysisReport:
    """Everything one analysis run found, plus coverage metrics.

    ``metrics`` is a flat string -> number mapping (static hint counts,
    missed opportunities, dynamic cross-check statistics...); per-function
    frame metadata echoes live under ``frames`` so report consumers can
    see what the verifier verified against.
    """

    def __init__(self, name: str):
        self.name = name
        self.diagnostics: List[Diagnostic] = []
        self.metrics: Dict[str, Any] = {}
        self.frames: Dict[str, Dict[str, Any]] = {}

    # -- accumulation --------------------------------------------------------

    def add(self, diagnostic: Diagnostic) -> None:
        """Record one finding."""
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: List[Diagnostic]) -> None:
        """Record many findings."""
        self.diagnostics.extend(diagnostics)

    # -- queries -------------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        """Hard soundness violations."""
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        """Suspicious-but-sound findings."""
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when verification found no errors."""
        return not self.errors

    # -- rendering -----------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """JSON-serialisable view of the whole report."""
        return {
            "name": self.name,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.describe() for d in self.diagnostics],
            "metrics": dict(sorted(self.metrics.items())),
            "frames": self.frames,
        }

    def to_json(self) -> str:
        """The report as pretty-printed JSON."""
        return json.dumps(self.describe(), indent=2, sort_keys=False)

    def render_text(self, verbose: bool = False) -> str:
        """Multi-line human-readable report."""
        lines = [f"analyze {self.name}: "
                 f"{'CLEAN' if self.ok else 'FAILED'} "
                 f"({len(self.errors)} errors, "
                 f"{len(self.warnings)} warnings)"]
        for diag in self.diagnostics:
            if diag.severity == "note" and not verbose:
                continue
            lines.append("  " + diag.render())
        if self.metrics:
            lines.append("  metrics:")
            for key, value in sorted(self.metrics.items()):
                if isinstance(value, float):
                    lines.append(f"    {key:32s} {value:.4f}")
                else:
                    lines.append(f"    {key:32s} {value}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"AnalysisReport({self.name!r}, ok={self.ok}, "
                f"{len(self.diagnostics)} diagnostics)")

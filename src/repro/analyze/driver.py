"""Top-level analysis entry points.

``analyze_program`` runs every static check over a compiled image:
frame-metadata validation + stack discipline (:mod:`.stackcheck`),
local-hint soundness (:mod:`.hints`), and — when the caller passes the
per-function IR the compiler produced — the IR lints (:mod:`.lints`).
Given a committed trace it also cross-checks every static claim against
dynamic ground truth: a ``local_hint`` that disagrees with the address
actually touched is a hard error no matter what the prover concluded,
and the access-region predictor's accuracy over the ambiguous remainder
is reported alongside the static coverage metrics (the paper's
Section 2.2.3 hybrid).

``analyze_source`` / ``analyze_workload`` wrap compile(+run) so the CLI,
the fuzz oracle, and CI can verify a program in one call.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analyze.hints import check_program_hints
from repro.analyze.lints import lint_function
from repro.analyze.report import AnalysisReport, Diagnostic
from repro.analyze.stackcheck import check_program
from repro.isa.program import Program


def analyze_program(program: Program, ir_map=None, trace=None,
                    name: Optional[str] = None) -> AnalysisReport:
    """Run all applicable checks over one compiled *program*."""
    report = AnalysisReport(name or program.source_name)
    if not program.frames:
        report.add(Diagnostic(
            "note", "frames.missing", None, None,
            "program carries no frame metadata (hand-assembled?); "
            "machine-level verification skipped"))
    else:
        for fname, frame in sorted(program.frames.items()):
            report.frames[fname] = frame.describe()
        stack_diags, cfgs = check_program(program)
        report.extend(stack_diags)
        hint_diags, counts = check_program_hints(program, cfgs)
        report.extend(hint_diags)
        total = counts.get("mem_total", 0)
        tagged = counts.get("hint_local", 0) + counts.get("hint_global", 0)
        report.metrics.update({
            "static.mem_accesses": total,
            "static.hint_local": counts.get("hint_local", 0),
            "static.hint_global": counts.get("hint_global", 0),
            "static.hint_none": counts.get("hint_none", 0),
            "static.hint_coverage": tagged / total if total else 1.0,
            "static.missed_local": counts.get("missed_local", 0),
            "static.provable_data": counts.get("provable_data", 0),
        })
        missed = counts.get("missed_local", 0)
        if missed:
            report.add(Diagnostic(
                "note", "hint.missed-local", None, None,
                f"{missed} untagged accesses are provably stack — "
                f"LVAQ steering opportunities the compiler left to the "
                f"predictor"))
    if ir_map:
        for fname in sorted(ir_map):
            report.extend(lint_function(fname, ir_map[fname].body))
    if trace is not None:
        _dynamic_crosscheck(report, trace)
    return report


def _dynamic_crosscheck(report: AnalysisReport, trace) -> None:
    """Compare static hints against the addresses a run actually touched."""
    from repro.core.classify import StreamPartitioner

    partitioner = StreamPartitioner(decoupled=True)
    unsound_pcs = {}
    mem = 0
    for inst in trace.insts:
        if not inst.is_mem:
            continue
        mem += 1
        hint = inst.local_hint
        if hint is not None and hint != inst.is_local and \
                inst.pc not in unsound_pcs:
            unsound_pcs[inst.pc] = inst
        partitioner.steer(inst)
    for pc, inst in sorted(unsound_pcs.items()):
        region = "stack" if inst.is_local else "non-stack"
        report.add(Diagnostic(
            "error", "hint.dynamic-unsound", None, pc,
            f"local_hint={inst.local_hint} but the access at pc {pc} "
            f"touched a {region} address ({inst.addr:#x}) at run time"))
    predictor = partitioner.predictor
    report.metrics.update({
        "dynamic.mem_refs": mem,
        "dynamic.local_fraction": trace.stats.local_fraction,
        "dynamic.unsound_hint_pcs": len(unsound_pcs),
        "dynamic.predictor_predictions": predictor.predictions,
        "dynamic.predictor_accuracy": predictor.accuracy,
    })


def analyze_source(source: str, name: str = "<mini-c>",
                   optimize: bool = True, static_only: bool = False,
                   max_instructions: int = 2_000_000,
                   opt_level=None, verify: str = "off") -> AnalysisReport:
    """Compile *source* and verify it; optionally run it and cross-check.

    ``verify`` turns on translation validation of the SSA pipeline
    (``"ssa"`` or ``"tv"``, see :mod:`repro.analyze.tv`): every pass
    certificate's findings land in the report as error diagnostics and
    the ``tv.*`` metrics summarize the certificate log.
    """
    from repro.lang import CompileStats, CompilerOptions, compile_source

    ir_map: Dict[str, object] = {}
    cstats = CompileStats() if verify != "off" else None
    program = compile_source(
        source, CompilerOptions(source_name=name, optimize=optimize,
                                opt_level=opt_level, verify=verify),
        stats=cstats, ir_out=ir_map)
    trace = None
    budget_note = None
    if not static_only:
        from repro.vm.machine import Machine

        vm = Machine(program, trace=True)
        vm.run(max_instructions=max_instructions)
        if vm.exit_code == -1:
            budget_note = Diagnostic(
                "note", "dynamic.budget", None, None,
                f"program still running after {max_instructions} "
                f"instructions; dynamic cross-check skipped")
        else:
            trace = vm.trace
    report = analyze_program(program, ir_map=ir_map, trace=trace,
                             name=name)
    if cstats is not None:
        _merge_certificates(report, cstats)
    if budget_note is not None:
        report.add(budget_note)
    return report


def _merge_certificates(report: AnalysisReport, cstats) -> None:
    """Fold the translation-validation certificate log into *report*."""
    certs = cstats.certificates
    findings = 0
    events = 0
    for _fname, cert in certs:
        events += cert.events
        for diag in cert.findings:
            findings += 1
            report.add(diag)
    report.metrics.update({
        "tv.certificates": len(certs),
        "tv.events": events,
        "tv.findings": findings,
        "tv.certified": 1.0 if certs and not findings else 0.0,
    })


def analyze_workload(workload: str, optimize: bool = True,
                     static_only: bool = False,
                     max_instructions: int = 20_000_000,
                     opt_level=None, verify: str = "off") -> AnalysisReport:
    """Verify one named mini-C workload (see repro.workloads.minic)."""
    from repro.workloads.minic import minic_source

    return analyze_source(minic_source(workload), name=workload,
                          optimize=optimize, static_only=static_only,
                          max_instructions=max_instructions,
                          opt_level=opt_level, verify=verify)

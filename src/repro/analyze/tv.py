"""Translation validation for the SSA mid-end.

Instead of trusting the optimization passes in :mod:`repro.lang.passes`,
this module *certifies* each application: the pipeline snapshots the SSA
function before a pass, runs it, and hands both states to
:func:`certify_pass`, which

1. re-checks structural well-formedness (:func:`check_wellformed`: SSA
   invariants, CFG consistency, terminator placement, opcode/operand and
   register-class discipline, precolored-register rules), and
2. diffs the two states into a stream of events (rewrites, removals,
   insertions, moves, phi edits, CFG edits) and replays each event
   against an independent semantic justification — a constant lattice
   for SCCP, copy chains for copy propagation, a coinductive congruence
   for GVN, per-word backward/forward memory scans for store forwarding
   and dead-store elimination, and purity + dominance proofs for DCE and
   LICM.

Passes mutate ``IrInstr``/``Phi`` objects in place, so object identity
links the before and after states; the snapshot stores pre-pass field
tuples keyed by ``id()``.

Every finding carries a stable rule id from :data:`RULES` so tests, CI,
and the fuzz ``tv`` oracle can match on it without parsing messages.
Findings are :class:`repro.analyze.report.Diagnostic` errors; a
:class:`PassCertificate` with no findings means the pass application is
certified.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analyze.cfg import dominates as _dom_query
from repro.analyze.cfg import dominators as _dominators
from repro.analyze.report import Diagnostic
from repro.errors import CompileError
from repro.lang.ir import BIN_FLOAT_OPS, BIN_INT_OPS, IrInstr, VReg
from repro.lang.optimizer import _FOLDABLE_INT, _div_ok
from repro.lang.passes import (_BINI_SAFE, _COMMUTATIVE, _SSA_PURE,
                               _TRAPPING, _virtual)
from repro.lang.ssa import SsaFunction, verify_ssa
from repro.utils import to_signed32

#: Stable rule ids and what each one certifies.
RULES = {
    "tv.wf.ssa": "SSA invariants (single def, def dominates use, phi "
                 "args keyed by live predecessors)",
    "tv.wf.cfg": "successor/predecessor lists mutually consistent, no "
                 "edges to dead blocks, live entry block",
    "tv.wf.terminator": "jmp/br only at block ends, targets resolve to "
                        "live blocks and match the successor edges",
    "tv.wf.opcode": "instruction operand shape and opcode discipline "
                    "(bini immediate range, li signed-32 range, ...)",
    "tv.wf.type": "register-class discipline (int vs float operands "
                  "and destinations)",
    "tv.wf.precolored": "precolored registers never appear in phis; "
                        "call/ret args are precolored",
    "tv.sccp.const-fold": "a constant fold matches the independently "
                          "recomputed constant lattice",
    "tv.sccp.branch-fold": "a folded branch goes the direction the "
                           "lattice proves",
    "tv.sccp.cfg": "CFG edits are exactly the fallout of certified "
                   "branch folds (unreachability witness)",
    "tv.copy.not-copy": "a rewritten use follows a transitive "
                        "copy/single-source-phi chain to its new name",
    "tv.gvn.not-congruent": "merged names are structurally congruent "
                            "(coinductive over the pre-pass SSA graph)",
    "tv.fwd.stale": "a forwarded load receives the nearest preceding "
                    "same-word value with no intervening clobber",
    "tv.dse.live-store": "a removed store reaches no later load of the "
                         "word before a surviving overwrite",
    "tv.dce.live": "a removed definition has no remaining uses",
    "tv.dce.effectful": "removed instructions are pure (or provably "
                        "safe dead frame loads)",
    "tv.licm.trapping": "no trapping op (div/rem/fdiv) is hoisted",
    "tv.licm.unsafe-hoist": "hoisted instructions are pure, "
                            "precolored-free, and their operands' "
                            "definitions dominate the preheader",
    "tv.licm.preheader": "new blocks are single-entry/single-exit "
                         "preheaders dominating their loop",
    "tv.diff.unjustified": "a structural change no rule of the claimed "
                           "pass accounts for",
}

#: Pipeline pass function name -> certifier key.
PASS_KEYS = {
    "propagate_constants": "sccp",
    "copy_propagate": "copy",
    "value_number": "gvn",
    "forward_stores": "fwd",
    "eliminate_dead_stores": "dse",
    "eliminate_dead": "dce",
    "hoist_invariants": "licm",
}

#: Float comparisons produce an *integer* (0/1) destination.
_F_COMPARES = ("fslt", "fsle", "fsgt", "fsge", "fseq", "fsne")

_BOTTOM = object()  # constant lattice: absent=TOP, int=constant, _BOTTOM

# Snapshot field-tuple layout (indices into the tuples in
# ``Snapshot.fields``).
K, OP, DST, A, B, IMM, SYM, BASE, INV, ISF, ARGS, LOC = range(12)


def _base_key(base) -> Optional[Tuple]:
    if isinstance(base, VReg):
        return ("reg", id(base))
    if isinstance(base, tuple):
        if base[0] == "frame":
            return ("frame", id(base[1]))
        return ("global", base[1])
    return None


def _fields(instr: IrInstr) -> Tuple:
    return (instr.kind, instr.op,
            id(instr.dst) if instr.dst is not None else None,
            id(instr.a) if instr.a is not None else None,
            id(instr.b) if instr.b is not None else None,
            instr.imm, instr.sym, _base_key(instr.base),
            instr.invert, instr.is_float,
            tuple(id(r) for r in instr.args),
            instr.locality)


#: C-speed bulk fetch of the semantically tracked attributes (``args``
#: excluded: it is a mutable list, so a stored reference would alias the
#: live object and mask in-place mutation — a copy is kept instead).
#: Registers/bases compare by identity (no ``__eq__`` on VReg/FrameSlot),
#: matching the id-keyed field tuples.
_RAW = attrgetter("kind", "op", "dst", "a", "b", "imm", "sym", "base",
                  "invert", "is_float", "locality")

#: C-speed bulk fetch of the mutable args lists (compared against the
#: stored copies separately from ``_RAW``).
_ARGS = attrgetter("args")

#: Shared stand-in for the (overwhelmingly common) empty args list —
#: never mutated, only compared, so one object serves every record and
#: the snapshot avoids thousands of tracked empty-list allocations.
_NO_ARGS: List = []


# -- snapshots ----------------------------------------------------------------


class _BlockSnap:
    __slots__ = ("index", "label", "succ", "pred", "instr_ids", "phi_ids",
                 "raw0", "args0")

    def __init__(self, index: int, label: Optional[str],
                 succ: List[int], pred: List[int]):
        self.index = index
        self.label = label
        self.succ = succ
        self.pred = pred
        self.instr_ids: List[int] = []
        self.phi_ids: List[int] = []
        #: Per-position ``_RAW`` tuples / args copies, kept in step with
        #: ``instr_ids`` — lets :func:`diff_snapshot` compare a whole
        #: identity-stable block with two C-level list comparisons.
        self.raw0: List[Tuple] = []
        self.args0: List[List] = []


class Snapshot:
    """The pre-pass state of one SSA function, keyed by object identity."""

    __slots__ = ("function", "fields", "raw", "objs", "block_of", "pos_of",
                 "phi_args", "phi_dst", "phi_objs", "phi_block",
                 "blocks", "labels", "vreg", "slots", "def_of")

    def __init__(self, function: str):
        self.function = function
        self.fields: Dict[int, Tuple] = {}
        #: ``iid -> (_RAW(instr), list(instr.args))`` — the fast
        #: "unchanged?" compare used by :func:`diff_snapshot`.
        self.raw: Dict[int, Tuple] = {}
        self.objs: Dict[int, IrInstr] = {}
        self.block_of: Dict[int, int] = {}
        self.pos_of: Dict[int, int] = {}
        self.phi_args: Dict[int, Dict[int, int]] = {}
        self.phi_dst: Dict[int, int] = {}
        self.phi_objs: Dict[int, Any] = {}
        self.phi_block: Dict[int, int] = {}
        self.blocks: Dict[int, _BlockSnap] = {}
        self.labels: Dict[str, int] = {}
        self.vreg: Dict[int, VReg] = {}
        self.slots: Dict[int, Any] = {}
        self.def_of: Dict[int, Tuple[str, int]] = {}


def _snap_block(snap: Snapshot, block,
                dirty: Optional[Set[int]] = None) -> None:
    """Capture (or re-capture) one live block into *snap*.

    With *dirty* given (a re-capture after a pass), field tuples and
    register registrations are recomputed only for instructions/phis in
    *dirty* or new to the snapshot — everything else keeps its stored
    record and only its placement (block/position) is refreshed.
    """
    bs = _BlockSnap(block.index, block.label,
                    list(block.succ), list(block.pred))
    snap.blocks[block.index] = bs
    for phi in block.phis:
        pid = id(phi)
        bs.phi_ids.append(pid)
        snap.phi_block[pid] = block.index
        if dirty is None or pid in dirty or pid not in snap.phi_args:
            _register_phi(snap, pid, phi)
    instrs = block.instrs
    ids = list(map(id, instrs))
    bs.instr_ids = ids
    index = block.index
    block_of = snap.block_of
    pos_of = snap.pos_of
    fields = snap.fields
    raw = snap.raw
    raw0 = bs.raw0
    args0 = bs.args0
    pos = 0
    for iid, instr in zip(ids, instrs):
        block_of[iid] = index
        pos_of[iid] = pos
        pos += 1
        if dirty is not None and iid not in dirty and iid in fields:
            r = raw[iid]
        else:
            r = _register_instr(snap, iid, instr)
        raw0.append(r[0])
        args0.append(r[1])


def _register_instr(snap: Snapshot, iid: int, instr: IrInstr) -> Tuple:
    """(Re-)record one instruction's content in *snap*."""
    snap.objs[iid] = instr
    snap.fields[iid] = _fields(instr)
    args = instr.args
    snap.raw[iid] = r = (_RAW(instr), list(args) if args else _NO_ARGS)
    for reg in (instr.dst, instr.a, instr.b):
        if isinstance(reg, VReg):
            snap.vreg[id(reg)] = reg
    if isinstance(instr.base, VReg):
        snap.vreg[id(instr.base)] = instr.base
    elif isinstance(instr.base, tuple) and instr.base[0] == "frame":
        snap.slots[id(instr.base[1])] = instr.base[1]
    for reg in instr.args:
        snap.vreg[id(reg)] = reg
    if instr.dst is not None and not instr.dst.precolored:
        snap.def_of[id(instr.dst)] = ("i", iid)
    return r


def _register_phi(snap: Snapshot, pid: int, phi) -> None:
    """(Re-)record one phi's content in *snap*."""
    snap.phi_objs[pid] = phi
    snap.phi_dst[pid] = id(phi.dst)
    snap.phi_args[pid] = {p: id(a) for p, a in phi.args.items()}
    snap.vreg[id(phi.dst)] = phi.dst
    for arg in phi.args.values():
        snap.vreg[id(arg)] = arg
    if not phi.dst.precolored:
        snap.def_of[id(phi.dst)] = ("p", pid)


def snapshot(ssa: SsaFunction) -> Snapshot:
    """Capture the current state of *ssa* for a later :func:`certify_pass`."""
    snap = Snapshot(ssa.func.name)
    for block in ssa.live_blocks():
        _snap_block(snap, block)
        if block.label is not None:
            snap.labels[block.label] = block.index
    return snap


def _rid_virtual(snap: Snapshot, rid: Optional[int]) -> bool:
    if rid is None:
        return False
    reg = snap.vreg.get(rid)
    return reg is not None and not reg.precolored


# -- certificates -------------------------------------------------------------


class PassCertificate:
    """The verdict on one pass application (one pass, one round)."""

    __slots__ = ("function", "pass_name", "round", "events", "findings")

    def __init__(self, function: str, pass_name: str, round_index: int = 0):
        self.function = function
        self.pass_name = pass_name
        self.round = round_index
        self.events = 0
        self.findings: List[Diagnostic] = []

    @property
    def ok(self) -> bool:
        return not self.findings

    def fail(self, rule: str, message: str,
             index: Optional[int] = None) -> None:
        assert rule in RULES, rule
        self.findings.append(
            Diagnostic("error", rule, self.function, index, message))

    def describe(self) -> Dict[str, Any]:
        return {"pass": self.pass_name, "round": self.round,
                "events": self.events, "ok": self.ok,
                "findings": [d.describe() for d in self.findings]}

    def __repr__(self) -> str:
        state = "ok" if self.ok else f"{len(self.findings)} findings"
        return (f"PassCertificate({self.function!r}, {self.pass_name!r}, "
                f"round {self.round}, {self.events} events, {state})")


# -- layer 1: well-formedness -------------------------------------------------


def check_wellformed(ssa: SsaFunction,
                     recompute: bool = True) -> List[Diagnostic]:
    """Structural IR/SSA/CFG well-formedness of *ssa* right now.

    ``recompute=False`` skips the dominator refresh; only valid when the
    caller knows ``ssa.idom`` already reflects the current graph (the
    pipeline's build anchor, where ``build_ssa`` just computed it with
    the same algorithm — a recompute adds no independence there).
    """
    name = ssa.func.name
    out: List[Diagnostic] = []

    def fail(rule: str, message: str, index: Optional[int] = None) -> None:
        out.append(Diagnostic("error", rule, name, index, message))

    # A sabotaged pass may leave ssa.idom stale; dominance-based checks
    # must run against the graph as it is *now*.
    if recompute:
        ssa.recompute_dominators()

    live = {b.index for b in ssa.live_blocks()}
    if 0 not in live:
        fail("tv.wf.cfg", "entry block is dead")
        return out

    labels: Dict[str, int] = {}
    for block in ssa.live_blocks():
        if block.label is not None:
            if block.label in labels:
                fail("tv.wf.cfg",
                     f"duplicate label {block.label!r}", block.index)
            labels[block.label] = block.index

    for block in ssa.live_blocks():
        _check_block(ssa, block, labels, live, name, out)
        for instr in block.instrs:
            _check_instr(instr, name, block.index, out)

    try:
        verify_ssa(ssa)
    except CompileError as exc:
        fail("tv.wf.ssa", str(exc))
    return out


def _check_block(ssa: SsaFunction, block, labels: Dict[str, int],
                 live: Set[int], name: str,
                 out: List[Diagnostic]) -> None:
    """Structural checks local to one block (edges, terminator, phis)."""

    def fail(rule: str, message: str) -> None:
        out.append(Diagnostic("error", rule, name, block.index, message))

    if len(set(block.succ)) != len(block.succ):
        fail("tv.wf.cfg", "duplicate successor edge")
    if len(set(block.pred)) != len(block.pred):
        fail("tv.wf.cfg", "duplicate predecessor edge")
    for succ in block.succ:
        if succ not in live:
            fail("tv.wf.cfg", f"edge to dead block {succ}")
        elif block.index not in ssa.blocks[succ].pred:
            fail("tv.wf.cfg",
                 f"edge {block.index}->{succ} missing from pred list")
    for pred in block.pred:
        if pred not in live:
            fail("tv.wf.cfg", f"edge from dead block {pred}")
        elif block.index not in ssa.blocks[pred].succ:
            fail("tv.wf.cfg",
                 f"edge {pred}->{block.index} missing from succ list")

    n = len(block.instrs)
    for pos, instr in enumerate(block.instrs):
        if instr.kind in ("jmp", "br") and pos != n - 1:
            fail("tv.wf.terminator",
                 f"{instr.kind} in the middle of a block")
    last = block.instrs[-1] if block.instrs else None
    if last is not None and last.kind == "jmp":
        target = labels.get(last.sym)
        if target is None:
            fail("tv.wf.terminator",
                 f"jmp to unknown label {last.sym!r}")
        elif set(block.succ) != {target}:
            fail("tv.wf.terminator",
                 f"jmp target {target} does not match successors "
                 f"{block.succ}")
    elif last is not None and last.kind == "br":
        target = labels.get(last.sym)
        if target is None:
            fail("tv.wf.terminator",
                 f"br to unknown label {last.sym!r}")
        elif target not in block.succ:
            fail("tv.wf.terminator",
                 f"br target {target} not a successor of {block.succ}")
        if len(block.succ) not in (1, 2):
            fail("tv.wf.terminator",
                 f"br block has {len(block.succ)} successors")
    elif len(block.succ) > 1:
        fail("tv.wf.terminator",
             f"fallthrough block has {len(block.succ)} successors")

    for phi in block.phis:
        if phi.dst.precolored:
            fail("tv.wf.precolored",
                 f"phi defines precolored {phi.dst!r}")
        for arg in phi.args.values():
            if not isinstance(arg, VReg):
                fail("tv.wf.opcode",
                     f"phi arg {arg!r} is not a register")
            elif arg.precolored:
                fail("tv.wf.precolored",
                     f"phi reads precolored {arg!r}")
            elif arg.is_float != phi.dst.is_float:
                fail("tv.wf.type",
                     f"phi {phi!r} mixes register classes")
        if len(phi.args) != len(block.pred):
            fail("tv.wf.ssa",
                 f"phi has {len(phi.args)} args for "
                 f"{len(block.pred)} predecessors")


def _check_instr(instr: IrInstr, function: str, index: int,
                 out: List[Diagnostic]) -> None:
    kind = instr.kind

    def fail(rule: str, message: str) -> None:
        out.append(Diagnostic("error", rule, function, index, message))

    if kind == "bin":
        if instr.op not in BIN_INT_OPS and instr.op not in BIN_FLOAT_OPS:
            fail("tv.wf.opcode", f"bin with unknown op {instr.op!r}")
            return
        if not isinstance(instr.a, VReg) or not isinstance(instr.b, VReg) \
                or instr.dst is None:
            fail("tv.wf.opcode", f"bin missing operands: {instr!r}")
            return
        if instr.op in BIN_FLOAT_OPS:
            if not (instr.a.is_float and instr.b.is_float):
                fail("tv.wf.type",
                     f"float bin reads an int register: {instr!r}")
            want_float = instr.op not in _F_COMPARES
            if instr.dst.is_float != want_float:
                fail("tv.wf.type",
                     f"float {instr.op} writes wrong class: {instr!r}")
        else:
            if instr.a.is_float or instr.b.is_float or instr.dst.is_float:
                fail("tv.wf.type",
                     f"int bin touches a float register: {instr!r}")
    elif kind == "bini":
        if instr.op not in _BINI_SAFE:
            fail("tv.wf.opcode",
                 f"bini op {instr.op!r} has no immediate form")
        if not isinstance(instr.imm, int) \
                or not -32768 <= instr.imm <= 32767:
            fail("tv.wf.opcode",
                 f"bini immediate {instr.imm!r} out of range")
        if not isinstance(instr.a, VReg) or instr.dst is None:
            fail("tv.wf.opcode", f"bini missing operands: {instr!r}")
        elif instr.a.is_float or instr.dst.is_float:
            fail("tv.wf.type",
                 f"bini touches a float register: {instr!r}")
    elif kind == "li":
        if instr.dst is None or instr.dst.is_float:
            fail("tv.wf.type", f"li must target an int register: {instr!r}")
        if not isinstance(instr.imm, int) \
                or to_signed32(instr.imm) != instr.imm:
            fail("tv.wf.opcode",
                 f"li immediate {instr.imm!r} is not signed 32-bit")
    elif kind == "lfi":
        if instr.dst is None or not instr.dst.is_float:
            fail("tv.wf.type",
                 f"lfi must target a float register: {instr!r}")
    elif kind == "mov":
        if not isinstance(instr.a, VReg) or instr.dst is None:
            fail("tv.wf.opcode", f"mov missing operands: {instr!r}")
        elif instr.dst.is_float != instr.a.is_float:
            fail("tv.wf.type", f"mov mixes register classes: {instr!r}")
    elif kind == "cvt":
        if not isinstance(instr.a, VReg) or instr.dst is None \
                or instr.op not in ("if", "fi"):
            fail("tv.wf.opcode", f"malformed cvt: {instr!r}")
        elif instr.op == "if" and \
                (instr.a.is_float or not instr.dst.is_float):
            fail("tv.wf.type", f"cvt if must be int->float: {instr!r}")
        elif instr.op == "fi" and \
                (not instr.a.is_float or instr.dst.is_float):
            fail("tv.wf.type", f"cvt fi must be float->int: {instr!r}")
    elif kind == "load":
        if instr.dst is None or instr.base is None:
            fail("tv.wf.opcode", f"load missing operands: {instr!r}")
    elif kind == "store":
        if not isinstance(instr.a, VReg) or instr.base is None:
            fail("tv.wf.opcode", f"store missing operands: {instr!r}")
    elif kind == "la_frame":
        if instr.dst is None or instr.dst.is_float \
                or not (isinstance(instr.base, tuple)
                        and instr.base[0] == "frame"):
            fail("tv.wf.opcode", f"malformed la_frame: {instr!r}")
    elif kind == "la_global":
        if instr.dst is None or instr.dst.is_float or not instr.sym:
            fail("tv.wf.opcode", f"malformed la_global: {instr!r}")
    elif kind == "br":
        if not isinstance(instr.a, VReg):
            fail("tv.wf.opcode", f"br without a condition register")
    elif kind in ("call", "ret"):
        for reg in instr.args:
            if not reg.precolored:
                fail("tv.wf.precolored",
                     f"{kind} arg {reg!r} is not precolored")
    elif kind == "jmp":
        pass
    elif kind == "label":
        fail("tv.wf.opcode", "label instruction inside a block body")
    else:
        fail("tv.wf.opcode", f"unknown instruction kind {kind!r}")


# -- layer 2: the semantic diff -----------------------------------------------


class Diff:
    """Every structural change between a snapshot and the current state."""

    __slots__ = ("rewrites", "removed", "inserted", "moved",
                 "phi_removed", "phi_inserted", "phi_arg_changes",
                 "phi_moved", "new_blocks", "killed_blocks",
                 "edge_removed", "edge_added", "order_bad",
                 "label_changed")

    def __init__(self) -> None:
        self.rewrites: List[Tuple[int, Tuple, IrInstr]] = []
        self.removed: List[int] = []
        self.inserted: List[Tuple[int, IrInstr, int]] = []
        self.moved: List[Tuple[int, int, int]] = []
        self.phi_removed: List[int] = []
        self.phi_inserted: List[Tuple[int, Any, int]] = []
        self.phi_arg_changes: List[Tuple[int, Any]] = []
        self.phi_moved: List[Tuple[int, int, int]] = []
        self.new_blocks: Set[int] = set()
        self.killed_blocks: Set[int] = set()
        self.edge_removed: Set[Tuple[int, int]] = set()
        self.edge_added: Set[Tuple[int, int]] = set()
        self.order_bad: List[int] = []
        self.label_changed: List[int] = []

    def count(self) -> int:
        return (len(self.rewrites) + len(self.removed) + len(self.inserted)
                + len(self.moved) + len(self.phi_removed)
                + len(self.phi_inserted) + len(self.phi_arg_changes)
                + len(self.phi_moved) + len(self.new_blocks)
                + len(self.killed_blocks) + len(self.edge_removed)
                + len(self.edge_added))


def _same_fields(f: Tuple, instr: IrInstr) -> bool:
    """``_fields(instr) == f`` without allocating the tuple."""
    fk, fop, fdst, fa_, fb_, fimm, fsym, fbase, finv, fisf, fargs, floc = f
    dst = instr.dst
    a = instr.a
    b = instr.b
    if (instr.kind != fk or instr.op != fop
            or (id(dst) if dst is not None else None) != fdst
            or (id(a) if a is not None else None) != fa_
            or (id(b) if b is not None else None) != fb_
            or instr.imm != fimm or instr.sym != fsym
            or instr.invert != finv or instr.is_float != fisf
            or instr.locality != floc):
        return False
    base = instr.base
    if (None if base is None else _base_key(base)) != fbase:
        return False
    args = instr.args
    if len(args) != len(fargs):
        return False
    for r, rid in zip(args, fargs):
        if id(r) != rid:
            return False
    return True


def diff_snapshot(snap: Snapshot, ssa: SsaFunction) -> Diff:
    """Compute the event stream from *snap* to the current state of *ssa*.

    One walk over the current state; everything the walk does not visit
    but the snapshot recorded is a removal.
    """
    d = Diff()
    live: Set[int] = set()
    survivors = 0
    phi_survivors = 0
    fields_get = snap.fields.get
    raw_get = snap.raw.get
    block_of = snap.block_of
    pos_of = snap.pos_of
    phi_args_get = snap.phi_args.get
    blocks_get = snap.blocks.get
    live_add = live.add
    for block in ssa.live_blocks():
        index = block.index
        live_add(index)
        bs = blocks_get(index)
        if bs is None:
            d.new_blocks.add(index)
            for dst in block.succ:
                d.edge_added.add((index, dst))
        else:
            if bs.label != block.label:
                d.label_changed.append(index)
            if bs.succ != block.succ:
                before = set(bs.succ)
                now = set(block.succ)
                for dst in before - now:
                    d.edge_removed.add((index, dst))
                for dst in now - before:
                    d.edge_added.add((index, dst))
        for phi in block.phis:
            pid = id(phi)
            old_args = phi_args_get(pid)
            if old_args is None:
                d.phi_inserted.append((pid, phi, index))
                continue
            phi_survivors += 1
            ob = snap.phi_block[pid]
            if ob != index:
                d.phi_moved.append((pid, ob, index))
            if id(phi.dst) != snap.phi_dst[pid] \
                    or len(phi.args) != len(old_args):
                d.phi_arg_changes.append((pid, phi))
            else:
                for p, arg in phi.args.items():
                    if old_args.get(p) != id(arg):
                        d.phi_arg_changes.append((pid, phi))
                        break
        instrs = block.instrs
        ids = list(map(id, instrs))
        if bs is not None and bs.instr_ids == ids:
            # Identity-stable block: membership, placement and order
            # all match the snapshot — only in-place rewrites can hide
            # here.  Two C-level list comparisons (attrgetter map vs the
            # stored per-position tuples, then the args copies) settle
            # the common nothing-changed case without a Python-level
            # per-instruction loop; mismatches fall back to the raw
            # compare to locate the rewrites.
            survivors += len(ids)
            if list(map(_RAW, instrs)) == bs.raw0 \
                    and list(map(_ARGS, instrs)) == bs.args0:
                continue
            for iid, instr in zip(ids, instrs):
                r = raw_get(iid)
                if (r is None or _RAW(instr) != r[0]
                        or instr.args != r[1]) \
                        and not _same_fields(fields_get(iid), instr):
                    d.rewrites.append((iid, fields_get(iid), instr))
            continue
        # Surviving instructions that stayed in their block must keep
        # their relative order (no pass reorders straight-line code).
        last = -1
        order_ok = True
        for iid, instr in zip(ids, instrs):
            f = fields_get(iid)
            if f is None:
                d.inserted.append((iid, instr, index))
                continue
            survivors += 1
            ob = block_of[iid]
            if ob != index:
                d.moved.append((iid, ob, index))
            elif order_ok:
                pos = pos_of[iid]
                if pos < last:
                    d.order_bad.append(index)
                    order_ok = False
                else:
                    last = pos
            r = raw_get(iid)
            if (r is None or _RAW(instr) != r[0] or instr.args != r[1]) \
                    and not _same_fields(f, instr):
                # The raw compare is the C-speed fast path; the field
                # tuple is authoritative (it id-keys registers, so it
                # tolerates e.g. equal-but-distinct symbol strings).
                d.rewrites.append((iid, f, instr))
    # Anything recorded but not revisited was removed.  The counters
    # make the common nothing-removed case free: a second sweep to
    # name the victims runs only when the tallies disagree.
    if survivors != len(snap.fields) or phi_survivors != len(snap.phi_args):
        seen: Set[int] = set()
        seen_phis: Set[int] = set()
        for block in ssa.live_blocks():
            seen_phis.update(map(id, block.phis))
            seen.update(map(id, block.instrs))
        for iid in snap.fields:
            if iid not in seen:
                d.removed.append(iid)
        for pid in snap.phi_args:
            if pid not in seen_phis:
                d.phi_removed.append(pid)
    for index in snap.blocks:
        if index not in live:
            d.killed_blocks.add(index)
    return d


def _touched_blocks(snap: Snapshot, d: Diff) -> Set[int]:
    """Every block index named (directly or as an endpoint) by *d*."""
    touched: Set[int] = set()
    touched |= d.new_blocks | d.killed_blocks
    for a, b in d.edge_added | d.edge_removed:
        touched.add(a)
        touched.add(b)
    for k in d.killed_blocks:
        bs = snap.blocks.get(k)
        if bs is not None:
            touched.update(bs.succ)
            touched.update(bs.pred)
    for iid, _f, _instr in d.rewrites:
        touched.add(snap.block_of[iid])
    for iid in d.removed:
        touched.add(snap.block_of[iid])
    for _iid, _instr, b in d.inserted:
        touched.add(b)
    for _iid, fb, tb in d.moved:
        touched.add(fb)
        touched.add(tb)
    for pid in d.phi_removed:
        touched.add(snap.phi_block[pid])
    for _pid, _phi, b in d.phi_inserted:
        touched.add(b)
    for pid, _phi in d.phi_arg_changes:
        touched.add(snap.phi_block[pid])
    for _pid, fb, tb in d.phi_moved:
        touched.add(fb)
        touched.add(tb)
    touched.update(d.label_changed)
    touched.update(d.order_bad)
    return touched


def apply_diff(snap: Snapshot, ssa: SsaFunction, d: Diff) -> Set[int]:
    """Update *snap* in place so it matches the current state of *ssa*.

    Equivalent to ``snapshot(ssa)`` but O(changed blocks) instead of
    O(function): only blocks named by an event in *d* are re-captured.
    Register/slot identity maps are never pruned — keeping dead objects
    referenced means their ids cannot be recycled for new IR objects,
    which keeps identity-keyed lookups unambiguous.  Returns
    ``(touched, placement)``: every touched block index (pre-update, so
    killed blocks may appear) and the subset whose instruction/phi
    placement changed.
    """
    if not (d.count() or d.order_bad or d.label_changed):
        return set(), set()
    touched = _touched_blocks(snap, d)
    for iid, f, instr in d.rewrites:
        # A rewritten dst leaves a stale single-def record behind.
        new_dst = id(instr.dst) if instr.dst is not None else None
        if f[DST] is not None and f[DST] != new_dst \
                and snap.def_of.get(f[DST]) == ("i", iid):
            del snap.def_of[f[DST]]
    for pid, phi in d.phi_arg_changes:
        old_dst = snap.phi_dst.get(pid)
        if old_dst is not None and old_dst != id(phi.dst) \
                and snap.def_of.get(old_dst) == ("p", pid):
            del snap.def_of[old_dst]

    # Blocks whose instruction/phi *placement* changed need a full
    # re-capture; pure in-place rewrites only need their per-object
    # records refreshed (no block walk at all).
    placement: Set[int] = set(d.new_blocks)
    for _iid, _instr, b in d.inserted:
        placement.add(b)
    for _iid, fb, tb in d.moved:
        placement.add(fb)
        placement.add(tb)
    for _pid, _phi, b in d.phi_inserted:
        placement.add(b)
    for _pid, fb, tb in d.phi_moved:
        placement.add(fb)
        placement.add(tb)
    placement.update(d.order_bad)

    # Drop per-object records of removed instructions and phis first —
    # re-capture below re-adds every survivor in a re-captured block.
    for iid in d.removed:
        b = snap.block_of.pop(iid, None)
        if b is not None:
            placement.add(b)
        f = snap.fields.pop(iid, None)
        snap.raw.pop(iid, None)
        snap.objs.pop(iid, None)
        snap.pos_of.pop(iid, None)
        if f is not None and f[DST] is not None \
                and snap.def_of.get(f[DST]) == ("i", iid):
            del snap.def_of[f[DST]]
    for pid in d.phi_removed:
        rid = snap.phi_dst.pop(pid, None)
        snap.phi_args.pop(pid, None)
        snap.phi_objs.pop(pid, None)
        b = snap.phi_block.pop(pid, None)
        if b is not None:
            placement.add(b)
        if rid is not None and snap.def_of.get(rid) == ("p", pid):
            del snap.def_of[rid]

    for iid, _f, instr in d.rewrites:
        r = _register_instr(snap, iid, instr)
        b = snap.block_of[iid]
        if b not in placement:
            # Keep the block's bulk-compare lists in step; placement
            # blocks are fully re-captured below and rebuild theirs.
            bs = snap.blocks[b]
            pos = snap.pos_of[iid]
            bs.raw0[pos] = r[0]
            bs.args0[pos] = r[1]
    for pid, phi in d.phi_arg_changes:
        _register_phi(snap, pid, phi)

    live = {block.index: block for block in ssa.live_blocks()}
    no_dirty: Set[int] = set()
    for index in touched:
        block = live.get(index)
        if block is None:
            snap.blocks.pop(index, None)
        elif index in placement:
            # Rewrites were refreshed above, so nothing is "dirty" —
            # the re-capture only redoes placement and new objects.
            _snap_block(snap, block, no_dirty)
        else:
            # Touched by a rewrite, an edge endpoint or a label change:
            # placement is untouched, refresh structure only.
            bs = snap.blocks[index]
            bs.label = block.label
            bs.succ = list(block.succ)
            bs.pred = list(block.pred)
    snap.labels = {bs.label: i for i, bs in snap.blocks.items()
                   if bs.label is not None}
    return touched, placement


def _check_events_ssa(snap: Snapshot, ssa: SsaFunction, d: Diff,
                      cert: PassCertificate) -> None:
    """Single-assignment audit of the changed defs, O(events).

    Runs against the *pre-pass* snapshot: a def introduced or
    retargeted by the pass must not collide with a def that survives
    the pass, and no two changed defs may name the same register.  No
    pipeline pass legitimately retargets a destination, so a hit here
    is always a pass writing over someone else's SSA name.
    """
    name = snap.function
    out = cert.findings
    removed_iids = set(d.removed)
    removed_pids = set(d.phi_removed)
    seen: Dict[int, int] = {}

    def check_def(dst, kind: str, oid: int,
                  index: Optional[int]) -> None:
        if dst is None or dst.precolored:
            return
        rid = id(dst)
        prev = seen.get(rid)
        if prev is not None and prev != oid:
            out.append(Diagnostic(
                "error", "tv.wf.ssa", name, index,
                f"multiple changed defs of {dst!r}"))
        seen[rid] = oid
        site = snap.def_of.get(rid)
        if site is None or site == (kind, oid):
            return
        skind, soid = site
        survives = (soid not in removed_iids if skind == "i"
                    else soid not in removed_pids)
        if survives:
            out.append(Diagnostic(
                "error", "tv.wf.ssa", name, index,
                f"changed def of {dst!r} shadows a surviving def"))

    for iid, _f, instr in d.rewrites:
        check_def(instr.dst, "i", iid, snap.block_of.get(iid))
    for iid, instr, b in d.inserted:
        check_def(instr.dst, "i", iid, b)
    for iid, _fb, tb in d.moved:
        obj = snap.objs.get(iid)
        if obj is not None:
            check_def(obj.dst, "i", iid, tb)
    for pid, phi in d.phi_arg_changes:
        check_def(phi.dst, "p", pid, snap.phi_block.get(pid))
    for pid, phi, b in d.phi_inserted:
        check_def(phi.dst, "p", pid, b)


def _check_events_wf(snap: Snapshot, ssa: SsaFunction, d: Diff,
                     cert: PassCertificate, touched: Set[int],
                     placement: Set[int]) -> None:
    """Event-scoped well-formedness: O(changed blocks), not O(function).

    Runs *after* :func:`apply_diff`, so *snap* mirrors the current
    state of *ssa* — def sites and instruction positions come straight
    from the snapshot's maps with no block walks.  Only blocks named by
    the diff get structural checks and only changed instructions and
    phis get use/dominance checks.  The pipeline anchors this with a
    full :func:`check_wellformed` on the post-build state and on the
    final fixpoint state, and :func:`_check_events_ssa` audits the
    changed defs against the pre-pass state.
    """
    name = snap.function
    out = cert.findings

    def fail(rule: str, message: str, index: Optional[int] = None) -> None:
        out.append(Diagnostic("error", rule, name, index, message))

    if d.edge_added or d.edge_removed or d.new_blocks or d.killed_blocks:
        # Dominance checks below must see the graph as it is now.
        ssa.recompute_dominators()
    live = set(snap.blocks)
    if d.new_blocks or d.killed_blocks or d.label_changed:
        labels: Dict[str, int] = {}
        for block in ssa.live_blocks():
            if block.label is not None:
                if block.label in labels:
                    fail("tv.wf.cfg",
                         f"duplicate label {block.label!r}", block.index)
                labels[block.label] = block.index
    else:
        # No block-level events: the snapshot's label map is current.
        labels = snap.labels
    if 0 not in live:
        fail("tv.wf.cfg", "entry block is dead")
        return

    block_of = snap.block_of
    pos_of = snap.pos_of
    phi_block = snap.phi_block
    def_of = snap.def_of

    # Full structural checks only where structure could have changed:
    # placement events, CFG/label events, and any rewrite touching a
    # terminator kind.  Pure value rewrites and phi-arg updates cannot
    # move terminators or edges; their phis are checked inline below.
    if d.killed_blocks:
        structural = set(touched)  # rare; neighbors are unrecoverable
    else:
        structural = set(placement)
        structural.update(d.label_changed)
        for a, b in d.edge_added:
            structural.add(a)
            structural.add(b)
        for a, b in d.edge_removed:
            structural.add(a)
            structural.add(b)
        for iid, f, instr in d.rewrites:
            if f[K] in ("jmp", "br") or instr.kind in ("jmp", "br"):
                b = block_of.get(iid)
                if b is not None:
                    structural.add(b)
    structural &= live
    for index in structural:
        _check_block(ssa, ssa.blocks[index], labels, live, name, out)

    def check_use(reg, ub: int, upos: int, where) -> None:
        if not isinstance(reg, VReg) or reg.precolored:
            return
        site = def_of.get(id(reg))
        if site is None:
            fail("tv.wf.ssa",
                 f"{where!r}: use of undefined {reg!r}", ub)
            return
        kind, oid = site
        if kind == "i":
            db = block_of.get(oid)
            dpos = pos_of.get(oid, 0)
        else:
            db = phi_block.get(oid)
            dpos = -1
        if db is None:
            fail("tv.wf.ssa",
                 f"{where!r}: use of undefined {reg!r}", ub)
        elif db == ub:
            if not dpos < upos:
                fail("tv.wf.ssa",
                     f"{where!r}: {reg!r} used before def", ub)
        elif not ssa.dominates(db, ub):
            fail("tv.wf.ssa",
                 f"{where!r}: def of {reg!r} (block {db}) does not "
                 f"dominate use in block {ub}", ub)

    changed: Dict[int, IrInstr] = {}
    for iid, _f, instr in d.rewrites:
        changed[iid] = instr
    for iid, instr, _b in d.inserted:
        changed[iid] = instr
    for iid, _fb, _tb in d.moved:
        obj = snap.objs.get(iid)
        if obj is not None:
            changed[iid] = obj
    for iid, instr in changed.items():
        b = block_of.get(iid)
        if b is None:
            continue  # vanished again; the diff covers it elsewhere
        _check_instr(instr, name, b, out)
        pos = pos_of[iid]
        for reg in instr.uses():
            check_use(reg, b, pos, instr)

    changed_phis: Dict[int, Any] = {}
    for pid, phi in d.phi_arg_changes:
        changed_phis[pid] = phi
    for pid, phi, _b in d.phi_inserted:
        changed_phis[pid] = phi
    for pid, _fb, _tb in d.phi_moved:
        obj = snap.phi_objs.get(pid)
        if obj is not None:
            changed_phis[pid] = obj
    for pid, phi in changed_phis.items():
        b = phi_block.get(pid)
        if b is None:
            continue
        if b not in structural:
            # Mirrors _check_block's phi discipline for blocks that get
            # no structural pass of their own.
            if phi.dst.precolored:
                fail("tv.wf.precolored",
                     f"phi defines precolored {phi.dst!r}", b)
            for arg in phi.args.values():
                if not isinstance(arg, VReg):
                    fail("tv.wf.opcode",
                         f"phi arg {arg!r} is not a register", b)
                elif arg.precolored:
                    fail("tv.wf.precolored",
                         f"phi reads precolored {arg!r}", b)
                elif arg.is_float != phi.dst.is_float:
                    fail("tv.wf.type",
                         f"phi {phi!r} mixes register classes", b)
            preds = ssa.blocks[b].pred
            if len(phi.args) != len(preds) \
                    or set(phi.args) != set(preds):
                fail("tv.wf.ssa",
                     f"phi args {sorted(phi.args)} do not match "
                     f"predecessors {sorted(preds)}", b)
        for pred, arg in phi.args.items():
            if pred in live:
                check_use(arg, pred, len(ssa.blocks[pred].instrs), phi)


def _instr_use_ids(instr: IrInstr, used: Set[int]) -> None:
    for reg in instr.uses():
        if isinstance(reg, VReg):
            used.add(id(reg))
    if isinstance(instr.base, VReg):
        used.add(id(instr.base))


def _after_use_ids(snap: Snapshot, d: Diff) -> Set[int]:
    """ids of every register read anywhere in the *post-pass* state.

    Derived from the pre-pass snapshot plus the event stream — dict and
    field-tuple traffic only, no walk of the IR objects: survivors
    contribute their recorded uses, rewritten/inserted sites contribute
    their current operands.  (Moves keep their content, so they count
    as survivors; killed-block instructions appear in ``d.removed``.)
    """
    used: Set[int] = set()
    gone: Set[int] = set(d.removed)
    for iid, _f, _instr in d.rewrites:
        gone.add(iid)
    for iid, f in snap.fields.items():
        if iid not in gone:
            used.update(_field_uses(f))
    changed_phis: Set[int] = set(d.phi_removed)
    for pid, _phi in d.phi_arg_changes:
        changed_phis.add(pid)
    for pid, args in snap.phi_args.items():
        if pid not in changed_phis:
            used.update(args.values())
    for _iid, _f, instr in d.rewrites:
        _instr_use_ids(instr, used)
    for _iid, instr, _b in d.inserted:
        _instr_use_ids(instr, used)
    for _pid, phi in d.phi_arg_changes:
        used.update(map(id, phi.args.values()))
    for _pid, phi, _b in d.phi_inserted:
        used.update(map(id, phi.args.values()))
    used.discard(None)
    return used


_EVENT_KINDS = ("rewrites", "removed", "inserted", "moved", "phi_removed",
                "phi_inserted", "phi_arg_changes", "new_blocks",
                "killed_blocks", "edge_removed", "edge_added")


def _flag_all(cert: PassCertificate, snap: Snapshot, d: Diff,
              skip: Set[str]) -> None:
    """Flag every event category the certifier did not claim to handle."""
    name = cert.pass_name
    if "rewrites" not in skip:
        for iid, f, instr in d.rewrites:
            cert.fail("tv.diff.unjustified",
                      f"{name} rewrote {f[K]} -> {instr.kind}",
                      snap.block_of.get(iid))
    if "removed" not in skip:
        for iid in d.removed:
            cert.fail("tv.diff.unjustified",
                      f"{name} removed a {snap.fields[iid][K]} instruction",
                      snap.block_of.get(iid))
    if "inserted" not in skip:
        for _iid, instr, b in d.inserted:
            cert.fail("tv.diff.unjustified",
                      f"{name} inserted {instr!r}", b)
    if "moved" not in skip:
        for iid, fb, tb in d.moved:
            cert.fail("tv.diff.unjustified",
                      f"{name} moved an instruction from block {fb} to "
                      f"{tb}", tb)
    if "phi_removed" not in skip:
        for pid in d.phi_removed:
            cert.fail("tv.diff.unjustified",
                      f"{name} removed a phi", snap.phi_block.get(pid))
    if "phi_inserted" not in skip:
        for _pid, phi, b in d.phi_inserted:
            cert.fail("tv.diff.unjustified", f"{name} inserted {phi!r}", b)
    if "phi_arg_changes" not in skip:
        for pid, _phi in d.phi_arg_changes:
            cert.fail("tv.diff.unjustified",
                      f"{name} rewrote a phi", snap.phi_block.get(pid))
    if "new_blocks" not in skip:
        for index in sorted(d.new_blocks):
            cert.fail("tv.diff.unjustified",
                      f"{name} created block {index}", index)
    if "killed_blocks" not in skip:
        for index in sorted(d.killed_blocks):
            cert.fail("tv.diff.unjustified",
                      f"{name} killed block {index}", index)
    if "edge_removed" not in skip:
        for src, dst in sorted(d.edge_removed):
            cert.fail("tv.diff.unjustified",
                      f"{name} removed edge {src}->{dst}", src)
    if "edge_added" not in skip:
        for src, dst in sorted(d.edge_added):
            cert.fail("tv.diff.unjustified",
                      f"{name} added edge {src}->{dst}", src)


# -- helpers shared by several certifiers -------------------------------------


def _operand_only_change(f: Tuple, nf: Tuple) -> bool:
    """True when only register operands (a, b, reg base) differ."""
    for i in range(12):
        if i in (A, B):
            continue
        if i == BASE:
            if f[i] != nf[i]:
                if not (isinstance(f[i], tuple) and f[i][0] == "reg"
                        and isinstance(nf[i], tuple) and nf[i][0] == "reg"):
                    return False
            continue
        if f[i] != nf[i]:
            return False
    return True


def _operand_changes(f: Tuple, instr: IrInstr):
    """Yield ``(old_rid, new_reg)`` for each changed register operand."""
    if f[A] != (id(instr.a) if instr.a is not None else None):
        yield f[A], instr.a
    if f[B] != (id(instr.b) if instr.b is not None else None):
        yield f[B], instr.b
    nb = _base_key(instr.base)
    if f[BASE] != nb and isinstance(f[BASE], tuple) \
            and f[BASE][0] == "reg":
        yield f[BASE][1], instr.base


def _untracked_from_snap(snap: Snapshot) -> Set[int]:
    """Mirror of ``passes._untracked_slots`` over the snapshot."""
    bad: Set[int] = set()
    for f in snap.fields.values():
        base = f[BASE]
        if not (isinstance(base, tuple) and base[0] == "frame"):
            continue
        if f[K] == "la_frame":
            bad.add(base[1])
        elif f[K] in ("load", "store"):
            slot = snap.slots[base[1]]
            imm = f[IMM]
            if not isinstance(imm, int) or imm % 4 != 0 or imm < 0 \
                    or imm + 4 > 4 * slot.words:
                bad.add(base[1])
    return bad


def _snap_frame_key(snap: Snapshot, f: Tuple,
                    untracked: Set[int]) -> Optional[Tuple]:
    """Mirror of ``passes._frame_key`` over a snapshot field tuple."""
    base = f[BASE]
    if not (isinstance(base, tuple) and base[0] == "frame"):
        return None
    sid = base[1]
    if sid in untracked:
        return None
    slot = snap.slots[sid]
    imm = f[IMM]
    if not isinstance(imm, int) or imm % 4 != 0 or imm < 0 \
            or imm + 4 > 4 * slot.words:
        return None
    return (sid, imm)


# -- SCCP ---------------------------------------------------------------------


def _field_uses(f: Tuple) -> List[Optional[int]]:
    kind = f[K]
    if kind in ("mov", "cvt", "bini"):
        return [f[A]]
    if kind == "bin":
        return [f[A], f[B]]
    if kind == "load":
        base = f[BASE]
        return [base[1]] if isinstance(base, tuple) \
            and base[0] == "reg" else []
    if kind == "store":
        out = [f[A]]
        base = f[BASE]
        if isinstance(base, tuple) and base[0] == "reg":
            out.append(base[1])
        return out
    if kind == "br":
        return [f[A]]
    if kind in ("call", "ret"):
        return list(f[ARGS])
    return []


def _const_lattice(snap: Snapshot,
                   needed: Optional[List[Optional[int]]] = None
                   ) -> Dict[int, Any]:
    """Recompute SCCP's optimistic constant lattice over the snapshot.

    Returned map: register id -> int constant or ``_BOTTOM`` (absent
    means TOP / never evaluated).  Mirrors
    ``passes.propagate_constants`` exactly, including the optimistic
    TOP-skipping phi meet, so every fold the pass may legitimately claim
    is derivable here — and nothing else is.

    With *needed* given, only the backward dataflow closure of those
    register ids is solved.  The dataflow value of a register depends
    only on its transitive operands, so the sliced fixpoint is
    identical to the full one on every queried register.
    """
    values: Dict[int, Any] = {}
    users: Dict[int, List[int]] = {}
    def_entry: Dict[int, Tuple[str, int]] = {}
    # One sweep beats a _rid_virtual dict probe per operand visit.
    virt = {rid for rid, reg in snap.vreg.items() if not reg.precolored}

    for pid, args in snap.phi_args.items():
        def_entry[snap.phi_dst[pid]] = ("p", pid)
    for iid, f in snap.fields.items():
        dst = f[DST]
        if dst in virt:
            def_entry[dst] = ("i", iid)

    def entry_operands(entry: Tuple[str, int]):
        tag, key = entry
        if tag == "p":
            return snap.phi_args[key].values()
        return _field_uses(snap.fields[key])

    if needed is None:
        members = set(def_entry)
    else:
        members = {rid for rid in needed
                   if rid is not None and rid in def_entry}
        frontier = list(members)
        while frontier:
            rid = frontier.pop()
            for op_ in entry_operands(def_entry[rid]):
                if op_ in virt and op_ in def_entry                         and op_ not in members:
                    members.add(op_)
                    frontier.append(op_)
    for rid in members:
        for op_ in entry_operands(def_entry[rid]):
            if op_ in virt:
                users.setdefault(op_, []).append(rid)

    def val(rid: Optional[int]) -> Any:
        if rid not in virt:
            return _BOTTOM
        return values.get(rid)

    def evaluate(entry: Tuple[str, int]) -> Any:
        tag, key = entry
        if tag == "p":
            out = None
            for aid in snap.phi_args[key].values():
                v = val(aid)
                if v is None:
                    continue
                if v is _BOTTOM or (out is not None and v != out):
                    return _BOTTOM
                out = v
            return out
        f = snap.fields[key]
        kind = f[K]
        if kind == "li":
            return to_signed32(f[IMM])
        if kind == "mov" and not f[ISF]:
            return val(f[A])
        if kind == "bin" and f[OP] in _FOLDABLE_INT:
            a, b = val(f[A]), val(f[B])
            if a is _BOTTOM or b is _BOTTOM:
                return _BOTTOM
            if a is None or b is None:
                return None
            if not _div_ok(a, b, f[OP]):
                return _BOTTOM
            return to_signed32(_FOLDABLE_INT[f[OP]](a, b))
        if kind == "bini" and f[OP] in _FOLDABLE_INT:
            a = val(f[A])
            if a is _BOTTOM or a is None:
                return a
            if not _div_ok(a, f[IMM], f[OP]):
                return _BOTTOM
            return to_signed32(_FOLDABLE_INT[f[OP]](a, f[IMM]))
        return _BOTTOM

    work = list(members)
    while work:
        rid = work.pop()
        new = evaluate(def_entry[rid])
        if new is None or new == values.get(rid):
            continue
        values[rid] = new
        for dst in users.get(rid, ()):
            if dst in virt:
                work.append(dst)  # type: ignore[arg-type]
    return values


def _certify_sccp(snap: Snapshot, ssa: SsaFunction, d: Diff,
                  cert: PassCertificate) -> None:
    # Everything cval() below may be asked about: operands/dsts of
    # rewrites, conditions of removed branches, dsts of removed phis.
    needed: List[Optional[int]] = []
    for _iid, f, _instr in d.rewrites:
        needed.extend((f[DST], f[A], f[B]))
    for iid in d.removed:
        needed.append(snap.fields[iid][A])
    for pid in d.phi_removed:
        needed.append(snap.phi_dst[pid])
    values = _const_lattice(snap, needed)

    def cval(rid: Optional[int]) -> Optional[int]:
        if rid is None:
            return None
        v = values.get(rid)
        return v if isinstance(v, int) else None

    fold_edges: Set[Tuple[int, int]] = set()

    for iid, f, instr in d.rewrites:
        block = snap.block_of[iid]
        nkind = instr.kind
        ndst = id(instr.dst) if instr.dst is not None else None
        if nkind == "li" and f[K] in ("bin", "bini", "mov"):
            if f[DST] != ndst:
                cert.fail("tv.sccp.const-fold",
                          "fold changed the destination register", block)
                continue
            if f[K] == "mov" and instr.dst is not None \
                    and instr.dst.precolored:
                want = cval(f[A])
            else:
                want = cval(f[DST])
            if f[ISF] or want is None or instr.imm != want:
                cert.fail("tv.sccp.const-fold",
                          f"folded to li {instr.imm!r} but the lattice "
                          f"proves {want!r}", block)
            continue
        if nkind == "bini" and f[K] == "bin":
            ok = False
            aid = id(instr.a) if instr.a is not None else None
            if f[DST] == ndst and isinstance(instr.imm, int) \
                    and -32768 <= instr.imm <= 32767:
                if instr.op == f[OP] and f[OP] in _BINI_SAFE \
                        and aid == f[A] and cval(f[B]) == instr.imm:
                    ok = True
                elif f[OP] == "sub" and instr.op == "add" and aid == f[A] \
                        and cval(f[B]) is not None \
                        and instr.imm == -cval(f[B]):
                    ok = True
                elif instr.op == f[OP] and f[OP] in _COMMUTATIVE \
                        and f[OP] in _BINI_SAFE and aid == f[B] \
                        and cval(f[A]) == instr.imm:
                    ok = True
            if not ok:
                cert.fail("tv.sccp.const-fold",
                          f"bin -> bini {instr.op!r} imm {instr.imm!r} "
                          f"not justified by the lattice", block)
            continue
        if nkind == "jmp" and f[K] == "br":
            v = cval(f[A])
            taken = None if v is None else \
                ((v == 0) if f[INV] else (v != 0))
            if instr.sym != f[SYM] or taken is not True:
                cert.fail("tv.sccp.branch-fold",
                          f"br folded to jmp but the lattice proves "
                          f"condition={v!r} taken={taken!r}", block)
            else:
                target = snap.labels.get(f[SYM])
                for succ in snap.blocks[block].succ:
                    if succ != target:
                        fold_edges.add((block, succ))
            continue
        cert.fail("tv.diff.unjustified",
                  f"sccp rewrote {f[K]} -> {nkind}", block)

    # Removed instructions: a popped not-taken br, or fallout of a
    # certified-unreachable block (checked below).  A br-at-end whose
    # not-taken proof fails is *deferred*, not failed outright: brs
    # inside blocks that die as unreachability fallout land in
    # ``d.removed`` too, and for those no fold proof exists or is
    # needed — the unreachability witness excuses them like any other
    # dead-block instruction.
    removed_rest: List[int] = []
    unproven_br: List[Tuple[int, int, Optional[int]]] = []
    for iid in d.removed:
        f = snap.fields[iid]
        block = snap.block_of[iid]
        at_end = snap.pos_of[iid] == len(snap.blocks[block].instr_ids) - 1
        if f[K] == "br" and at_end:
            v = cval(f[A])
            taken = None if v is None else \
                ((v == 0) if f[INV] else (v != 0))
            if taken is False:
                target = snap.labels.get(f[SYM])
                fall = [s for s in snap.blocks[block].succ if s != target]
                if fall:  # degenerate br (both arms equal) keeps its edge
                    fold_edges.add((block, target))
                continue
            unproven_br.append((iid, block, v))
            continue
        removed_rest.append(iid)

    # Inserted li instructions must materialize a constant phi.
    const_phi = {snap.phi_dst[pid]: pid for pid in d.phi_removed}
    justified_phi: Set[int] = set()
    for _iid, instr, b in d.inserted:
        ok = False
        if instr.kind == "li" and instr.dst is not None \
                and not instr.dst.is_float:
            pid = const_phi.get(id(instr.dst))
            if pid is not None and snap.phi_block[pid] == b \
                    and cval(snap.phi_dst[pid]) == instr.imm:
                justified_phi.add(pid)
                ok = True
        if not ok:
            cert.fail("tv.sccp.const-fold",
                      f"inserted {instr!r} does not materialize a "
                      f"constant phi", b)

    # Unreachability witness: reachability over the *before* graph minus
    # only the certified fold edges.  Anything the pass killed must be
    # unreachable in that graph — justifying kills by the after graph
    # would be circular.
    reach = {0}
    stack = [0]
    while stack:
        b = stack.pop()
        for succ in snap.blocks[b].succ:
            if (b, succ) in fold_edges or succ in reach:
                continue
            reach.add(succ)
            stack.append(succ)
    unreachable = set(snap.blocks) - reach

    for index in sorted(d.killed_blocks):
        if index not in unreachable:
            cert.fail("tv.sccp.cfg",
                      f"killed block {index} is still reachable", index)
    for _iid, block, v in unproven_br:
        if block not in unreachable:
            cert.fail("tv.sccp.branch-fold",
                      f"br removed as not-taken but the lattice proves "
                      f"condition={v!r}", block)
    for iid in removed_rest:
        block = snap.block_of[iid]
        if block not in unreachable:
            cert.fail("tv.sccp.cfg",
                      f"removed a {snap.fields[iid][K]} from reachable "
                      f"block {block}", block)
    for pid in d.phi_removed:
        if pid in justified_phi:
            continue
        block = snap.phi_block[pid]
        if block not in unreachable:
            cert.fail("tv.sccp.cfg",
                      f"removed a live phi from reachable block {block}",
                      block)
    for src, dst in sorted(d.edge_removed):
        if (src, dst) in fold_edges or src in unreachable \
                or dst in unreachable:
            continue
        cert.fail("tv.sccp.cfg",
                  f"removed edge {src}->{dst} without a branch-fold "
                  f"witness", src)

    # Surviving phis may only lose the args of removed edges.
    for pid, phi in d.phi_arg_changes:
        block = snap.phi_block[pid]
        before = snap.phi_args[pid]
        expected = {p: aid for p, aid in before.items()
                    if (p, block) not in d.edge_removed
                    and p not in unreachable}
        now = {p: id(a) for p, a in phi.args.items()}
        if id(phi.dst) != snap.phi_dst[pid] or now != expected:
            cert.fail("tv.sccp.cfg",
                      f"phi args changed beyond removed-edge fallout in "
                      f"block {block}", block)

    _flag_all(cert, snap, d, skip={
        "rewrites", "removed", "inserted", "phi_removed",
        "phi_arg_changes", "killed_blocks", "edge_removed"})


# -- copy propagation ---------------------------------------------------------


def _copy_step(snap: Snapshot, rid: int) -> Optional[int]:
    """One step along the copy chain: the source *rid* is a copy of."""
    entry = snap.def_of.get(rid)
    if entry is None:
        return None
    tag, key = entry
    if tag == "i":
        f = snap.fields[key]
        if f[K] == "mov" and _rid_virtual(snap, f[A]) \
                and _rid_virtual(snap, f[DST]):
            return f[A]
        return None
    sources = {aid for aid in snap.phi_args[key].values()
               if aid != snap.phi_dst[key]}
    if len(sources) == 1:
        src = sources.pop()
        if _rid_virtual(snap, src):
            return src
    return None


def _copy_reaches(snap: Snapshot, old: Optional[int],
                  new: Optional[int]) -> bool:
    """True when *old* resolves to *new* through the pre-pass copy chain."""
    if old is None or new is None:
        return False
    seen: Set[int] = set()
    cur: Optional[int] = old
    while cur is not None and cur not in seen:
        if cur == new:
            return True
        seen.add(cur)
        cur = _copy_step(snap, cur)
    return False


def _certify_copy(snap: Snapshot, ssa: SsaFunction, d: Diff,
                  cert: PassCertificate) -> None:
    used_after = _after_use_ids(snap, d) if d.phi_removed else ()

    for iid, f, instr in d.rewrites:
        block = snap.block_of[iid]
        if not _operand_only_change(f, _fields(instr)):
            cert.fail("tv.diff.unjustified",
                      f"copy-prop rewrote non-operand fields of "
                      f"{instr!r}", block)
            continue
        for old, new in _operand_changes(f, instr):
            if not (_virtual(new) and _copy_reaches(snap, old, id(new))):
                cert.fail("tv.copy.not-copy",
                          f"use rewritten to {new!r}, which the copy "
                          f"chain does not prove equal", block)

    for pid, phi in d.phi_arg_changes:
        block = snap.phi_block[pid]
        before = snap.phi_args[pid]
        now = {p: id(a) for p, a in phi.args.items()}
        if id(phi.dst) != snap.phi_dst[pid] or set(now) != set(before):
            cert.fail("tv.diff.unjustified",
                      f"copy-prop restructured {phi!r}", block)
            continue
        for p, aid in now.items():
            if aid != before[p] and not (
                    _rid_virtual(snap, aid)
                    and _copy_reaches(snap, before[p], aid)):
                cert.fail("tv.copy.not-copy",
                          f"phi arg rewritten without a copy-chain "
                          f"witness in block {block}", block)

    for pid in d.phi_removed:
        block = snap.phi_block[pid]
        sources = {aid for aid in snap.phi_args[pid].values()
                   if aid != snap.phi_dst[pid]}
        single = len(sources) == 1 and _rid_virtual(snap, next(iter(sources)))
        if not single:
            cert.fail("tv.copy.not-copy",
                      f"removed phi in block {block} is not a "
                      f"single-source copy", block)
        elif snap.phi_dst[pid] in used_after:
            cert.fail("tv.copy.not-copy",
                      f"removed phi in block {block} still has uses",
                      block)

    _flag_all(cert, snap, d,
              skip={"rewrites", "phi_arg_changes", "phi_removed"})


# -- global value numbering ---------------------------------------------------


def _resolve_mov(snap: Snapshot, rid: int) -> int:
    seen: Set[int] = set()
    while rid not in seen:
        seen.add(rid)
        entry = snap.def_of.get(rid)
        if entry is None or entry[0] != "i":
            return rid
        f = snap.fields[entry[1]]
        if f[K] == "mov" and _rid_virtual(snap, f[A]) \
                and _rid_virtual(snap, f[DST]):
            rid = f[A]
        else:
            return rid
    return rid


def _congruent(snap: Snapshot, x: Optional[int], y: Optional[int],
               memo: Dict[Tuple[int, int], bool]) -> bool:
    """Coinductive structural congruence over the pre-pass SSA graph."""
    if x is None or y is None:
        return False
    if not (_rid_virtual(snap, x) and _rid_virtual(snap, y)):
        return False
    x = _resolve_mov(snap, x)
    y = _resolve_mov(snap, y)
    if x == y:
        return True
    key = (x, y) if x <= y else (y, x)
    if key in memo:
        return memo[key]
    memo[key] = True  # coinductive assumption for cyclic (phi) terms
    ok = _structural_congruence(snap, x, y, memo)
    memo[key] = ok
    return ok


def _structural_congruence(snap: Snapshot, x: int, y: int,
                           memo: Dict[Tuple[int, int], bool]) -> bool:
    dx = snap.def_of.get(x)
    dy = snap.def_of.get(y)
    if dx is None or dy is None or dx[0] != dy[0]:
        return False
    if snap.vreg[x].is_float != snap.vreg[y].is_float:
        return False
    if dx[0] == "p":
        ax, ay = snap.phi_args[dx[1]], snap.phi_args[dy[1]]
        if snap.phi_block[dx[1]] != snap.phi_block[dy[1]] \
                or set(ax) != set(ay):
            return False
        return all(_congruent(snap, ax[p], ay[p], memo) for p in ax)
    fx, fy = snap.fields[dx[1]], snap.fields[dy[1]]
    if fx[K] != fy[K]:
        return False
    kind = fx[K]
    if kind == "li":
        return to_signed32(fx[IMM]) == to_signed32(fy[IMM])
    if kind == "lfi":
        return repr(float(fx[IMM])) == repr(float(fy[IMM]))
    if kind == "la_global":
        return fx[SYM] == fy[SYM] and fx[IMM] == fy[IMM]
    if kind == "la_frame":
        return fx[BASE] == fy[BASE] and fx[IMM] == fy[IMM]
    if kind == "cvt":
        return fx[OP] == fy[OP] and _congruent(snap, fx[A], fy[A], memo)
    if kind == "bini":
        return fx[OP] == fy[OP] and fx[IMM] == fy[IMM] \
            and _congruent(snap, fx[A], fy[A], memo)
    if kind == "bin":
        if fx[OP] != fy[OP]:
            return False
        if _congruent(snap, fx[A], fy[A], memo) \
                and _congruent(snap, fx[B], fy[B], memo):
            return True
        return fx[OP] in _COMMUTATIVE \
            and _congruent(snap, fx[A], fy[B], memo) \
            and _congruent(snap, fx[B], fy[A], memo)
    return False


def _certify_gvn(snap: Snapshot, ssa: SsaFunction, d: Diff,
                 cert: PassCertificate) -> None:
    memo: Dict[Tuple[int, int], bool] = {}

    for iid, f, instr in d.rewrites:
        block = snap.block_of[iid]
        if instr.kind == "mov" and f[K] in _SSA_PURE and f[K] != "mov":
            ndst = id(instr.dst) if instr.dst is not None else None
            if f[DST] != ndst or not _virtual(instr.a) \
                    or not _congruent(snap, f[DST], id(instr.a), memo):
                cert.fail("tv.gvn.not-congruent",
                          f"{f[K]} merged into mov from {instr.a!r} "
                          f"without a congruence witness", block)
            continue
        if _operand_only_change(f, _fields(instr)):
            for old, new in _operand_changes(f, instr):
                if not (_virtual(new)
                        and _congruent(snap, old, id(new), memo)):
                    cert.fail("tv.gvn.not-congruent",
                              f"use rewritten to non-congruent "
                              f"{new!r}", block)
            continue
        cert.fail("tv.diff.unjustified",
                  f"value numbering rewrote {f[K]} -> {instr.kind}", block)

    for pid, phi in d.phi_arg_changes:
        block = snap.phi_block[pid]
        before = snap.phi_args[pid]
        now = {p: id(a) for p, a in phi.args.items()}
        if id(phi.dst) != snap.phi_dst[pid] or set(now) != set(before):
            cert.fail("tv.diff.unjustified",
                      f"value numbering restructured {phi!r}", block)
            continue
        for p, aid in now.items():
            if aid != before[p] and not (
                    _rid_virtual(snap, aid)
                    and _congruent(snap, before[p], aid, memo)):
                cert.fail("tv.gvn.not-congruent",
                          f"phi arg rewritten to a non-congruent name "
                          f"in block {block}", block)

    _flag_all(cert, snap, d, skip={"rewrites", "phi_arg_changes"})


# -- store-to-load forwarding -------------------------------------------------


def _certify_fwd(snap: Snapshot, ssa: SsaFunction, d: Diff,
                 cert: PassCertificate) -> None:
    untracked = _untracked_from_snap(snap)
    # Loads forwarded in this same run do not refresh the available
    # value, so the backward scan skips them.
    forwarded = {iid for iid, f, instr in d.rewrites
                 if f[K] == "load" and instr.kind == "mov"}

    for iid, f, instr in d.rewrites:
        block = snap.block_of[iid]
        ndst = id(instr.dst) if instr.dst is not None else None
        if f[K] != "load" or instr.kind != "mov" or f[DST] != ndst \
                or not _virtual(instr.a):
            cert.fail("tv.diff.unjustified",
                      f"store forwarding rewrote {f[K]} -> "
                      f"{instr.kind}", block)
            continue
        key = _snap_frame_key(snap, f, untracked)
        if key is None:
            cert.fail("tv.fwd.stale",
                      "forwarded a load of an untracked slot", block)
            continue
        want = id(instr.a)
        ok = False
        reason = "no earlier same-word access in the block"
        ids = snap.blocks[block].instr_ids
        for jid in reversed(ids[:snap.pos_of[iid]]):
            g = snap.fields[jid]
            if g[K] not in ("load", "store"):
                continue
            if _snap_frame_key(snap, g, untracked) != key:
                continue
            if g[K] == "store":
                if g[ISF] != f[ISF]:
                    reason = "an other-typed store clobbers the word"
                elif not _rid_virtual(snap, g[A]):
                    reason = "the nearest store writes a non-virtual value"
                else:
                    ok = g[A] == want
                    reason = "the nearest store writes a different register"
                break
            if g[ISF] != f[ISF] or jid in forwarded:
                continue
            ok = g[DST] == want and _rid_virtual(snap, g[DST])
            reason = "the nearest load produced a different register"
            break
        if not ok:
            cert.fail("tv.fwd.stale",
                      f"load -> mov from {instr.a!r}: {reason}", block)

    _flag_all(cert, snap, d, skip={"rewrites"})


# -- dead store elimination ---------------------------------------------------


def _certify_dse(snap: Snapshot, ssa: SsaFunction, d: Diff,
                 cert: PassCertificate) -> None:
    untracked = _untracked_from_snap(snap)
    removed = set(d.removed)

    def scan(block: int, start: int, key: Tuple) -> str:
        for jid in snap.blocks[block].instr_ids[start:]:
            g = snap.fields[jid]
            if g[K] not in ("load", "store"):
                continue
            if _snap_frame_key(snap, g, untracked) != key:
                continue
            if g[K] == "load":
                return "load"
            if jid not in removed:  # only surviving stores kill the word
                return "killed"
        return "fall"

    for iid in d.removed:
        f = snap.fields[iid]
        block = snap.block_of[iid]
        if f[K] != "store":
            cert.fail("tv.diff.unjustified",
                      f"dead-store elimination removed a {f[K]}", block)
            continue
        key = _snap_frame_key(snap, f, untracked)
        if key is None:
            cert.fail("tv.dse.live-store",
                      "removed a store to an untracked slot", block)
            continue
        state = scan(block, snap.pos_of[iid] + 1, key)
        if state == "fall":
            visited: Set[int] = set()
            stack = list(snap.blocks[block].succ)
            while stack and state != "load":
                b = stack.pop()
                if b in visited:
                    continue
                visited.add(b)
                state = scan(b, 0, key)
                if state == "fall":
                    stack.extend(snap.blocks[b].succ)
        if state == "load":
            cert.fail("tv.dse.live-store",
                      f"removed store to slot word {key[1]} reaches a "
                      f"later load", block)

    _flag_all(cert, snap, d, skip={"removed"})


# -- dead code elimination ----------------------------------------------------


def _snap_safe_dead_load(snap: Snapshot, f: Tuple) -> bool:
    base = f[BASE]
    if not (isinstance(base, tuple) and base[0] == "frame"):
        return False
    slot = snap.slots[base[1]]
    imm = f[IMM]
    return isinstance(imm, int) and imm >= 0 and imm + 4 <= 4 * slot.words


def _certify_dce(snap: Snapshot, ssa: SsaFunction, d: Diff,
                 cert: PassCertificate) -> None:
    used_after = _after_use_ids(snap, d)

    for iid in d.removed:
        f = snap.fields[iid]
        block = snap.block_of[iid]
        pure = f[K] in _SSA_PURE \
            or (f[K] == "load" and _snap_safe_dead_load(snap, f))
        if not pure:
            cert.fail("tv.dce.effectful",
                      f"removed a {f[K]} with side effects", block)
            continue
        dst = f[DST]
        if dst is not None and snap.vreg[dst].precolored:
            cert.fail("tv.dce.effectful",
                      "removed a definition of a precolored register",
                      block)
            continue
        if dst is not None and dst in used_after:
            cert.fail("tv.dce.live",
                      f"removed {snap.vreg[dst]!r} but it still has uses",
                      block)

    for pid in d.phi_removed:
        if snap.phi_dst[pid] in used_after:
            cert.fail("tv.dce.live",
                      "removed a phi whose value still has uses",
                      snap.phi_block[pid])

    _flag_all(cert, snap, d, skip={"removed", "phi_removed"})


# -- loop-invariant code motion -----------------------------------------------


def _certify_licm(snap: Snapshot, ssa: SsaFunction, d: Diff,
                  cert: PassCertificate) -> None:
    after_label = {b.label: b.index for b in ssa.live_blocks()
                   if b.label is not None}
    pre_info: Dict[int, Tuple[int, int]] = {}
    for index in sorted(d.new_blocks):
        block = ssa.blocks[index]
        if len(block.pred) != 1 or len(block.succ) != 1 or block.phis:
            cert.fail("tv.licm.preheader",
                      f"new block {index} is not a single-entry, "
                      f"single-exit preheader", index)
            continue
        pre_info[index] = (block.pred[0], block.succ[0])

    # Fresh dominators over the after graph (non-mutating).
    idom = _dominators(ssa)

    def_site: Dict[int, Tuple[int, int]] = {}
    pos_after: Dict[int, Tuple[int, int]] = {}
    for block in ssa.live_blocks():
        for phi in block.phis:
            def_site[id(phi.dst)] = (block.index, -1)
        for pos, instr in enumerate(block.instrs):
            pos_after[id(instr)] = (block.index, pos)
            if instr.dst is not None:
                def_site[id(instr.dst)] = (block.index, pos)

    for iid, from_b, to_b in d.moved:
        f = snap.fields[iid]
        instr = snap.objs[iid]
        if to_b not in pre_info:
            cert.fail("tv.licm.preheader",
                      f"instruction moved to non-preheader block {to_b}",
                      to_b)
            continue
        if f[K] == "bin" and f[OP] in _TRAPPING:
            cert.fail("tv.licm.trapping",
                      f"hoisted trapping {f[OP]} into block {to_b}", to_b)
            continue
        if f[K] not in _SSA_PURE:
            cert.fail("tv.licm.unsafe-hoist",
                      f"hoisted effectful {f[K]} into block {to_b}", to_b)
            continue
        if instr.dst is not None and instr.dst.precolored:
            cert.fail("tv.licm.unsafe-hoist",
                      "hoisted a definition of a precolored register",
                      to_b)
            continue
        here = pos_after[iid][1]
        for reg in instr.uses():
            if not isinstance(reg, VReg):
                continue
            if reg.precolored:
                cert.fail("tv.licm.unsafe-hoist",
                          f"hoisted instruction reads precolored "
                          f"{reg!r}", to_b)
                continue
            site = def_site.get(id(reg))
            if site is None:
                continue  # undefined use: the wf layer reports it
            db, dpos = site
            invariant = (db == to_b and dpos < here) \
                or (db != to_b and _dom_query(idom, db, to_b))
            if not invariant:
                cert.fail("tv.licm.unsafe-hoist",
                          f"operand {reg!r} of hoisted instruction is "
                          f"defined inside the loop", to_b)
        if not _dom_query(idom, to_b, from_b):
            cert.fail("tv.licm.preheader",
                      f"preheader {to_b} does not dominate source "
                      f"block {from_b}", to_b)

    # Terminator retargets: old header label -> the preheader's label.
    for iid, f, instr in d.rewrites:
        block = snap.block_of[iid]
        nf = _fields(instr)
        ok = False
        if f[K] in ("jmp", "br") \
                and nf[:SYM] == f[:SYM] and nf[SYM + 1:] == f[SYM + 1:]:
            target = after_label.get(instr.sym)
            old_target = snap.labels.get(f[SYM])
            if target in pre_info \
                    and pre_info[target] == (block, old_target):
                ok = True
        if not ok:
            cert.fail("tv.diff.unjustified",
                      f"LICM rewrote {f[K]} -> {instr.kind}", block)

    # Edges: exactly the preheader rewires.
    expect_removed = {(o, h) for o, h in pre_info.values()}
    expect_added: Set[Tuple[int, int]] = set()
    for nb, (o, h) in pre_info.items():
        expect_added.add((o, nb))
        expect_added.add((nb, h))
    for edge in sorted(d.edge_removed - expect_removed):
        cert.fail("tv.licm.preheader",
                  f"removed edge {edge[0]}->{edge[1]} is not a "
                  f"preheader rewire", edge[0])
    for edge in sorted(d.edge_added - expect_added):
        cert.fail("tv.licm.preheader",
                  f"added edge {edge[0]}->{edge[1]} is not a "
                  f"preheader rewire", edge[0])

    # Header phis: the outside-pred key moves to the preheader key.
    for pid, phi in d.phi_arg_changes:
        block = snap.phi_block[pid]
        before = snap.phi_args[pid]
        expected = dict(before)
        for nb, (o, h) in pre_info.items():
            if h == block and o in expected:
                expected[nb] = expected.pop(o)
        now = {p: id(a) for p, a in phi.args.items()}
        if id(phi.dst) != snap.phi_dst[pid] or now != expected:
            cert.fail("tv.diff.unjustified",
                      f"LICM rewrote phi args beyond the preheader "
                      f"rekey in block {block}", block)

    _flag_all(cert, snap, d, skip={
        "rewrites", "moved", "phi_arg_changes", "new_blocks",
        "edge_removed", "edge_added"})


# -- entry point --------------------------------------------------------------


def _certify_fixpoint(snap: Snapshot, ssa: SsaFunction, d: Diff,
                      cert: PassCertificate) -> None:
    """Certifier for the pipeline's end-of-fixpoint audit.

    Passes that report zero changes are not diffed individually — the
    snapshot is carried forward and this certificate diffs the whole
    quiet span at once.  A pass that mutated the function while
    claiming no changes surfaces here: *every* event is unjustified.
    """
    _flag_all(cert, snap, d, skip=set())


_CERTIFIERS = {
    "sccp": _certify_sccp,
    "copy": _certify_copy,
    "gvn": _certify_gvn,
    "fwd": _certify_fwd,
    "dse": _certify_dse,
    "dce": _certify_dce,
    "licm": _certify_licm,
    "fixpoint": _certify_fixpoint,
}


def certify_pass(pass_name: str, snap: Snapshot, ssa: SsaFunction,
                 round_index: int = 0,
                 semantic: bool = True,
                 update_snapshot: bool = False,
                 wf: str = "full") -> PassCertificate:
    """Certify one pass application from *snap* to the state of *ssa*.

    *pass_name* is a certifier key from :data:`PASS_KEYS` values (or a
    pipeline pass function name, which is mapped through
    :data:`PASS_KEYS`).  With ``semantic=False`` only the
    well-formedness layer runs (used for the post-``build_ssa`` state,
    which has no pass to diff against).  With ``update_snapshot=True``
    *snap* is brought up to date with the certified state afterwards
    (:func:`apply_diff`), so the caller can reuse it for the next pass
    without paying for a full re-snapshot.

    *wf* selects the well-formedness layer: ``"full"`` (the default)
    runs :func:`check_wellformed` whenever the diff is non-empty;
    ``"events"`` runs the event-scoped :func:`_check_events_wf`
    instead (what the pipeline uses between passes); ``"always"`` runs
    the full check even on an empty diff (the pipeline's trailing
    fixpoint certificate, so the final state is fully verified).
    """
    key = PASS_KEYS.get(pass_name, pass_name)
    cert = PassCertificate(snap.function, key, round_index)
    if not semantic:
        cert.findings.extend(check_wellformed(ssa))
        return cert
    d = diff_snapshot(snap, ssa)
    cert.events = d.count()
    if (not cert.events and not d.order_bad and not d.phi_moved
            and not d.label_changed):
        # The pass changed nothing: the state is byte-identical to one
        # already certified well-formed (post-build or post-previous
        # pass), so re-verifying it proves nothing new.  Late fixpoint
        # rounds are mostly no-ops, so this keeps verification cheap.
        if wf == "always":
            cert.findings.extend(check_wellformed(ssa))
        return cert
    try:
        if wf == "events":
            _check_events_ssa(snap, ssa, d, cert)
        else:
            cert.findings.extend(check_wellformed(ssa))
        _certify_events(pass_name, key, snap, ssa, d, cert)
    finally:
        applied = apply_diff(snap, ssa, d) if update_snapshot else None
    if wf == "events":
        if applied is None:
            # The event-scoped structural checks read the *updated*
            # snapshot; without update_snapshot fall back to the full
            # walk rather than verify against a stale state.
            cert.findings.extend(check_wellformed(ssa))
        else:
            touched, placement = applied
            _check_events_wf(snap, ssa, d, cert, touched, placement)
    return cert


def _certify_events(pass_name: str, key: str, snap: Snapshot,
                    ssa: SsaFunction, d: Diff,
                    cert: PassCertificate) -> None:
    for index in d.order_bad:
        cert.fail("tv.diff.unjustified",
                  f"surviving instructions reordered in block {index}",
                  index)
    for pid, fb, tb in d.phi_moved:
        cert.fail("tv.diff.unjustified",
                  f"phi moved from block {fb} to {tb}", tb)
    for index in d.label_changed:
        cert.fail("tv.diff.unjustified",
                  f"label of block {index} changed", index)
    certifier = _CERTIFIERS.get(key)
    if certifier is None:
        cert.fail("tv.diff.unjustified",
                  f"no certifier for pass {pass_name!r}")
        return
    certifier(snap, ssa, d, cert)

"""Static-analysis subsystem: dataflow framework + soundness verifiers.

Layers (bottom up):

* :mod:`repro.analyze.cfg` — generic control-flow graphs and dominators;
* :mod:`repro.analyze.dataflow` — the forward/backward fixpoint solver;
* :mod:`repro.analyze.ircfg` — CFG construction over mini-C linear IR;
* :mod:`repro.analyze.machine` — per-function CFGs over linked machine
  code, using the frame metadata codegen embeds in the Program image;
* :mod:`repro.analyze.stackcheck` — the stack-discipline verifier;
* :mod:`repro.analyze.hints` — the ``local_hint`` soundness checker;
* :mod:`repro.analyze.lints` — IR lints (use-before-init, dead store,
  unreachable code);
* :mod:`repro.analyze.driver` — whole-program orchestration behind
  ``repro-cc analyze`` and the fuzzing ``analyze`` oracle.

The bottom layers are dependency-free (they duck-type over instruction
objects), so the compiler itself can use the solver — the locality
provenance pass in :mod:`repro.lang.provenance` runs on this engine.
Import the driver API lazily (module ``__getattr__``) to keep that
compiler -> analyze -> compiler cycle unwound.
"""

from __future__ import annotations

from repro.analyze.cfg import CFG, build_blocks, dominators
from repro.analyze.dataflow import DataflowProblem, Solution, solve
from repro.analyze.report import AnalysisReport, Diagnostic

__all__ = [
    "CFG",
    "build_blocks",
    "dominators",
    "DataflowProblem",
    "Solution",
    "solve",
    "AnalysisReport",
    "Diagnostic",
    "analyze_source",
    "analyze_program",
    "analyze_workload",
]

_DRIVER_API = ("analyze_source", "analyze_program", "analyze_workload")


def __getattr__(name):
    if name in _DRIVER_API:
        from repro.analyze import driver

        return getattr(driver, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""The stack-discipline verifier (machine level).

The paper's LVAQ fast-forwarding rests on ``$sp`` being constant inside a
procedure and on every sp-relative access landing in a slot the compiler
meant it to touch.  This module *proves* those properties per function,
against the frame metadata codegen embeds in the Program image:

* **sp-delta analysis** (forward dataflow): ``$sp`` may only be adjusted
  by the prologue/epilogue ``addi`` pair with matching constants; at every
  sp-relative access, call, and frame-address computation the delta must
  equal ``-frame_size``, and at every return it must be back to 0.
* **frame-region classification**: each sp-relative access must fall
  entirely inside exactly one declared region — the outgoing-argument
  area (stores only), a named/spill slot, the callee-save area (only the
  matching save/restore), or the incoming-argument area (loads only).
* **callee-save protocol** (forward dataflow): every callee-saved
  register the function touches is saved before the first clobber and
  restored on *all* paths to a return; save slots are never reused for
  anything else.
* **frame-metadata validation**: declared regions are in-bounds, aligned,
  and pairwise disjoint.

``transfer`` is pure (the solver re-runs it); diagnostics are emitted by
a separate sweep over the fixpoint states.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analyze.cfg import CFG
from repro.analyze.dataflow import DataflowProblem, solve
from repro.analyze.machine import function_cfg
from repro.analyze.report import Diagnostic
from repro.isa.frames import FrameInfo
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Fmt, Opcode
from repro.isa.program import Program
from repro.isa.registers import Reg, reg_name

_SP = int(Reg.SP)
_RA = int(Reg.RA)

#: Callee-save protocol states (per saved register).
_UNSAVED = "U"    # intact, save-store not yet executed
_SAVED = "S"      # intact, entry value parked in its save slot
_CLOBBERED = "C"  # overwritten after saving; restore still owed
_MAYBE = "M"      # paths disagree — not restored on all of them

_CONFLICT = "conflict"  # sp-delta join of two different adjustments


class _StackState:
    """Immutable product state: sp delta x callee-save statuses."""

    __slots__ = ("delta", "saves")

    def __init__(self, delta, saves: Tuple[str, ...]):
        self.delta = delta
        self.saves = saves

    def __eq__(self, other):
        return (isinstance(other, _StackState)
                and self.delta == other.delta and self.saves == other.saves)

    def __repr__(self) -> str:
        return f"_StackState(delta={self.delta}, saves={self.saves})"


class _StackProblem(DataflowProblem):
    """Forward sp-delta + callee-save dataflow for one function."""

    direction = "forward"

    def __init__(self, frame: FrameInfo):
        self.frame = frame
        self.saved_regs: Tuple[int, ...] = tuple(
            sorted(frame.save_offsets))
        self._index_of = {reg: i for i, reg in enumerate(self.saved_regs)}
        self._reg_at_offset = {off: reg
                               for reg, off in frame.save_offsets.items()}

    # -- lattice -------------------------------------------------------------

    def boundary_state(self) -> _StackState:
        return _StackState(0, (_UNSAVED,) * len(self.saved_regs))

    def initial_state(self) -> Optional[_StackState]:
        return None  # lattice top: block not yet reached

    def meet(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        delta = a.delta if a.delta == b.delta else _CONFLICT
        saves = tuple(x if x == y else _MAYBE
                      for x, y in zip(a.saves, b.saves))
        return _StackState(delta, saves)

    # -- semantics -----------------------------------------------------------

    def transfer(self, index: int, ins: Instruction, state):
        if state is None:
            return None
        delta, saves = state.delta, state.saves
        op = ins.op
        if op is Opcode.ADDI and ins.rd == _SP and ins.rs == _SP:
            if isinstance(delta, int):
                delta = delta + ins.imm
        elif _SP in ins.writes:
            delta = _CONFLICT  # non-prologue/epilogue write; sweep reports
        new_saves = saves
        restored = self._matching_restore(ins)
        if restored is not None:
            pos = self._index_of[restored]
            if saves[pos] in (_CLOBBERED, _SAVED, _MAYBE):
                new_saves = _replace(new_saves, pos, _SAVED)
            # restore while _UNSAVED loads garbage; sweep reports, state
            # stays _UNSAVED so later checks keep firing.
        else:
            for reg in ins.writes:
                pos = self._index_of.get(reg)
                if pos is not None:
                    new_saves = _replace(new_saves, pos, _CLOBBERED)
        saved = self._matching_save(ins)
        if saved is not None:
            pos = self._index_of[saved]
            if new_saves[pos] == _UNSAVED:
                new_saves = _replace(new_saves, pos, _SAVED)
        return _StackState(delta, new_saves)

    # -- helpers -------------------------------------------------------------

    def _matching_save(self, ins: Instruction) -> Optional[int]:
        """The callee-saved register this instruction correctly saves."""
        if ins.op.is_store and ins.rs == _SP:
            reg = self._reg_at_offset.get(ins.imm)
            if reg is not None and ins.rt == reg:
                return reg
        return None

    def _matching_restore(self, ins: Instruction) -> Optional[int]:
        """The callee-saved register this instruction correctly restores."""
        if ins.op.is_load and ins.rs == _SP:
            reg = self._reg_at_offset.get(ins.imm)
            if reg is not None and ins.rd == reg:
                return reg
        return None


def _replace(saves: Tuple[str, ...], pos: int, value: str) -> Tuple[str, ...]:
    return saves[:pos] + (value,) + saves[pos + 1:]


# ---------------------------------------------------------------------------
# metadata validation
# ---------------------------------------------------------------------------

def check_frame_metadata(frame: FrameInfo) -> List[Diagnostic]:
    """Validate the declared layout itself: bounds, alignment, overlap."""
    out: List[Diagnostic] = []
    name = frame.name

    def err(rule: str, message: str) -> None:
        out.append(Diagnostic("error", rule, name, None, message))

    if frame.frame_size < 0 or frame.frame_size % 8:
        err("frame.unaligned",
            f"frame size {frame.frame_size} is not 8-byte aligned")
    regions = frame.regions()
    for kind, start, end in regions:
        if start < 0 or end > frame.frame_size:
            err("frame.region-out-of-bounds",
                f"{kind} spans [{start}:{end}) outside the "
                f"{frame.frame_size}-byte frame")
        if start % 4:
            err("frame.region-unaligned", f"{kind} starts at "
                f"unaligned offset {start}")
    ordered = sorted(regions, key=lambda r: (r[1], r[2]))
    for (kind_a, start_a, end_a), (kind_b, start_b, end_b) in zip(
            ordered, ordered[1:]):
        if start_b < end_a:
            err("frame.overlap",
                f"{kind_a} [{start_a}:{end_a}) overlaps "
                f"{kind_b} [{start_b}:{end_b})")
    if frame.saves_ra and _RA not in frame.save_offsets:
        err("frame.missing-ra-slot",
            "function declares saves_ra but has no $ra save slot")
    return out


# ---------------------------------------------------------------------------
# the verification sweep
# ---------------------------------------------------------------------------

class _Sweep:
    """Walks the fixpoint states once, emitting diagnostics."""

    def __init__(self, frame: FrameInfo, problem: _StackProblem):
        self.frame = frame
        self.problem = problem
        self.out: List[Diagnostic] = []
        self._conflict_reported = False

    def diag(self, severity: str, rule: str, index: int, message: str):
        self.out.append(Diagnostic(
            severity, rule, self.frame.name,
            self.frame.code_start + index, message))

    # -- per-instruction checks ---------------------------------------------

    def check(self, index: int, ins: Instruction, state) -> None:
        if state is None:
            return  # unreachable; the lints layer reports dead code
        frame = self.frame
        delta = state.delta
        if delta == _CONFLICT and not self._conflict_reported:
            self._conflict_reported = True
            self.diag("error", "stack.sp-inconsistent", index,
                      "paths reach this point with different $sp "
                      "adjustments")
        op = ins.op
        if op is Opcode.ADDI and ins.rd == _SP and ins.rs == _SP:
            if isinstance(delta, int):
                after = delta + ins.imm
                if after not in (0, -frame.frame_size):
                    self.diag(
                        "error", "stack.sp-adjust", index,
                        f"$sp adjusted by {ins.imm} to delta {after}; "
                        f"only 0 and -{frame.frame_size} are legal")
        elif _SP in ins.writes:
            self.diag("error", "stack.sp-write", index,
                      f"{op.mnemonic} writes $sp outside the "
                      f"prologue/epilogue protocol")
        if op.fmt is Fmt.MEM and ins.rs == _SP:
            self._check_sp_access(index, ins, delta, state)
        elif op is Opcode.ADDI and ins.rs == _SP and ins.rd != _SP:
            self._check_frame_address(index, ins, delta)
        elif op is Opcode.JAL:
            if delta != -frame.frame_size:
                self.diag("error", "stack.call-outside-frame", index,
                          f"call with $sp delta {delta}; the frame "
                          f"(-{frame.frame_size}) must be established")
        elif op is Opcode.JALR:
            self.diag("error", "stack.indirect-call", index,
                      "indirect calls are outside the verified "
                      "discipline")
        elif op is Opcode.JR:
            self._check_return(index, ins, delta, state)
        elif op.fmt in (Fmt.RRR, Fmt.RR) and (
                ins.rs == _SP or (ins.rt is not None and ins.rt == _SP)):
            self.diag("warning", "stack.sp-computed", index,
                      f"$sp flows into {op.mnemonic}; the result is "
                      f"treated as stack-derived")

    def _check_sp_access(self, index: int, ins: Instruction, delta,
                         state) -> None:
        frame = self.frame
        if delta != -frame.frame_size:
            self.diag("error", "stack.access-outside-frame", index,
                      f"sp-relative access with $sp delta {delta}; "
                      f"expected -{frame.frame_size}")
            return
        offset, size = ins.imm, ins.mem_size
        is_store = ins.op.is_store
        if size == 4 and offset % 4:
            self.diag("error", "stack.unaligned-access", index,
                      f"word access at unaligned frame offset {offset}")
            return
        # The callee-save area: only the matching save/restore may touch.
        reg = self.problem._reg_at_offset.get(offset)
        if reg is not None:
            pos = self.problem._index_of[reg]
            status = state.saves[pos]
            if is_store:
                if ins.rt != reg:
                    self.diag("error", "stack.save-slot-misuse", index,
                              f"store of {reg_name(ins.rt)} into the "
                              f"save slot of {reg_name(reg)}")
                elif status not in (_UNSAVED, _MAYBE):
                    self.diag("error", "stack.save-slot-overwrite", index,
                              f"{reg_name(reg)} saved again while its "
                              f"slot still holds the entry value")
            else:
                if ins.rd != reg:
                    self.diag("error", "stack.save-slot-misuse", index,
                              f"load of {reg_name(reg)}'s save slot into "
                              f"{reg_name(ins.rd)}")
                elif status == _UNSAVED:
                    self.diag("error", "stack.restore-before-save", index,
                              f"{reg_name(reg)} restored before any save")
            return
        # Outgoing-argument area (stores only).
        if offset < frame.outgoing_bytes:
            if not is_store:
                self.diag("error", "stack.load-from-outgoing", index,
                          f"load from the outgoing-argument area "
                          f"(offset {offset})")
            return
        # Named locals and spill slots.
        for slot in frame.slots:
            if slot.offset <= offset and offset + size <= slot.end:
                return
        # Incoming stack-passed arguments (loads only).
        if offset >= frame.frame_size:
            word = (offset - frame.frame_size) // 4
            if word < frame.incoming_words:
                if is_store:
                    self.diag("error", "stack.store-to-incoming", index,
                              f"store into the caller's argument area "
                              f"(offset {offset})")
                return
            self.diag("error", "stack.out-of-frame", index,
                      f"access at offset {offset} beyond the frame and "
                      f"the {frame.incoming_words} incoming words")
            return
        self.diag("error", "stack.out-of-frame", index,
                  f"access at offset {offset} hits no declared region "
                  f"of the {frame.frame_size}-byte frame")

    def _check_frame_address(self, index: int, ins: Instruction,
                             delta) -> None:
        frame = self.frame
        if delta != -frame.frame_size:
            self.diag("error", "stack.address-outside-frame", index,
                      f"frame address computed with $sp delta {delta}")
            return
        offset = ins.imm
        for slot in frame.slots:
            if not slot.is_spill and slot.offset <= offset < slot.end:
                return
        self.diag("error", "stack.address-out-of-frame", index,
                  f"address of frame offset {offset} targets no named "
                  f"slot")

    def _check_return(self, index: int, ins: Instruction, delta,
                      state) -> None:
        if ins.rs != _RA:
            self.diag("error", "stack.indirect-return", index,
                      f"return through {reg_name(ins.rs)} instead of $ra")
        if delta != 0:
            self.diag("error", "stack.return-with-frame", index,
                      f"return with $sp delta {delta}; the frame was "
                      f"not torn down")
        for pos, reg in enumerate(self.problem.saved_regs):
            status = state.saves[pos]
            if status == _CLOBBERED:
                self.diag("error", "stack.unrestored-callee-saved", index,
                          f"{reg_name(reg)} clobbered and not restored "
                          f"before return")
            elif status == _MAYBE:
                self.diag("error", "stack.unrestored-callee-saved", index,
                          f"{reg_name(reg)} not restored on all paths "
                          f"to this return")


def check_function(program: Program, frame: FrameInfo,
                   cfg: Optional[CFG] = None) -> List[Diagnostic]:
    """Verify stack discipline for one function; returns diagnostics."""
    out = check_frame_metadata(frame)
    if cfg is None:
        cfg, cfg_diags = function_cfg(program, frame)
        out.extend(cfg_diags)
    problem = _StackProblem(frame)
    solution = solve(cfg, problem)
    sweep = _Sweep(frame, problem)
    for block in cfg.blocks:
        for index, ins, state in solution.instruction_states(block.index):
            sweep.check(index, ins, state)
    out.extend(sweep.out)
    return out


def check_program(program: Program) -> Tuple[List[Diagnostic],
                                             Dict[str, CFG]]:
    """Verify every function with frame metadata; returns (diags, CFGs).

    The CFGs are returned so the hint checker can reuse them without
    rebuilding.
    """
    diagnostics: List[Diagnostic] = []
    cfgs: Dict[str, CFG] = {}
    frames = sorted(program.frames.values(), key=lambda f: f.code_start)
    previous_end = 0
    for frame in frames:
        if frame.code_start < previous_end:
            diagnostics.append(Diagnostic(
                "error", "frame.code-overlap", frame.name, None,
                f"code extent [{frame.code_start}:{frame.code_end}) "
                f"overlaps the previous function"))
        previous_end = frame.code_end
        cfg, cfg_diags = function_cfg(program, frame)
        cfgs[frame.name] = cfg
        diagnostics.extend(cfg_diags)
        diagnostics.extend(check_function(program, frame, cfg))
    return diagnostics, cfgs

"""CFG construction over mini-C linear IR.

Duck-typed on purpose: it only reads ``instr.kind`` / ``instr.sym``, so
this module has no dependency on :mod:`repro.lang` and the compiler can
import the analysis engine without a cycle.

IR control-flow conventions (see :mod:`repro.lang.ir`): ``label`` opens a
block, ``jmp`` is unconditional, ``br`` is conditional with fallthrough,
and ``ret`` is a plain instruction — lowering always materialises the
actual transfer as a following ``jmp`` to the exit label (or falls through
into it at the end of the body).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.analyze.cfg import CFG, build_blocks


def ir_cfg(body: List) -> CFG:
    """Build the CFG of one function's linear IR *body*."""
    leaders: Set[int] = set()
    label_at: Dict[str, int] = {}
    for i, instr in enumerate(body):
        kind = instr.kind
        if kind == "label":
            leaders.add(i)
            label_at[instr.sym] = i
        elif kind in ("jmp", "br"):
            leaders.add(i + 1)
    cfg = CFG(body, build_blocks(body, leaders))
    for block in cfg.blocks:
        if block.start == block.end:
            continue
        last = body[block.end - 1]
        kind = last.kind
        if kind == "jmp":
            cfg.add_edge(block.index, cfg.block_at(label_at[last.sym]))
        elif kind == "br":
            cfg.add_edge(block.index, cfg.block_at(label_at[last.sym]))
            if block.index + 1 < len(cfg.blocks):
                cfg.add_edge(block.index, block.index + 1)
        elif block.index + 1 < len(cfg.blocks):
            cfg.add_edge(block.index, block.index + 1)
    return cfg

"""IR-level lints: use-before-init, dead stores, unreachable code.

These run on the linear IR of one function (before register allocation)
and are warnings, not soundness errors — the program may still simulate
fine, but each finding is either a source-program bug or wasted work:

* ``ir.use-before-init`` — a virtual register or frame slot is read on
  some path before anything wrote it (reads garbage);
* ``ir.dead-store`` — a store to a frame slot that no path ever reads
  again (wasted work, often a source bug);
* ``ir.unreachable`` — a basic block no path can reach.

Both dataflow lints are deliberately conservative about addressed slots:
once a slot's address escapes via ``la_frame`` it may be read or written
through pointers the IR cannot see, so escaped slots are treated as
always-read and any store through a pointer may initialise anything.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Tuple

from repro.analyze.dataflow import DataflowProblem, solve
from repro.analyze.ircfg import ir_cfg
from repro.analyze.report import Diagnostic

Key = Tuple[str, object]


def _vreg_key(vreg) -> Optional[Key]:
    """Tracking key for a VReg; precolored registers are not tracked
    (the ABI initialises them at entry / around calls)."""
    if vreg is None or vreg.phys is not None:
        return None
    return ("v", vreg.id)


def _frame_slot(instr):
    """The FrameSlot a load/store targets, or None for other bases."""
    base = instr.base
    if isinstance(base, tuple) and base[0] == "frame":
        return base[1]
    return None


def _escaped_slots(body) -> Set[str]:
    """Names of slots whose address is taken somewhere in the body."""
    return {ins.base[1].name for ins in body
            if ins.kind == "la_frame"
            and isinstance(ins.base, tuple) and ins.base[0] == "frame"}


# ---------------------------------------------------------------------------
# use-before-init (forward, must-initialised sets, meet = intersection)
# ---------------------------------------------------------------------------

class _InitProblem(DataflowProblem):
    direction = "forward"

    def __init__(self, escaped: Set[str]):
        self.escaped = escaped

    def boundary_state(self) -> FrozenSet[Key]:
        return frozenset()

    def initial_state(self):
        return None  # lattice top: block not yet reached

    def meet(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a & b

    def transfer(self, index, instr, state):
        if state is None:
            return None
        added: List[Key] = []
        for d in instr.defs():
            key = _vreg_key(d)
            if key is not None:
                added.append(key)
        if instr.kind == "store":
            slot = _frame_slot(instr)
            if slot is not None:
                # Any store initialises the slot (conservative for
                # multi-word arrays: misses partial initialisation).
                added.append(("s", slot.name))
            elif instr.base is not None and not isinstance(
                    instr.base, tuple):
                # A store through a pointer may initialise any
                # escaped slot.
                added.extend(("s", name) for name in self.escaped)
        elif instr.kind == "la_frame":
            slot = _frame_slot(instr)
            if slot is not None:
                # Escape point: writes through the pointer are invisible
                # from here on, so stop tracking the slot.
                added.append(("s", slot.name))
        elif instr.kind == "call":
            # The callee may initialise escaped slots through stored
            # pointers.
            added.extend(("s", name) for name in self.escaped)
        return state | frozenset(added) if added else state


def _check_init(name: str, cfg) -> List[Diagnostic]:
    escaped = _escaped_slots(cfg.instrs)
    solution = solve(cfg, _InitProblem(escaped))
    out: List[Diagnostic] = []
    reported: Set[Key] = set()
    for block in cfg.blocks:
        for i, instr, state in solution.instruction_states(block.index):
            if state is None:
                continue
            suspects: List[Tuple[Key, str]] = []
            for use in instr.uses():
                key = _vreg_key(use)
                if key is not None:
                    suspects.append((key, repr(use)))
            if instr.kind == "load":
                slot = _frame_slot(instr)
                if slot is not None:
                    suspects.append((("s", slot.name), slot.name))
            for key, label in suspects:
                if key not in state and key not in reported:
                    reported.add(key)
                    out.append(Diagnostic(
                        "warning", "ir.use-before-init", name, i,
                        f"{label} may be read before initialisation"))
    return out


# ---------------------------------------------------------------------------
# dead stores (backward, live-slot sets, meet = union)
# ---------------------------------------------------------------------------

class _LiveSlotProblem(DataflowProblem):
    direction = "backward"

    def __init__(self, escaped: Set[str]):
        self.escaped = escaped

    def boundary_state(self) -> FrozenSet[str]:
        return frozenset()  # locals are dead once the function returns

    def initial_state(self):
        return None

    def meet(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a | b

    def transfer(self, index, instr, state):
        if state is None:
            return None
        kind = instr.kind
        if kind == "load":
            slot = _frame_slot(instr)
            if slot is not None:
                return state | {slot.name}
            if instr.base is not None and not isinstance(
                    instr.base, tuple):
                return state | frozenset(self.escaped)
        elif kind == "call" and self.escaped:
            # The callee may read escaped slots through stored pointers.
            return state | frozenset(self.escaped)
        elif kind == "store":
            slot = _frame_slot(instr)
            if (slot is not None and slot.words == 1 and instr.imm == 0
                    and slot.name not in self.escaped):
                return state - {slot.name}
        return state


def _check_dead_stores(name: str, cfg) -> List[Diagnostic]:
    escaped = _escaped_slots(cfg.instrs)
    solution = solve(cfg, _LiveSlotProblem(escaped))
    out: List[Diagnostic] = []
    for block in cfg.blocks:
        # Backward problem: the yielded state is the live-after set.
        for i, instr, live_after in solution.instruction_states(
                block.index):
            if live_after is None or instr.kind != "store":
                continue
            slot = _frame_slot(instr)
            if (slot is not None and slot.name not in escaped
                    and slot.name not in live_after):
                out.append(Diagnostic(
                    "warning", "ir.dead-store", name, i,
                    f"store to {slot.name} is never read"))
    return out


# ---------------------------------------------------------------------------
# unreachable code
# ---------------------------------------------------------------------------

def _implicit_return_len(body) -> int:
    """Length of lowering's implicit-return suffix (``li; mov $v0; ret``)."""
    i = len(body) - 1
    if i < 0 or body[i].kind != "ret":
        return 0
    count = 1
    i -= 1
    if (i >= 0 and body[i].kind == "mov" and body[i].dst is not None
            and body[i].dst.phys is not None):
        count += 1
        i -= 1
        if i >= 0 and body[i].kind == "li":
            count += 1
    return count


def _check_unreachable(name: str, cfg) -> List[Diagnostic]:
    reachable = cfg.reachable()
    out: List[Diagnostic] = []
    instrs = cfg.instrs
    for block in cfg.blocks:
        if block.index in reachable or block.start == block.end:
            continue
        body = [instrs[i] for i in range(block.start, block.end)]
        if (body[-1].kind == "ret" and block.end == len(instrs) - 1
                and instrs[-1].kind == "label"):
            # Lowering unconditionally appends an implicit return before
            # the exit label; it is dead whenever every source path
            # already returned.  Not the user's dead code — strip it and
            # flag only what else the block carries.
            body = body[:len(body) - _implicit_return_len(body)]
        if all(ins.kind == "label" for ins in body):
            continue  # a dangling label alone is not dead *code*
        out.append(Diagnostic(
            "warning", "ir.unreachable", name, block.start,
            f"basic block of {len(body)} instructions is unreachable"))
    return out


def lint_function(name: str, body) -> List[Diagnostic]:
    """Run every IR lint over one function's linear IR *body*."""
    cfg = ir_cfg(body)
    out = _check_unreachable(name, cfg)
    out.extend(_check_init(name, cfg))
    out.extend(_check_dead_stores(name, cfg))
    return out

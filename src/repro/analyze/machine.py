"""Per-function CFGs over linked machine code.

Function extents come from the :class:`~repro.isa.frames.FrameInfo`
metadata codegen embeds in the Program image — the verifier never guesses
where a function starts or ends.  Within a function:

* conditional branches edge to their (resolved) target and fall through;
* ``j`` edges to its target only;
* ``jal`` is a call — it falls through (the callee is analysed
  separately under its own frame metadata);
* ``jr`` is a return — no successors (an exit block);
* ``syscall`` falls through except for ``exit``, which terminates.

A branch whose resolved target lies outside the function's extent is a
hard error (compiled code never jumps between function bodies except via
``jal``); the edge is dropped so analysis can continue.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.analyze.cfg import CFG, build_blocks
from repro.analyze.report import Diagnostic
from repro.isa.frames import FrameInfo
from repro.isa.opcodes import Opcode, Syscall
from repro.isa.program import Program


def iter_frames(program: Program) -> List[FrameInfo]:
    """Frame metadata of every function, in code order."""
    return sorted(program.frames.values(), key=lambda f: f.code_start)


def function_cfg(program: Program,
                 frame: FrameInfo) -> Tuple[CFG, List[Diagnostic]]:
    """CFG of one function plus any structural diagnostics.

    The CFG's instruction sequence is the function's slice of the text
    segment; instruction indices in blocks are *relative to the slice*
    (add ``frame.code_start`` for absolute addresses — the verifier's
    diagnostics do exactly that).
    """
    program.resolve()  # idempotent; branch targets live in .imm afterwards
    start, end = frame.code_start, frame.code_end
    body = program.instructions[start:end]
    diagnostics: List[Diagnostic] = []

    def target_of(i: int) -> int:
        return body[i].imm - start  # absolute index -> slice-relative

    leaders: Set[int] = set()
    for i, ins in enumerate(body):
        op = ins.op
        if op in (Opcode.BEQ, Opcode.BNE, Opcode.BLEZ, Opcode.BGTZ,
                  Opcode.BLTZ, Opcode.BGEZ, Opcode.J):
            leaders.add(target_of(i))
            leaders.add(i + 1)
        elif op in (Opcode.JR, Opcode.JALR):
            leaders.add(i + 1)
        elif op is Opcode.SYSCALL and ins.imm == int(Syscall.EXIT):
            leaders.add(i + 1)

    cfg = CFG(body, build_blocks(body, leaders))
    for block in cfg.blocks:
        if block.start == block.end:
            continue
        i = block.end - 1
        ins = body[i]
        op = ins.op
        if op in (Opcode.BEQ, Opcode.BNE, Opcode.BLEZ, Opcode.BGTZ,
                  Opcode.BLTZ, Opcode.BGEZ, Opcode.J):
            target = target_of(i)
            if 0 <= target < len(body):
                cfg.add_edge(block.index, cfg.block_at(target))
            else:
                diagnostics.append(Diagnostic(
                    "error", "cfg.branch-out-of-function", frame.name,
                    start + i,
                    f"branch target {ins.imm} lies outside "
                    f"[{start}:{end})"))
            if op is not Opcode.J and block.index + 1 < len(cfg.blocks):
                cfg.add_edge(block.index, block.index + 1)
        elif op in (Opcode.JR, Opcode.JALR):
            pass  # return (or indirect jump): exit block
        elif op is Opcode.SYSCALL and ins.imm == int(Syscall.EXIT):
            pass  # program termination
        elif block.index + 1 < len(cfg.blocks):
            cfg.add_edge(block.index, block.index + 1)
    return cfg, diagnostics

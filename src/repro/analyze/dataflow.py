"""The generic dataflow fixpoint solver.

A :class:`DataflowProblem` supplies the lattice (``initial_state``,
``boundary_state``, ``meet``) and the semantics (``transfer``); the solver
iterates block states to a fixpoint over a :class:`~repro.analyze.cfg.CFG`
in reverse postorder (forward) or postorder (backward).

Two contracts matter for termination and reuse:

* ``transfer`` must be **pure** — it is re-run an unbounded number of
  times during iteration, and again by :meth:`Solution.instruction_states`
  when a client sweeps the fixpoint to emit diagnostics;
* ``meet`` must be monotone on a finite-height lattice (every lattice in
  this package is a small product of flat lattices).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Tuple

from repro.analyze.cfg import CFG

State = Any


class DataflowProblem:
    """Base class for dataflow problems; subclass and fill in the hooks."""

    #: "forward" or "backward".
    direction = "forward"

    def boundary_state(self) -> State:
        """State at the procedure boundary (entry / every exit)."""
        raise NotImplementedError

    def initial_state(self) -> State:
        """Optimistic starting state for interior blocks (lattice top)."""
        raise NotImplementedError

    def meet(self, a: State, b: State) -> State:
        """Combine states flowing in from two edges."""
        raise NotImplementedError

    def transfer(self, index: int, instr: Any, state: State) -> State:
        """State after *instr* given *state* before it (must be pure)."""
        raise NotImplementedError

    def states_equal(self, a: State, b: State) -> bool:
        """Fixpoint test; override when ``==`` is wrong or slow."""
        return a == b


class Solution:
    """Fixpoint block states plus on-demand per-instruction states."""

    def __init__(self, cfg: CFG, problem: DataflowProblem,
                 block_in: List[State], block_out: List[State]):
        self.cfg = cfg
        self.problem = problem
        self.block_in = block_in
        self.block_out = block_out

    def instruction_states(
        self, block_index: int
    ) -> Iterator[Tuple[int, Any, State]]:
        """``(index, instr, state)`` for each instruction of a block.

        For forward problems the state is the one *before* the
        instruction; for backward problems it is the state *after* it
        (i.e. the facts that hold downstream) — in both cases the state
        an instruction-level check wants to inspect.
        """
        problem = self.problem
        block = self.cfg.blocks[block_index]
        if problem.direction == "forward":
            state = self.block_in[block_index]
            for i in range(block.start, block.end):
                instr = self.cfg.instrs[i]
                yield i, instr, state
                state = problem.transfer(i, instr, state)
        else:
            state = self.block_in[block_index]  # backward: state at block end
            pending = []
            for i in range(block.end - 1, block.start - 1, -1):
                instr = self.cfg.instrs[i]
                pending.append((i, instr, state))
                state = problem.transfer(i, instr, state)
            yield from reversed(pending)


def solve(cfg: CFG, problem: DataflowProblem) -> Solution:
    """Run *problem* over *cfg* to a fixpoint and return the solution.

    Forward problems propagate entry -> exits along successor edges;
    backward problems propagate exits -> entry along predecessor edges.
    In the backward case ``block_in`` holds the state at the *end* of each
    block and ``block_out`` the state at its start, so that
    ``instruction_states`` reads naturally in both directions.
    """
    n = len(cfg.blocks)
    block_in: List[State] = [problem.initial_state() for _ in range(n)]
    block_out: List[State] = [problem.initial_state() for _ in range(n)]
    if not n:
        return Solution(cfg, problem, block_in, block_out)

    forward = problem.direction == "forward"
    order = cfg.rpo() if forward else cfg.postorder()
    in_worklist = set(order)
    worklist = list(order)

    def inputs(b: int) -> List[int]:
        return cfg.blocks[b].pred if forward else cfg.blocks[b].succ

    def outputs(b: int) -> List[int]:
        return cfg.blocks[b].succ if forward else cfg.blocks[b].pred

    def apply_block(b: int, state: State) -> State:
        block = cfg.blocks[b]
        rng = range(block.start, block.end)
        for i in (rng if forward else reversed(rng)):
            state = problem.transfer(i, cfg.instrs[i], state)
        return state

    while worklist:
        b = worklist.pop(0)
        in_worklist.discard(b)
        sources = inputs(b)
        boundary = (b == 0) if forward else not cfg.blocks[b].succ
        if boundary:
            state = problem.boundary_state()
            for src in sources:
                state = problem.meet(state, block_out[src])
        elif sources:
            state = block_out[sources[0]]
            for src in sources[1:]:
                state = problem.meet(state, block_out[src])
        else:
            state = problem.initial_state()  # unreachable interior block
        block_in[b] = state
        new_out = apply_block(b, state)
        if not problem.states_equal(new_out, block_out[b]):
            block_out[b] = new_out
            for nxt in outputs(b):
                if nxt not in in_worklist:
                    in_worklist.add(nxt)
                    worklist.append(nxt)
    return Solution(cfg, problem, block_in, block_out)

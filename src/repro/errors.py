"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so that callers can
catch library failures without masking genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid machine or experiment configuration was supplied."""


class IsaError(ReproError):
    """An ill-formed instruction or operand was encountered."""


class AssemblerError(ReproError):
    """The assembler rejected its input."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class CompileError(ReproError):
    """The mini-C compiler rejected its input."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class VmError(ReproError):
    """The functional VM hit a runtime fault (bad address, bad opcode...)."""


class VmExit(ReproError):
    """Raised internally when the guest program executes the exit syscall."""

    def __init__(self, code: int = 0):
        self.code = code
        super().__init__(f"guest exited with code {code}")


class SimulationError(ReproError):
    """The timing simulator reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload could not be built or was queried incorrectly."""


class TraceError(ReproError):
    """A serialized trace file is unreadable, corrupt, or incompatible."""

"""Ablation: instruction-window and LVAQ sizing.

The paper fixes ROB=128, LSQ=64 and "use[s] an LVAQ of 64 entries" without
sweeping them.  This ablation examines those choices in our model:

* the machine needs a substantial ROB to expose the memory parallelism
  decoupling exploits (returns diminish past 128), and
* for the local-heavy programs the LVAQ's capacity is a genuine resource:
  halving it to 32 already costs measurable IPC, so the paper's choice of
  a full-size 64-entry LVAQ is well spent.

Measured on the (3+2) configuration with both optimizations, over the
three most local-variable-heavy integer programs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.config import MachineConfig
from repro.experiments.common import (
    DEFAULT_SCALE,
    run_sim,
    select_programs,
)
from repro.stats.report import Table
from repro.utils import geometric_mean

PROGRAMS = ("147.vortex", "130.li", "126.gcc")
ROB_SIZES = (32, 64, 128, 256)
LVAQ_SIZES = (8, 16, 32, 64)


def _config(rob: int = 128, lvaq: int = 64) -> MachineConfig:
    config = MachineConfig.baseline(l1_ports=3, lvc_ports=2,
                                    fast_forwarding=True, combining=2)
    config.rob_size = rob
    config.lvaq_size = lvaq
    return config


def run_rob(scale: float = DEFAULT_SCALE,
            programs: Optional[Sequence[str]] = None,
            sizes: Sequence[int] = ROB_SIZES) -> Dict[str, Dict[int, float]]:
    """IPC relative to the ROB=128 base, per ROB size."""
    rows: Dict[str, Dict[int, float]] = {}
    for name in select_programs(programs, PROGRAMS):
        base = run_sim(name, _config(rob=128), scale)
        rows[name] = {
            size: run_sim(name, _config(rob=size), scale).ipc / base.ipc
            for size in sizes
        }
    return rows


def run_lvaq(scale: float = DEFAULT_SCALE,
             programs: Optional[Sequence[str]] = None,
             sizes: Sequence[int] = LVAQ_SIZES) -> Dict[str, Dict[int, float]]:
    """IPC relative to the LVAQ=64 base, per LVAQ size."""
    rows: Dict[str, Dict[int, float]] = {}
    for name in select_programs(programs, PROGRAMS):
        base = run_sim(name, _config(lvaq=64), scale)
        rows[name] = {
            size: run_sim(name, _config(lvaq=size), scale).ipc / base.ipc
            for size in sizes
        }
    return rows


def render(rob_rows: Dict[str, Dict[int, float]],
           lvaq_rows: Dict[str, Dict[int, float]]) -> str:
    parts = []
    rob_sizes = sorted(next(iter(rob_rows.values())))
    table = Table(["program"] + [f"ROB={s}" for s in rob_sizes],
                  precision=3,
                  title="Ablation: ROB size (relative to ROB=128, (3+2))")
    for name, row in rob_rows.items():
        table.add_row(name, *[row[s] for s in rob_sizes])
    table.add_row("geomean", *[
        geometric_mean(row[s] for row in rob_rows.values())
        for s in rob_sizes
    ])
    parts.append(table.render())

    lvaq_sizes = sorted(next(iter(lvaq_rows.values())))
    table = Table(["program"] + [f"LVAQ={s}" for s in lvaq_sizes],
                  precision=3,
                  title="Ablation: LVAQ size (relative to LVAQ=64, (3+2))")
    for name, row in lvaq_rows.items():
        table.add_row(name, *[row[s] for s in lvaq_sizes])
    table.add_row("geomean", *[
        geometric_mean(row[s] for row in lvaq_rows.values())
        for s in lvaq_sizes
    ])
    parts.append(table.render())
    return "\n\n".join(parts)


def main() -> None:
    print(render(run_rob(), run_lvaq()))


if __name__ == "__main__":
    main()

"""Table 3: speedup from fast data forwarding under the (3+2) configuration.

The paper reports speedups of 0% (124.m88ksim, whose store->reload
distances are too long for anything to still be in the LVAQ) up to 3.9%,
with 129.compress benefiting despite few local accesses because ~80% of
its local loads find their value in the LVAQ.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SCALE,
    nm_config,
    run_sim,
    select_programs,
)
from repro.stats.report import Table
from repro.workloads.spec import ALL_PROGRAMS

N_PORTS = 3
M_PORTS = 2


class Table3Row:
    """Fast-forwarding outcome for one program."""

    def __init__(self, program: str, speedup: float, forward_rate: float,
                 fast_forwards: int, lvaq_loads: int):
        self.program = program
        self.speedup = speedup
        self.forward_rate = forward_rate
        self.fast_forwards = fast_forwards
        self.lvaq_loads = lvaq_loads


def run(scale: float = DEFAULT_SCALE,
        programs: Optional[Sequence[str]] = None) -> List[Table3Row]:
    """Speedup of (3+2)+fast-forwarding over plain (3+2), per program."""
    rows: List[Table3Row] = []
    for name in select_programs(programs, ALL_PROGRAMS):
        base = run_sim(name, nm_config(N_PORTS, M_PORTS), scale)
        fast = run_sim(
            name, nm_config(N_PORTS, M_PORTS, fast_forwarding=True), scale
        )
        loads = fast.counters.get("lvaq.loads")
        forwards = (fast.counters.get("lvaq.fast_forwards")
                    + fast.counters.get("lvaq.forwards"))
        rows.append(Table3Row(
            name,
            fast.ipc / base.ipc - 1.0,
            forwards / loads if loads else 0.0,
            fast.counters.get("lvaq.fast_forwards"),
            loads,
        ))
    return rows


def render(rows: List[Table3Row]) -> str:
    table = Table(
        ["program", "speedup %", "LVAQ fwd rate", "fast fwds", "LVAQ loads"],
        precision=2,
        title="Table 3: fast data forwarding speedup under (3+2)",
    )
    for row in rows:
        table.add_row(row.program, 100 * row.speedup, row.forward_rate,
                      row.fast_forwards, row.lvaq_loads)
    return table.render()


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()

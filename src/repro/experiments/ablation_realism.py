"""Ablation: how much of the paper's result survives realistic timing.

The paper's machine (Section 3.1) assumes an ideal memory front: every
port is available every cycle, fetch never misses, branches never
redirect.  This ablation re-runs the Figure 9 comparison — the
conventional ``(2+0)`` machine vs the optimized decoupled ``(2+2)``
machine — under the realism knobs this reproduction adds:

* **ports**: ``ideal`` per-cycle budgets vs the ``finite`` contended
  arbiter with per-bank conflict accounting (``repro.mem.ports``);
* **frontend**: the ``perfect`` frontend vs a ``gshare`` + finite
  I-cache timing model that charges redirect and fetch bubbles
  (``repro.core.frontend``).

Each cell reports the optimized machine's IPC relative to the
conventional machine *under the same realism assumptions*, so the table
answers: does decoupling's benefit persist when the surrounding machine
stops being ideal?
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.config import MachineConfig
from repro.experiments.common import (
    DEFAULT_SCALE,
    run_sim,
    select_programs,
)
from repro.stats.report import Table
from repro.utils import geometric_mean
from repro.workloads.spec import INT_PROGRAMS

#: (ports policy, frontend policy) per column, in render order.
REALISM_GRID = (
    ("ideal", "perfect"),
    ("finite", "perfect"),
    ("ideal", "gshare"),
    ("finite", "gshare"),
)

CONFIG_NAMES = tuple(f"{ports}+{fe}" for ports, fe in REALISM_GRID)


def _machine(optimized: bool, ports: str, frontend: str) -> MachineConfig:
    """A Figure 9 machine under the given realism assumptions."""
    if optimized:
        config = MachineConfig.baseline(
            l1_ports=2, lvc_ports=2, fast_forwarding=True, combining=2
        )
    else:
        config = MachineConfig.baseline(l1_ports=2, lvc_ports=0)
    config.mem.l1_port_policy = ports
    if config.decoupled:
        config.mem.lvc_port_policy = ports
    config.frontend.policy = frontend
    return config


def _configs() -> Dict[str, Dict[str, MachineConfig]]:
    """{cell name: {"base": (2+0), "opt": (2+2:opt)}} per realism cell."""
    return {
        name: {
            "base": _machine(False, ports, frontend),
            "opt": _machine(True, ports, frontend),
        }
        for name, (ports, frontend) in zip(CONFIG_NAMES, REALISM_GRID)
    }


def run(scale: float = DEFAULT_SCALE,
        programs: Optional[Sequence[str]] = None
        ) -> Dict[str, Dict[str, float]]:
    """Optimized-over-conventional IPC ratio per realism cell, per program."""
    rows: Dict[str, Dict[str, float]] = {}
    cells = _configs()
    for name in select_programs(programs, INT_PROGRAMS):
        rows[name] = {}
        for label, pair in cells.items():
            base = run_sim(name, pair["base"], scale)
            opt = run_sim(name, pair["opt"], scale)
            rows[name][label] = opt.ipc / base.ipc
    return rows


def render(rows: Dict[str, Dict[str, float]]) -> str:
    table = Table(
        ["program"] + list(CONFIG_NAMES),
        precision=3,
        title=("Ablation: optimized (2+2) over conventional (2+0) under "
               "realistic ports / frontend"),
    )
    for name, row in rows.items():
        table.add_row(name, *[row[c] for c in CONFIG_NAMES])
    table.add_row(
        "geomean",
        *[geometric_mean(row[c] for row in rows.values())
          for c in CONFIG_NAMES],
    )
    return table.render()


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()

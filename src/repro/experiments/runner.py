"""Command-line entry point: ``repro-experiments <experiment> [...]``.

``repro-experiments all`` regenerates every table and figure (the full
evaluation of the paper); one or more individual names run a subset.

The runner executes in two phases.  The **prewarm** phase collects every
timing simulation the selected experiments will need (see
:mod:`repro.runtime.plans`), deduplicates shared configurations, and runs
the misses on a worker pool (``--jobs N``) backed by the persistent
result cache (``--cache-dir``), writing ``results/run_manifest.json``.
The **render** phase then runs the experiment modules sequentially — all
cache hits — so output is byte-identical to a purely sequential run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, List

from repro.experiments import (
    ablation_multiport,
    ablation_realism,
    ablation_window,
    common,
    disc_small_l1,
    fig2_memfreq,
    fig3_framesize,
    fig5_bandwidth,
    fig6_lvc_miss,
    fig7_ports,
    fig8_combining,
    fig9_optimized,
    fig10_latency,
    fig11_programs,
    mix_interference,
    opt_levels,
    table1_config,
    table2_workloads,
    table3_forwarding,
)
from repro.runtime import plans
from repro.runtime.cache import default_cache_dir
from repro.runtime.manifest import ProgressPrinter, RunManifest
from repro.stats.report import format_duration

EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "table1": table1_config.main,
    "table2": table2_workloads.main,
    "table3": table3_forwarding.main,
    "fig2": fig2_memfreq.main,
    "fig3": fig3_framesize.main,
    "fig5": fig5_bandwidth.main,
    "fig6": fig6_lvc_miss.main,
    "fig7": fig7_ports.main,
    "fig8": fig8_combining.main,
    "fig9": fig9_optimized.main,
    "fig10": fig10_latency.main,
    "fig11": fig11_programs.main,
    "ablation-multiport": ablation_multiport.main,
    "ablation-realism": ablation_realism.main,
    "ablation-window": ablation_window.main,
    "disc-small-l1": disc_small_l1.main,
    "mix-interference": mix_interference.main,
    "opt-levels": opt_levels.main,
}

DEFAULT_MANIFEST = os.path.join("results", "run_manifest.json")


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="experiment",
        help="experiment names (see --list), or 'all'",
    )
    parser.add_argument("--list", action="store_true",
                        help="list the available experiments and exit")
    parser.add_argument("--keep-going", action="store_true",
                        help="continue past a failing experiment; exit "
                             "nonzero listing every failure at the end")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for the simulation prewarm "
                             "phase (default 1 = in-process)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent result-cache directory "
                             f"(default {default_cache_dir()})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job timeout in the prewarm phase")
    parser.add_argument("--retries", type=int, default=1, metavar="N",
                        help="retries for failed/timed-out jobs (default 1)")
    parser.add_argument("--manifest", default=DEFAULT_MANIFEST,
                        metavar="PATH",
                        help=f"run-manifest path (default {DEFAULT_MANIFEST};"
                             " empty string disables)")
    return parser


def _expand(names: List[str]) -> List[str]:
    if "all" in names:
        return sorted(EXPERIMENTS)
    out: List[str] = []
    for name in names:
        if name not in out:
            out.append(name)
    return out


def main(argv=None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    if args.list:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if not args.experiments:
        parser.error("no experiments given (try --list or 'all')")
    unknown = [n for n in args.experiments
               if n != "all" and n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)} "
                     "(try --list)")
    names = _expand(args.experiments)

    cache_dir = args.cache_dir if args.cache_dir else default_cache_dir()
    session = common.configure_runtime(
        jobs=args.jobs, cache_dir=cache_dir, no_cache=args.no_cache,
        timeout=args.timeout, retries=args.retries,
        progress=ProgressPrinter(),
    )

    plan = plans.collect(names, common.DEFAULT_SCALE)
    if plan and (args.jobs > 1 or session.cache is not None):
        report = common.prewarm(plan)
        manifest = RunManifest(
            report, salt=session.salt, scale=common.DEFAULT_SCALE,
            experiments=names,
            cache_stats=(session.cache.stats()
                         if session.cache is not None else None),
        )
        print(manifest.summary(), file=sys.stderr)
        if args.manifest:
            manifest.write(args.manifest)
            print(f"[runtime] manifest: {args.manifest}", file=sys.stderr)
        for outcome in report.failed:
            print(f"[runtime] job failed: {outcome.job.label()}: "
                  f"{outcome.error}", file=sys.stderr)

    failed: List[str] = []
    for name in names:
        started = time.time()
        try:
            EXPERIMENTS[name]()
        except Exception as exc:  # noqa: BLE001 - reported, not hidden
            failed.append(name)
            print(f"[{name} FAILED: {type(exc).__name__}: {exc}]",
                  file=sys.stderr)
            if not args.keep_going:
                break
        else:
            print(f"[{name} took {format_duration(time.time() - started)}]\n")
    if failed:
        print(f"repro-experiments: {len(failed)} experiment(s) failed: "
              f"{', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

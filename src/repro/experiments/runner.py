"""Command-line entry point: ``repro-experiments <experiment> [...]``.

``repro-experiments all`` regenerates every table and figure in sequence
(this is the full evaluation of the paper); individual names run one.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments import (
    ablation_multiport,
    ablation_window,
    disc_small_l1,
    fig2_memfreq,
    fig3_framesize,
    fig5_bandwidth,
    fig6_lvc_miss,
    fig7_ports,
    fig8_combining,
    fig9_optimized,
    fig10_latency,
    fig11_programs,
    table1_config,
    table2_workloads,
    table3_forwarding,
)

EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "table1": table1_config.main,
    "table2": table2_workloads.main,
    "table3": table3_forwarding.main,
    "fig2": fig2_memfreq.main,
    "fig3": fig3_framesize.main,
    "fig5": fig5_bandwidth.main,
    "fig6": fig6_lvc_miss.main,
    "fig7": fig7_ports.main,
    "fig8": fig8_combining.main,
    "fig9": fig9_optimized.main,
    "fig10": fig10_latency.main,
    "fig11": fig11_programs.main,
    "ablation-multiport": ablation_multiport.main,
    "ablation-window": ablation_window.main,
    "disc-small-l1": disc_small_l1.main,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        started = time.time()
        EXPERIMENTS[name]()
        print(f"[{name} took {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(scale=..., programs=...) -> rows`` returning the
data behind the paper's table or figure, and a module-level ``main()`` that
prints it.  ``repro-experiments <name>`` (see :mod:`repro.experiments.runner`)
is the command-line entry point.
"""

from repro.experiments.common import (
    DEFAULT_SCALE,
    config_key,
    run_sim,
    trace_for,
)

__all__ = ["DEFAULT_SCALE", "config_key", "run_sim", "trace_for"]

"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(scale=..., programs=...) -> rows`` returning the
data behind the paper's table or figure, and a module-level ``main()`` that
prints it.  ``repro-experiments <name>`` (see :mod:`repro.experiments.runner`)
is the command-line entry point; simulations flow through the
:mod:`repro.runtime` job engine (parallel workers + persistent cache).
"""

from repro.experiments.common import (
    DEFAULT_SCALE,
    config_key,
    configure_runtime,
    prewarm,
    run_sim,
    runtime_session,
    trace_for,
)

__all__ = [
    "DEFAULT_SCALE",
    "config_key",
    "configure_runtime",
    "prewarm",
    "run_sim",
    "runtime_session",
    "trace_for",
]

"""Section 4.4 discussion: is a tiny, fast L1 a better fix?

The paper considers the alternative of simply shrinking the whole L1 to
2 KB to make it fast (1-cycle) and backing it with the L2.  Its
preliminary result: "the inevitably higher miss rates negate the
performance gain due to a short access latency unless the L2 cache
latency is less than four cycles."

This experiment reproduces that study: a 2 KB 1-cycle L1 (2 ideal ports)
versus the standard 32 KB 2-cycle L1, sweeping the L2 latency.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SCALE,
    nm_config,
    run_sim,
    select_programs,
)
from repro.stats.report import Table
from repro.utils import geometric_mean
from repro.workloads.spec import INT_PROGRAMS

L2_LATENCIES = (2, 4, 8, 12)


def run(scale: float = DEFAULT_SCALE,
        programs: Optional[Sequence[str]] = None,
        l2_latencies: Sequence[int] = L2_LATENCIES
        ) -> Dict[str, Dict[int, float]]:
    """IPC of the small fast L1 relative to the standard L1, per L2 latency.

    Values above 1.0 mean the small L1 wins at that L2 latency.
    """
    rows: Dict[str, Dict[int, float]] = {}
    for name in select_programs(programs, INT_PROGRAMS):
        row: Dict[int, float] = {}
        for l2_latency in l2_latencies:
            standard = run_sim(
                name, nm_config(2, 0, l2_latency=l2_latency), scale
            )
            small = run_sim(
                name,
                nm_config(2, 0, l1_size=2 * 1024, l1_assoc=1,
                          l1_hit_latency=1, l2_latency=l2_latency),
                scale,
            )
            row[l2_latency] = small.ipc / standard.ipc
        rows[name] = row
    return rows


def crossover_latency(rows: Dict[str, Dict[int, float]]) -> int:
    """Largest swept L2 latency at which the small L1 still wins on
    (geometric) average; 0 if it never wins."""
    latencies = sorted(next(iter(rows.values())))
    winning = [
        lat for lat in latencies
        if geometric_mean(row[lat] for row in rows.values()) > 1.0
    ]
    return max(winning) if winning else 0


def render(rows: Dict[str, Dict[int, float]]) -> str:
    latencies = sorted(next(iter(rows.values())))
    table = Table(
        ["program"] + [f"L2={lat}cyc" for lat in latencies],
        precision=3,
        title=("Section 4.4: 2KB 1-cycle L1 relative to 32KB 2-cycle L1 "
               "(>1 means the small cache wins)"),
    )
    for name, row in rows.items():
        table.add_row(name, *[row[lat] for lat in latencies])
    table.add_row(
        "geomean",
        *[geometric_mean(row[lat] for row in rows.values())
          for lat in latencies],
    )
    return table.render()


def main() -> None:
    rows = run()
    print(render(rows))
    print(f"\nsmall-L1 crossover: wins only when L2 latency <= "
          f"{crossover_latency(rows)} cycles (paper: < 4 cycles)")


if __name__ == "__main__":
    main()

"""Table 2: the benchmark inventory.

Prints each workload with its paper instruction count, the scaled trace
length this reproduction uses, and the measured trace statistics.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.common import DEFAULT_SCALE, select_programs, trace_for
from repro.stats.report import Table
from repro.workloads.spec import ALL_PROGRAMS, get_spec


class Table2Row:
    """One workload's inventory entry."""

    def __init__(self, program: str, paper_minst: int, trace_len: int,
                 mem_frac: float, local_frac: float, description: str):
        self.program = program
        self.paper_minst = paper_minst
        self.trace_len = trace_len
        self.mem_frac = mem_frac
        self.local_frac = local_frac
        self.description = description


def run(scale: float = DEFAULT_SCALE,
        programs: Optional[Sequence[str]] = None) -> List[Table2Row]:
    """Collect the inventory rows, measuring each trace."""
    rows: List[Table2Row] = []
    for name in select_programs(programs, ALL_PROGRAMS):
        spec = get_spec(name)
        stats = trace_for(name, scale).stats
        rows.append(Table2Row(
            name, spec.paper_minst, stats.instructions,
            stats.mem_refs / stats.instructions if stats.instructions else 0,
            stats.local_fraction, spec.description,
        ))
    return rows


def render(rows: List[Table2Row]) -> str:
    table = Table(
        ["program", "paper Minst", "trace insts", "mem frac", "local frac"],
        precision=3,
        title="Table 2: benchmark programs (scaled traces)",
    )
    for row in rows:
        table.add_row(row.program, row.paper_minst, row.trace_len,
                      row.mem_frac, row.local_frac)
    return table.render()


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()

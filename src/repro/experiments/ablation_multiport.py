"""Ablation: real multi-port implementations vs the ideal assumption.

Section 1 of the paper motivates data decoupling by the shortcomings of
real multi-ported caches: replication throttles stores (every store
broadcasts to all copies), and interleaving suffers bank conflicts.  This
ablation quantifies those shortcomings in our model and shows where the
decoupled `(2+2)` design lands relative to them — the comparison the
paper argues qualitatively.

Configurations (all with the Table 1 machine):

* ``ideal(4+0)``      — four ideal ports (the paper's assumption),
* ``banked(4+0)``     — a 4-bank interleaved cache,
* ``banked8(4+0)``    — 8 banks but still 4 requests/cycle,
* ``replicated(4+0)`` — four replicated copies (stores broadcast),
* ``ideal(2+2)``      — the decoupled design with both optimizations.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.config import MachineConfig
from repro.experiments.common import (
    DEFAULT_SCALE,
    run_sim,
    select_programs,
)
from repro.stats.report import Table
from repro.utils import geometric_mean
from repro.workloads.spec import INT_PROGRAMS

CONFIG_NAMES = ("ideal(4+0)", "banked(4+0)", "banked8(4+0)",
                "replicated(4+0)", "ideal(2+2)")


def _configs() -> Dict[str, MachineConfig]:
    return {
        "ideal(4+0)": MachineConfig.baseline(l1_ports=4, lvc_ports=0),
        "banked(4+0)": MachineConfig.baseline(
            l1_ports=4, lvc_ports=0, l1_port_policy="banked"
        ),
        "banked8(4+0)": MachineConfig.baseline(
            l1_ports=8, lvc_ports=0, l1_port_policy="banked"
        ),
        "replicated(4+0)": MachineConfig.baseline(
            l1_ports=4, lvc_ports=0, l1_port_policy="replicated"
        ),
        "ideal(2+2)": MachineConfig.baseline(
            l1_ports=2, lvc_ports=2, fast_forwarding=True, combining=2
        ),
    }


def run(scale: float = DEFAULT_SCALE,
        programs: Optional[Sequence[str]] = None
        ) -> Dict[str, Dict[str, float]]:
    """IPC relative to ideal(4+0) for each implementation, per program."""
    rows: Dict[str, Dict[str, float]] = {}
    configs = _configs()
    for name in select_programs(programs, INT_PROGRAMS):
        base = run_sim(name, configs["ideal(4+0)"], scale)
        rows[name] = {
            label: run_sim(name, config, scale).ipc / base.ipc
            for label, config in configs.items()
        }
    return rows


def render(rows: Dict[str, Dict[str, float]]) -> str:
    table = Table(
        ["program"] + list(CONFIG_NAMES),
        precision=3,
        title=("Ablation: multi-port implementations relative to the "
               "ideal 4-port cache"),
    )
    for name, row in rows.items():
        table.add_row(name, *[row[c] for c in CONFIG_NAMES])
    table.add_row(
        "geomean",
        *[geometric_mean(row[c] for row in rows.values())
          for c in CONFIG_NAMES],
    )
    return table.render()


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()

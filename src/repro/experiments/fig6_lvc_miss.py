"""Figure 6: LVC miss rates as the LVC size varies from 0.5 KB to 4 KB.

Measured on a direct-mapped LVC fed only the local references of each
trace (the paper measured with a 4-port direct-mapped LVC; miss rate is
port-independent).  Also reports the L2-traffic change from adding a 2 KB
LVC (the paper's Section 4.2.1 observation: ``130.li`` and ``147.vortex``
see large reductions).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SCALE,
    nm_config,
    run_sim,
    select_programs,
)
from repro.mem.cache import Cache, CacheGeometry
from repro.stats.report import Table
from repro.experiments.common import trace_for
from repro.workloads.spec import ALL_PROGRAMS

LVC_SIZES = (512, 1024, 2048, 4096)


def run(scale: float = DEFAULT_SCALE,
        programs: Optional[Sequence[str]] = None,
        sizes: Sequence[int] = LVC_SIZES) -> Dict[str, Dict[int, float]]:
    """LVC miss rate per program per size (cache simulation only)."""
    rows: Dict[str, Dict[int, float]] = {}
    for name in select_programs(programs, ALL_PROGRAMS):
        trace = trace_for(name, scale)
        caches = {size: Cache("lvc", CacheGeometry(size, 1, 32))
                  for size in sizes}
        for inst in trace:
            if inst.is_mem and inst.is_local:
                for cache in caches.values():
                    cache.access(inst.addr, inst.is_store)
        rows[name] = {size: cache.miss_rate
                      for size, cache in caches.items()}
    return rows


def l2_traffic_change(scale: float = DEFAULT_SCALE,
                      programs: Optional[Sequence[str]] = None,
                      ports: int = 3) -> Dict[str, float]:
    """Relative L2 traffic of (N+2) vs (N+0): below 1.0 means reduction."""
    out: Dict[str, float] = {}
    for name in select_programs(programs, ALL_PROGRAMS):
        base = run_sim(name, nm_config(ports, 0), scale)
        with_lvc = run_sim(name, nm_config(ports, 2), scale)
        out[name] = (with_lvc.l2_traffic / base.l2_traffic
                     if base.l2_traffic else 1.0)
    return out


def render(rows: Dict[str, Dict[int, float]]) -> str:
    sizes = sorted(next(iter(rows.values())))
    table = Table(
        ["program"] + [f"{s / 1024:g}KB" for s in sizes],
        precision=4,
        title="Figure 6: LVC miss rate vs size (direct-mapped)",
    )
    for name, row in rows.items():
        table.add_row(name, *[row[s] for s in sizes])
    return table.render()


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()

"""Figure 8: effect of access combining under (3+1) and (3+2).

N-way combining looks at up to N consecutive LVAQ entries and merges
same-line references into one (wide) LVC port transaction.  Paper shape:
two-way combining buys ~8% at (3+1) and ~2% at (3+2); ``130.li`` and
``147.vortex`` are outliers (bursty save/restore traffic), and two-way is
the sweet spot.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.common import (
    DEFAULT_SCALE,
    nm_config,
    run_sim,
    select_programs,
)
from repro.stats.report import Table
from repro.utils import geometric_mean
from repro.workloads.spec import INT_PROGRAMS

CONFIGS = ((3, 1), (3, 2))
DEGREES = (1, 2, 4)


def run(scale: float = DEFAULT_SCALE,
        programs: Optional[Sequence[str]] = None,
        configs: Sequence[Tuple[int, int]] = CONFIGS,
        degrees: Sequence[int] = DEGREES,
        ) -> Dict[str, Dict[Tuple[int, int, int], float]]:
    """Relative IPC vs the no-combining run, keyed by (N, M, degree)."""
    rows: Dict[str, Dict[Tuple[int, int, int], float]] = {}
    for name in select_programs(programs, INT_PROGRAMS):
        row: Dict[Tuple[int, int, int], float] = {}
        for n, m in configs:
            base = run_sim(name, nm_config(n, m, combining=1), scale)
            for degree in degrees:
                result = run_sim(
                    name, nm_config(n, m, combining=degree), scale
                )
                row[(n, m, degree)] = result.ipc / base.ipc
        rows[name] = row
    return rows


def render(rows: Dict[str, Dict[Tuple[int, int, int], float]]) -> str:
    keys = sorted(next(iter(rows.values())).keys())
    table = Table(
        ["program"] + [f"({n}+{m})x{d}" for n, m, d in keys],
        precision=3,
        title="Figure 8: access combining speedup over no combining",
    )
    for name, row in rows.items():
        table.add_row(name, *[row[k] for k in keys])
    table.add_row(
        "geomean",
        *[geometric_mean(row[k] for row in rows.values()) for k in keys],
    )
    return table.render()


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()

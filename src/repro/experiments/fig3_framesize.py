"""Figure 3: dynamic frame-size distribution of the integer programs.

Cumulative distribution of activation-record sizes (in words), per program
and pooled, plus the summary statistics quoted in the paper's text (mean
dynamic frame around 3 words; 99th percentile small).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import DEFAULT_SCALE, select_programs, trace_for
from repro.stats.histogram import Histogram
from repro.stats.report import Table
from repro.workloads.spec import INT_PROGRAMS


def run(scale: float = DEFAULT_SCALE,
        programs: Optional[Sequence[str]] = None) -> Dict[str, Histogram]:
    """Frame-size histogram per integer program."""
    out: Dict[str, Histogram] = {}
    for name in select_programs(programs, INT_PROGRAMS):
        out[name] = trace_for(name, scale).stats.frame_sizes
    return out


def pooled(histograms: Dict[str, Histogram]) -> Histogram:
    """All programs' frames pooled into one distribution."""
    total = Histogram()
    for hist in histograms.values():
        total.merge(hist)
    return total


def distribution_points(
    hist: Histogram, points: Sequence[float] = (0.5, 0.9, 0.99)
) -> List[Tuple[float, int]]:
    """(fraction, frame words) pairs of the cumulative distribution."""
    return [(p, hist.percentile(p)) for p in points]


def render(histograms: Dict[str, Histogram]) -> str:
    table = Table(
        ["program", "mean words", "p50", "p90", "p99", "max"],
        precision=2,
        title="Figure 3: dynamic frame size distribution (integer programs)",
    )
    for name, hist in histograms.items():
        if not hist.total:
            table.add_row(name, 0.0, 0, 0, 0, 0)
            continue
        table.add_row(name, hist.mean(), hist.percentile(0.5),
                      hist.percentile(0.9), hist.percentile(0.99),
                      hist.max())
    combined = pooled(histograms)
    if combined.total:
        table.add_row("pooled", combined.mean(), combined.percentile(0.5),
                      combined.percentile(0.9), combined.percentile(0.99),
                      combined.max())
    return table.render()


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()

"""Figure 2: frequencies of memory access instructions.

For every program: loads and stores as a fraction of all instructions, and
the local fraction of each.  Pure trace analysis — no timing simulation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.common import DEFAULT_SCALE, select_programs, trace_for
from repro.stats.report import Table
from repro.workloads.spec import ALL_PROGRAMS


class Fig2Row:
    """One program's memory-instruction mix."""

    def __init__(self, program: str, load_frac: float, store_frac: float,
                 local_load_frac: float, local_store_frac: float,
                 local_mem_frac: float):
        self.program = program
        self.load_frac = load_frac
        self.store_frac = store_frac
        self.local_load_frac = local_load_frac
        self.local_store_frac = local_store_frac
        self.local_mem_frac = local_mem_frac


def run(scale: float = DEFAULT_SCALE,
        programs: Optional[Sequence[str]] = None) -> List[Fig2Row]:
    """Measure the Figure 2 statistics for every program."""
    rows: List[Fig2Row] = []
    for name in select_programs(programs, ALL_PROGRAMS):
        stats = trace_for(name, scale).stats
        loads = stats.loads or 1
        stores = stats.stores or 1
        rows.append(Fig2Row(
            name,
            stats.load_fraction,
            stats.store_fraction,
            stats.local_loads / loads,
            stats.local_stores / stores,
            stats.local_fraction,
        ))
    return rows


def render(rows: List[Fig2Row]) -> str:
    """Format the rows like the paper's figure caption data."""
    table = Table(
        ["program", "loads/inst", "stores/inst",
         "local loads", "local stores", "local/mem"],
        precision=3,
        title="Figure 2: memory access instruction frequencies",
    )
    for row in rows:
        table.add_row(row.program, row.load_frac, row.store_frac,
                      row.local_load_frac, row.local_store_frac,
                      row.local_mem_frac)
    avg = lambda key: sum(getattr(r, key) for r in rows) / len(rows)
    table.add_row("average", avg("load_frac"), avg("store_frac"),
                  avg("local_load_frac"), avg("local_store_frac"),
                  avg("local_mem_frac"))
    return table.render()


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()

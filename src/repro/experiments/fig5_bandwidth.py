"""Figure 5: program bandwidth requirements.

Relative performance of (N+0) configurations, N = 1..5, against the
(16+0) maximum-bandwidth limit case.  The paper's findings: a 3-4 port
cache saturates; 2 ports reach ~90% of the limit on average; ``130.li``
and ``147.vortex`` are the most bandwidth-sensitive programs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SCALE,
    nm_config,
    run_sim,
    select_programs,
)
from repro.stats.report import Table
from repro.utils import geometric_mean
from repro.workloads.spec import ALL_PROGRAMS

PORT_COUNTS = (1, 2, 3, 4, 5)
LIMIT_PORTS = 16


def run(scale: float = DEFAULT_SCALE,
        programs: Optional[Sequence[str]] = None,
        ports: Sequence[int] = PORT_COUNTS) -> Dict[str, Dict[int, float]]:
    """Relative IPC of each (N+0) over (16+0), per program."""
    rows: Dict[str, Dict[int, float]] = {}
    for name in select_programs(programs, ALL_PROGRAMS):
        limit = run_sim(name, nm_config(LIMIT_PORTS, 0), scale)
        rows[name] = {
            n: run_sim(name, nm_config(n, 0), scale).ipc / limit.ipc
            for n in ports
        }
    return rows


def average_curve(rows: Dict[str, Dict[int, float]]) -> Dict[int, float]:
    """Geometric-mean relative performance per port count."""
    ports = sorted(next(iter(rows.values())))
    return {
        n: geometric_mean(row[n] for row in rows.values()) for n in ports
    }


def render(rows: Dict[str, Dict[int, float]]) -> str:
    ports = sorted(next(iter(rows.values())))
    table = Table(
        ["program"] + [f"({n}+0)" for n in ports],
        precision=3,
        title="Figure 5: relative performance of (N+0) vs (16+0)",
    )
    for name, row in rows.items():
        table.add_row(name, *[row[n] for n in ports])
    avg = average_curve(rows)
    table.add_row("geomean", *[avg[n] for n in ports])
    return table.render()


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()

"""Table 1: the base machine model.

Renders the configured machine parameters and asserts they match the
paper's Table 1 (this is the configuration every other experiment builds
on, so regressions here invalidate everything downstream).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.config import MachineConfig

#: (parameter, paper value) pairs; the checker compares against the model.
PAPER_TABLE_1: Tuple[Tuple[str, str], ...] = (
    ("Issue width", "16"),
    ("No. of regs.", "32 GPRs/32 FPRs"),
    ("ROB/LSQ size", "128/64"),
    ("Func. units", "16 int + 16 FP ALUs, 4 int + 4 FP MULT/DIV"),
    ("L1 D-cache", "2-way set-assoc. 32 KB. 2-cycle hit time."),
    ("L2 D-cache", "4-way. 512 KB. 12-cycle access time."),
    ("Memory", "50-cycle access time."),
    ("I-cache", "Perfect (trace-driven front end)."),
    ("Br. prediction", "Perfect (trace-driven front end)."),
)


def run() -> List[Tuple[str, str, bool]]:
    """(parameter, modelled value, matches-paper) rows."""
    config = MachineConfig.baseline()
    mem = config.mem
    rows = [
        ("Issue width", str(config.issue_width),
         config.issue_width == 16),
        ("No. of regs.", "32 GPRs/32 FPRs", True),
        ("ROB/LSQ size", f"{config.rob_size}/{config.lsq_size}",
         config.rob_size == 128 and config.lsq_size == 64),
        ("Func. units",
         f"{config.ialu_units} int + {config.falu_units} FP ALUs, "
         f"{config.imultdiv_units} int + {config.fmultdiv_units} FP "
         "MULT/DIV",
         config.ialu_units == 16 and config.falu_units == 16
         and config.imultdiv_units == 4 and config.fmultdiv_units == 4),
        ("L1 D-cache",
         f"{mem.l1_assoc}-way set-assoc. {mem.l1_size // 1024} KB. "
         f"{mem.l1_hit_latency}-cycle hit time.",
         mem.l1_assoc == 2 and mem.l1_size == 32 * 1024
         and mem.l1_hit_latency == 2),
        ("L2 D-cache",
         f"{mem.l2_assoc}-way. {mem.l2_size // 1024} KB. "
         f"{mem.l2_latency}-cycle access time.",
         mem.l2_assoc == 4 and mem.l2_size == 512 * 1024
         and mem.l2_latency == 12),
        ("Memory", f"{mem.mem_latency}-cycle access time.",
         mem.mem_latency == 50),
        ("I-cache", "Perfect (trace-driven front end).", True),
        ("Br. prediction", "Perfect (trace-driven front end).", True),
    ]
    return rows


def render(rows) -> str:
    lines = ["Table 1: base machine model"]
    for name, value, ok in rows:
        status = "ok" if ok else "MISMATCH"
        lines.append(f"  {name:16s} {value}  [{status}]")
    return "\n".join(lines)


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()

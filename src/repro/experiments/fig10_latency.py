"""Figure 10: sensitivity to cache access latency.

Compares, relative to the (2+0) baseline:

* (2+2) with the standard 2-cycle L1 / 1-cycle LVC,
* (4+0) with a 2-cycle hit, and
* (4+0) with a 3-cycle hit (the "wire-limited big multi-ported cache"
  scenario the paper motivates).

Paper shape: the 3-cycle (4+0) loses up to ~13% versus the 2-cycle (4+0)
and can fall below (2+0); (2+2) beats the 3-cycle (4+0) on the integer
programs but not on FP programs, whose local/non-local accesses are too
poorly interleaved to use both caches at once.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SCALE,
    nm_config,
    run_sim,
    select_programs,
)
from repro.stats.report import Table
from repro.workloads.spec import ALL_PROGRAMS

CONFIG_NAMES = ("(2+0)", "(2+2)", "(4+0)", "(4+0) 3cyc")


def run(scale: float = DEFAULT_SCALE,
        programs: Optional[Sequence[str]] = None,
        optimized: bool = True) -> Dict[str, Dict[str, float]]:
    """Relative IPC over (2+0) for the Figure 10 configurations."""
    fast = optimized
    combining = 2 if optimized else 1
    rows: Dict[str, Dict[str, float]] = {}
    for name in select_programs(programs, ALL_PROGRAMS):
        base = run_sim(name, nm_config(2, 0), scale)
        configs = {
            "(2+0)": nm_config(2, 0),
            "(2+2)": nm_config(2, 2, fast_forwarding=fast,
                               combining=combining),
            "(4+0)": nm_config(4, 0),
            "(4+0) 3cyc": nm_config(4, 0, l1_hit_latency=3),
        }
        rows[name] = {
            label: run_sim(name, config, scale).ipc / base.ipc
            for label, config in configs.items()
        }
    return rows


def render(rows: Dict[str, Dict[str, float]]) -> str:
    table = Table(
        ["program"] + list(CONFIG_NAMES),
        precision=3,
        title="Figure 10: cache-latency sensitivity (relative to (2+0))",
    )
    for name, row in rows.items():
        table.add_row(name, *[row[c] for c in CONFIG_NAMES])
    return table.render()


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()

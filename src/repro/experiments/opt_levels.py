"""Compiler optimization levels vs the decoupled memory pipeline.

The paper's workloads come out of ``cc -O2``; its Figure 2 local-access
fractions and Figure 9 LVAQ speedups are properties of *optimized* code.
This experiment asks how much that matters: every mini-C workload is
compiled at **O0** (naive lowering) and at **O2** (the SSA mid-end,
:mod:`repro.lang.pipeline`) and both binaries run through the same two
machines —

* the ``(2+0)`` baseline, and
* the ``(2+2:opt)`` decoupled machine (fast forwarding, 2-way combining
  — the paper's Figure 9 setting).

Reported per program: dynamic instructions at each level (O2 must
shrink), the Figure-2-style local fraction of memory references at each
level, and the Figure-9-style LVAQ speedup at each level.  The paper
shape: optimization removes redundant computation but *not* the
local-variable traffic pattern — the local fraction stays high at O2 and
the LVAQ speedup survives (often grows, since the remaining instructions
are denser in memory references).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (DEFAULT_SCALE, nm_config, run_sim,
                                      select_programs, trace_for)
from repro.stats.report import Table
from repro.workloads.minic import MINIC_PROGRAMS

PROGRAMS = tuple(sorted(MINIC_PROGRAMS))
LEVELS = (0, 2)


def configs() -> Dict[str, object]:
    """The two machines each binary is timed on."""
    return {
        "2+0": nm_config(2, 0),
        "2+2:opt": nm_config(2, 2, fast_forwarding=True, combining=2),
    }


class OptRow:
    """One program's O0-vs-O2 comparison."""

    def __init__(self, program: str):
        self.program = program
        self.instructions: Dict[int, int] = {}
        self.local_fraction: Dict[int, float] = {}
        self.lvaq_speedup: Dict[int, float] = {}

    @property
    def inst_ratio(self) -> float:
        return self.instructions[2] / self.instructions[0]


def run(scale: float = DEFAULT_SCALE,
        programs: Optional[Sequence[str]] = None) -> List[OptRow]:
    """Measure every program at each level on both machines."""
    machines = configs()
    rows: List[OptRow] = []
    for name in select_programs(programs, PROGRAMS):
        row = OptRow(name)
        for level in LEVELS:
            workload = f"{name}@O{level}"
            trace = trace_for(workload, scale)
            row.instructions[level] = trace.stats.instructions
            row.local_fraction[level] = trace.stats.local_fraction
            base = run_sim(workload, machines["2+0"], scale)
            lvaq = run_sim(workload, machines["2+2:opt"], scale)
            row.lvaq_speedup[level] = lvaq.ipc / base.ipc
        rows.append(row)
    return rows


def render(rows: List[OptRow]) -> str:
    table = Table(
        ["program", "insts O0", "insts O2", "O2/O0",
         "local O0", "local O2", "LVAQ spdup O0", "LVAQ spdup O2"],
        precision=3,
        title="Optimization levels: local accesses and LVAQ speedup, "
              "O0 vs O2",
    )
    for row in rows:
        table.add_row(row.program,
                      row.instructions[0], row.instructions[2],
                      row.inst_ratio,
                      row.local_fraction[0], row.local_fraction[2],
                      row.lvaq_speedup[0], row.lvaq_speedup[2])
    avg = lambda f: sum(f(r) for r in rows) / len(rows)
    table.add_row("average", "", "",
                  avg(lambda r: r.inst_ratio),
                  avg(lambda r: r.local_fraction[0]),
                  avg(lambda r: r.local_fraction[2]),
                  avg(lambda r: r.lvaq_speedup[0]),
                  avg(lambda r: r.lvaq_speedup[2]))
    return table.render()


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()

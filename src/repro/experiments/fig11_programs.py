"""Figure 11: per-program (N+M) surfaces for four selected programs.

126.gcc, 130.li, 147.vortex and 102.swim across N in {2,3,4} and M in
{0,1,2,3}, with the optimizations on (as in the paper's Figure 9 setting).
Paper shape: at N=2 adding a 2-port LVC gives >25% on ``130.li``; at N=4
it is worth <2%.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.common import DEFAULT_SCALE
from repro.experiments import fig7_ports

PROGRAMS = ("126.gcc", "130.li", "147.vortex", "102.swim")
N_VALUES = (2, 3, 4)
M_VALUES = (0, 1, 2, 3)


def run(scale: float = DEFAULT_SCALE,
        programs: Optional[Sequence[str]] = None,
        ) -> Dict[str, Dict[Tuple[int, int], float]]:
    """Relative IPC of optimized (N+M) over (2+0) for the four programs."""
    return fig7_ports.run(
        scale=scale,
        programs=programs if programs is not None else PROGRAMS,
        n_values=N_VALUES, m_values=M_VALUES,
        fast_forwarding=True, combining=2,
    )


def render(rows: Dict[str, Dict[Tuple[int, int], float]]) -> str:
    return fig7_ports.render(
        rows,
        title="Figure 11: per-program (N+M) performance relative to (2+0)",
    )


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()

"""Shared infrastructure for the experiment modules.

The simulation-result cache matters: the figures sweep many (N+M)
configurations over the same traces, and several figures share
configurations (e.g. the (2+0) baseline appears in Figures 7, 9, 10, 11).

``REPRO_SCALE`` (environment) globally scales trace lengths; 1.0 uses the
default scaled-Table-2 lengths, 0.25 makes every experiment 4x faster at
some statistical noise cost.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence, Tuple

from repro.core.config import MachineConfig
from repro.core.metrics import SimResult
from repro.core.processor import Processor
from repro.vm.trace import Trace
from repro.workloads.builder import build_trace
from repro.workloads.spec import get_spec

DEFAULT_SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))

_RESULTS: Dict[Tuple, SimResult] = {}


def trace_for(name: str, scale: float = 1.0, seed: int = 1) -> Trace:
    """The dynamic trace for workload *name* at the given scale."""
    if name.startswith("mini."):
        return build_trace(name, seed=seed)
    length = max(10_000, int(get_spec(name).default_length * scale))
    return build_trace(name, length=length, seed=seed)


def config_key(config: MachineConfig) -> Tuple:
    """A hashable signature of everything that affects simulation."""
    mem = config.mem
    dec = config.decouple
    return (
        config.issue_width, config.rob_size, config.lsq_size,
        config.lvaq_size,
        mem.l1_ports, mem.lvc_ports, mem.l1_size, mem.l1_assoc,
        mem.l1_hit_latency, mem.lvc_size, mem.lvc_assoc,
        mem.lvc_hit_latency, mem.line_bytes, mem.l2_size, mem.l2_assoc,
        mem.l2_latency, mem.mem_latency, mem.mshr_entries,
        mem.bus_occupancy, mem.l1_port_policy,
        dec.fast_forwarding, dec.combining, dec.predictor,
        dec.mispredict_penalty,
    )


def run_sim(workload: str, config: MachineConfig,
            scale: float = 1.0, seed: int = 1) -> SimResult:
    """Simulate *workload* on *config*, memoising the result."""
    key = (workload, scale, seed, config_key(config))
    cached = _RESULTS.get(key)
    if cached is not None:
        return cached
    trace = trace_for(workload, scale, seed)
    result = Processor(config).run(trace.insts, workload)
    _RESULTS[key] = result
    return result


def clear_result_cache() -> None:
    """Drop memoised simulation results."""
    _RESULTS.clear()


def nm_config(n: int, m: int, fast_forwarding: bool = False,
              combining: int = 1, **overrides) -> MachineConfig:
    """Shorthand for the paper's ``(N+M)`` configuration."""
    return MachineConfig.baseline(
        l1_ports=n, lvc_ports=m,
        fast_forwarding=fast_forwarding, combining=combining,
        **overrides,
    )


def select_programs(programs: Optional[Sequence[str]],
                    default: Sequence[str]) -> Tuple[str, ...]:
    """Experiment program-list plumbing with a default."""
    if programs is None:
        return tuple(default)
    return tuple(programs)

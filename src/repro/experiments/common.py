"""Shared infrastructure for the experiment modules.

The simulation-result cache matters: the figures sweep many (N+M)
configurations over the same traces, and several figures share
configurations (e.g. the (2+0) baseline appears in Figures 7, 9, 10, 11).
``run_sim`` keeps a per-process memo and delegates misses to the
:mod:`repro.runtime` session, which adds the persistent on-disk cache and
(via :func:`prewarm`) the parallel worker pool.

``REPRO_SCALE`` (environment) globally scales trace lengths; 1.0 uses the
default scaled-Table-2 lengths, 0.25 makes every experiment 4x faster at
some statistical noise cost.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.core.config import MachineConfig
from repro.core.metrics import SimResult
from repro.runtime.engine import EngineReport, RuntimeSession
from repro.runtime.job import SimJob
from repro.runtime.signature import config_signature
from repro.vm.trace import Trace
from repro.workloads.builder import build_trace
from repro.workloads.spec import get_spec

DEFAULT_SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))

_RESULTS: Dict[Tuple, SimResult] = {}
_SESSION: Optional[RuntimeSession] = None

#: When set, every cache-missing ``run_sim`` call reports its job here
#: (the plan-fidelity tests use this to audit the scheduler's plans).
JOB_OBSERVER: Optional[Callable[[SimJob], None]] = None


@lru_cache(maxsize=None)
def trace_for(name: str, scale: float = 1.0, seed: int = 1) -> Trace:
    """The dynamic trace for workload *name* at the given scale.

    Memoised per process (on top of the builder's own cache) so config
    sweeps over one workload never recompute the scale arithmetic or
    regenerate the trace — including inside pool workers, where each
    process pays for a trace at most once.
    """
    if name.startswith("mini."):
        return build_trace(name, seed=seed)
    length = max(10_000, int(get_spec(name).default_length * scale))
    return build_trace(name, length=length, seed=seed)


def config_key(config: MachineConfig) -> Tuple:
    """A hashable signature of everything that affects simulation.

    Derived generically from the configuration objects' fields (see
    :func:`repro.runtime.signature.config_signature`), so a newly added
    config field is covered automatically and cannot silently poison the
    result cache.
    """
    return config_signature(config)


def runtime_session() -> RuntimeSession:
    """The active runtime session (a sequential, env-configured default
    until :func:`configure_runtime` installs one)."""
    global _SESSION
    if _SESSION is None:
        _SESSION = RuntimeSession()
    return _SESSION


def configure_runtime(session: Optional[RuntimeSession] = None,
                      **kwargs) -> RuntimeSession:
    """Install the session ``run_sim``/``prewarm`` should use.

    Pass a prebuilt :class:`RuntimeSession`, or keyword arguments
    (``jobs=``, ``cache_dir=``, ``no_cache=``, ``timeout=``, ...) to build
    one.  Returns the installed session.
    """
    global _SESSION
    _SESSION = session if session is not None else RuntimeSession(**kwargs)
    return _SESSION


def _memo_key(job: SimJob) -> Tuple:
    return (job.workload, job.scale, job.seed, config_key(job.config))


def run_sim(workload: str, config: MachineConfig,
            scale: float = 1.0, seed: int = 1) -> SimResult:
    """Simulate *workload* on *config*, memoising the result."""
    job = SimJob(workload, config, scale=scale, seed=seed)
    key = _memo_key(job)
    cached = _RESULTS.get(key)
    if cached is not None:
        return cached
    if JOB_OBSERVER is not None:
        JOB_OBSERVER(job)
    result = runtime_session().simulate(job)
    _RESULTS[key] = result
    return result


def prewarm(jobs: Iterable[SimJob]) -> EngineReport:
    """Run *jobs* through the session's engine (deduplicated, parallel,
    cached) and seed the in-process memo with every result, so the
    subsequent sequential render pass is all cache hits."""
    report = runtime_session().prewarm(jobs)
    for outcome in report.outcomes.values():
        if outcome.result is not None:
            _RESULTS[_memo_key(outcome.job)] = outcome.result
    return report


def clear_result_cache() -> None:
    """Drop memoised simulation results (and the trace memo)."""
    _RESULTS.clear()
    trace_for.cache_clear()


def nm_config(n: int, m: int, fast_forwarding: bool = False,
              combining: int = 1, **overrides) -> MachineConfig:
    """Shorthand for the paper's ``(N+M)`` configuration."""
    return MachineConfig.baseline(
        l1_ports=n, lvc_ports=m,
        fast_forwarding=fast_forwarding, combining=combining,
        **overrides,
    )


def select_programs(programs: Optional[Sequence[str]],
                    default: Sequence[str]) -> Tuple[str, ...]:
    """Experiment program-list plumbing with a default."""
    if programs is None:
        return tuple(default)
    return tuple(programs)

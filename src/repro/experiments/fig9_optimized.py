"""Figure 9: (N+M) performance with both proposed optimizations enabled.

The same sweep as Figure 7, but with fast data forwarding and two-way
access combining.  The paper's observation: the (N+1) configurations —
which *lost* performance in Figure 7 — are noticeably repaired.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.common import DEFAULT_SCALE
from repro.experiments import fig7_ports

COMBINING = 2


def run(scale: float = DEFAULT_SCALE,
        programs: Optional[Sequence[str]] = None,
        n_values: Sequence[int] = fig7_ports.N_VALUES,
        m_values: Sequence[int] = fig7_ports.M_VALUES,
        ) -> Dict[str, Dict[Tuple[int, int], float]]:
    """Relative IPC of optimized (N+M) over (2+0), per program."""
    return fig7_ports.run(
        scale=scale, programs=programs,
        n_values=n_values, m_values=m_values,
        fast_forwarding=True, combining=COMBINING,
    )


def render(rows: Dict[str, Dict[Tuple[int, int], float]]) -> str:
    return fig7_ports.render(
        rows,
        title=("Figure 9: optimized (N+M) performance relative to (2+0) "
               "(fast forwarding + 2-way combining)"),
    )


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()

"""Figure 7: performance of (N+M) configurations (no LVAQ optimizations).

Relative IPC over the (2+0) baseline for N in {2,3,4} and M in
{0,1,2,3,16}.  The paper's shape: a one-port LVC *degrades* performance
(it becomes the bottleneck); two ports restore and beat (N+0) by 1-10%;
three or more ports add little.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.common import (
    DEFAULT_SCALE,
    nm_config,
    run_sim,
    select_programs,
)
from repro.stats.report import Table
from repro.utils import geometric_mean
from repro.workloads.spec import ALL_PROGRAMS

N_VALUES = (2, 3, 4)
M_VALUES = (0, 1, 2, 3, 16)


def run(scale: float = DEFAULT_SCALE,
        programs: Optional[Sequence[str]] = None,
        n_values: Sequence[int] = N_VALUES,
        m_values: Sequence[int] = M_VALUES,
        fast_forwarding: bool = False,
        combining: int = 1) -> Dict[str, Dict[Tuple[int, int], float]]:
    """Relative IPC of each (N+M) over (2+0), per program."""
    rows: Dict[str, Dict[Tuple[int, int], float]] = {}
    for name in select_programs(programs, ALL_PROGRAMS):
        base = run_sim(name, nm_config(2, 0), scale)
        row: Dict[Tuple[int, int], float] = {}
        for n in n_values:
            for m in m_values:
                config = nm_config(n, m, fast_forwarding=fast_forwarding,
                                   combining=combining if m else 1)
                row[(n, m)] = run_sim(name, config, scale).ipc / base.ipc
        rows[name] = row
    return rows


def average_surface(
    rows: Dict[str, Dict[Tuple[int, int], float]]
) -> Dict[Tuple[int, int], float]:
    """Geometric mean across programs for every (N, M) point."""
    keys = next(iter(rows.values())).keys()
    return {key: geometric_mean(row[key] for row in rows.values())
            for key in keys}


def render(rows: Dict[str, Dict[Tuple[int, int], float]],
           title: str = "Figure 7: (N+M) performance relative to (2+0)"
           ) -> str:
    keys = sorted(next(iter(rows.values())).keys())
    table = Table(
        ["program"] + [f"({n}+{m})" for n, m in keys],
        precision=3, title=title,
    )
    for name, row in rows.items():
        table.add_row(name, *[row[k] for k in keys])
    avg = average_surface(rows)
    table.add_row("geomean", *[avg[k] for k in keys])
    return table.render()


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()

"""Multi-programmed interference: what co-scheduling costs each program.

The paper evaluates a single program per machine.  With the trace
capture/replay engine (:mod:`repro.trace`) the same staged kernel can
run N committed streams on N cores that share the L2 and the memory bus
(:func:`repro.core.multicore.run_mix`), so this experiment asks the
natural follow-on question: does decoupling local-variable accesses
change how much a program *suffers* from a co-runner?

For each program pair, each program runs twice on the conventional
``(2+0)`` machine and the optimized decoupled ``(2+2:opt)`` machine:

* **solo** — alone, the paper's setting (execution-driven numbers;
  a 1-program mix is bit-identical by construction);
* **mixed** — alongside its partner with a shared L2 and bus.

The reported **slowdown** is solo IPC over mixed IPC (1.0 = no
interference).  The ``mix.*`` counters attribute the damage: bus
conflict cycles the program absorbed and L2 lines a co-runner evicted
from under it.  Decoupling diverts the (overwhelmingly local) stack
traffic away from the shared hierarchy, so the working hypothesis is
that the optimized machine interferes *less* per instruction — the
LVC acts as per-core bandwidth the bus never sees.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.common import (
    DEFAULT_SCALE,
    nm_config,
    run_sim,
)
from repro.runtime.job import MixJob
from repro.stats.report import Table
from repro.trace.mix import MixResult, run_mix_jobs
from repro.utils import geometric_mean

#: Program pairs, chosen to mix cache-hungry and compute-leaning codes.
MIX_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("129.compress", "130.li"),
    ("126.gcc", "134.perl"),
    ("099.go", "147.vortex"),
)

#: label -> machine under test (the Figure 9 endpoints).
CONFIGS = {
    "(2+0)": lambda: nm_config(2, 0),
    "(2+2:opt)": lambda: nm_config(2, 2, fast_forwarding=True, combining=2),
}


def _mix_results(pairs: Sequence[Tuple[str, str]], scale: float
                 ) -> Dict[Tuple[Tuple[str, str], str], MixResult]:
    """Run every (pair, config) mix in one engine batch."""
    jobs = []
    index = []
    for pair in pairs:
        for label, make in CONFIGS.items():
            jobs.append(MixJob(pair, make(), scale=scale))
            index.append((pair, label))
    results = run_mix_jobs(jobs)
    return {key: result for key, (_, result) in zip(index, results)}


def run(scale: float = DEFAULT_SCALE,
        pairs: Optional[Sequence[Tuple[str, str]]] = None
        ) -> Dict[str, Dict[str, Dict[str, Dict[str, float]]]]:
    """{pair label: {config label: {program: metrics}}}.

    Per-program metrics: ``solo_ipc``, ``mix_ipc``, ``slowdown``, plus
    the bus-conflict stall cycles and suffered L2 evictions.
    """
    pairs = tuple(pairs) if pairs is not None else MIX_PAIRS
    mixes = _mix_results(pairs, scale)
    rows: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = {}
    for pair in pairs:
        pair_label = "+".join(pair)
        rows[pair_label] = {}
        for label, make in CONFIGS.items():
            mix = mixes[(pair, label)]
            cell: Dict[str, Dict[str, float]] = {}
            for name in pair:
                solo = run_sim(name, make(), scale)
                sliced = mix.slice(name)
                cell[name] = {
                    "solo_ipc": solo.ipc,
                    "mix_ipc": sliced.ipc,
                    "slowdown": solo.ipc / sliced.ipc,
                    "bus_conflict_stalls":
                        sliced.counters.get("mix.bus_conflict_stalls"),
                    "l2_evictions_suffered":
                        sliced.counters.get("mix.l2_evictions_suffered"),
                }
            rows[pair_label][label] = cell
    return rows


def render(rows: Dict[str, Dict[str, Dict[str, Dict[str, float]]]]) -> str:
    table = Table(
        ["mix", "config", "program", "solo IPC", "mix IPC", "slowdown",
         "bus stall cyc", "L2 evict'd"],
        precision=3,
        title="Multi-programmed interference: solo vs shared-L2 mix",
    )
    slowdowns: Dict[str, list] = {label: [] for label in CONFIGS}
    for pair_label, by_config in rows.items():
        for config_label, cell in by_config.items():
            for program, metrics in cell.items():
                slowdowns[config_label].append(metrics["slowdown"])
                table.add_row(
                    pair_label, config_label, program,
                    metrics["solo_ipc"], metrics["mix_ipc"],
                    metrics["slowdown"],
                    int(metrics["bus_conflict_stalls"]),
                    int(metrics["l2_evictions_suffered"]),
                )
    lines = [table.render(), ""]
    for config_label, values in slowdowns.items():
        lines.append(
            f"geomean slowdown on {config_label}: "
            f"{geometric_mean(values):.3f}x")
    return "\n".join(lines)


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()

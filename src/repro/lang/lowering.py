"""Lowering: typed AST -> linear IR with virtual registers.

Key decisions made here:

* Scalar locals live in virtual registers unless their address is taken;
  addressed locals and arrays get :class:`FrameSlot` objects.
* Every memory access is annotated with its compile-time **locality**
  (True = stack, False = data/heap, None = ambiguous).  Pointer values
  carry a provenance lattice (local / non-local / unknown) so that e.g.
  indexing a local array through a computed pointer is still classified
  local, while dereferencing a pointer parameter is ambiguous — exactly
  the `bar(&X)` situation of the paper's Figure 4.
* Calls move arguments into precolored ABI registers ($a0..$a3 / $f12..)
  so the register allocator sees the true interference; arguments beyond
  four go to outgoing stack slots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.errors import CompileError
from repro.isa.registers import FPR_BASE, Reg
from repro.lang.ast_nodes import (
    Assign, Binary, Block, Break, Call, Continue, Expr, ExprStmt, FloatLit,
    For, FuncDef, Ident, If, Index, IntLit, Return, Stmt, Ty, Unary,
    VarDecl, While,
)
from repro.lang.ir import FrameSlot, IrFunction, IrInstr, VReg
from repro.lang.semantics import (
    FuncSymbol,
    GlobalSymbol,
    LocalSymbol,
    SemanticAnalyzer,
)

_ARG_GPRS = (int(Reg.A0), int(Reg.A1), int(Reg.A2), int(Reg.A3))
_ARG_FPRS = (FPR_BASE + 12, FPR_BASE + 13, FPR_BASE + 14, FPR_BASE + 15)
_V0 = int(Reg.V0)
_F0 = FPR_BASE + 0

#: Intrinsic call symbols understood by codegen.
INTRINSICS = {"print": "@print", "printc": "@printc",
              "printfl": "@printfl", "sbrk": "@sbrk"}

_CMP_SWAP = {"sgt": "slt", "sge": "sle", "fsgt": "fslt", "fsge": "fsle"}

# An address expression: (base, byte offset, locality).
Addr = Tuple[Union[VReg, Tuple[str, object]], int, Optional[bool]]


class Lowerer:
    """Lowers one function to IR."""

    def __init__(self, func: FuncDef, analyzer: SemanticAnalyzer):
        self.func = func
        self.analyzer = analyzer
        self.ir = IrFunction(func.name)
        self.env: Dict[int, Union[VReg, FrameSlot]] = {}
        self.prov: Dict[int, Optional[bool]] = {}
        self._labels = 0
        self._loops: List[Tuple[str, str]] = []  # (continue, break) targets

    # -- small helpers -------------------------------------------------------

    def _label(self, hint: str) -> str:
        self._labels += 1
        return f"{self.func.name}__{hint}{self._labels}"

    def _vreg(self, is_float: bool = False) -> VReg:
        return self.ir.new_vreg(is_float)

    def _emit(self, **kwargs) -> IrInstr:
        # Loop depth weights register-allocation spill costs.
        kwargs.setdefault("depth", len(self._loops))
        return self.ir.emit(IrInstr(**kwargs))

    def _const(self, value: int) -> VReg:
        dst = self._vreg()
        self._emit(kind="li", dst=dst, imm=value)
        return dst

    def _set_prov(self, vreg: VReg, locality: Optional[bool]) -> None:
        self.prov[vreg.id] = locality

    def _get_prov(self, vreg: VReg) -> Optional[bool]:
        return self.prov.get(vreg.id)

    # -- driver ---------------------------------------------------------------

    def lower(self) -> IrFunction:
        """Lower the whole function body; returns the IR function."""
        self.ir.num_params = len(self.func.params)
        self._lower_params()
        self._lower_block(self.func.body)
        # Fall off the end: void functions return implicitly; non-void
        # functions that fall through return an undefined 0.
        if not self.func.ret_ty.is_void:
            zero = self._const(0)
            ret_reg = VReg(0, self.func.ret_ty.is_float,
                           phys=_F0 if self.func.ret_ty.is_float else _V0)
            if self.func.ret_ty.is_float:
                self._emit(kind="cvt", dst=ret_reg, a=zero, op="if")
            else:
                self._emit(kind="mov", dst=ret_reg, a=zero)
            self._emit(kind="ret", args=[ret_reg])
        else:
            self._emit(kind="ret", args=[])
        self._emit(kind="label", sym=self.ir.exit_label)
        return self.ir

    def _lower_params(self) -> None:
        for index, param in enumerate(self.func.params):
            symbol = param.symbol
            assert isinstance(symbol, LocalSymbol)
            is_float = param.ty.is_float
            if index < 4:
                phys = _ARG_FPRS[index] if is_float else _ARG_GPRS[index]
                incoming = VReg(0, is_float, phys=phys)
                if symbol.needs_memory:
                    slot = self.ir.new_slot(param.name, 1)
                    self.env[symbol.uid] = slot
                    self._emit(kind="store", a=incoming,
                               base=("frame", slot), imm=0, locality=True,
                               is_float=is_float)
                else:
                    dst = self._vreg(is_float)
                    self.env[symbol.uid] = dst
                    self._emit(kind="mov", dst=dst, a=incoming)
                    if param.ty.is_pointer:
                        self._set_prov(dst, None)  # may point anywhere
            else:
                # Stack-passed argument: it lives in the caller's outgoing
                # area, which is still the run-time stack (local region).
                if symbol.needs_memory:
                    slot = self.ir.new_slot(param.name, 1)
                    self.env[symbol.uid] = slot
                    tmp = self._vreg(is_float)
                    self._emit(kind="load", dst=tmp,
                               base=("incoming", index - 4), imm=0,
                               locality=True, is_float=is_float)
                    self._emit(kind="store", a=tmp, base=("frame", slot),
                               imm=0, locality=True, is_float=is_float)
                else:
                    dst = self._vreg(is_float)
                    self.env[symbol.uid] = dst
                    self._emit(kind="load", dst=dst,
                               base=("incoming", index - 4), imm=0,
                               locality=True, is_float=is_float)
                    if param.ty.is_pointer:
                        self._set_prov(dst, None)

    # -- statements ----------------------------------------------------------

    def _lower_block(self, block: Block) -> None:
        for stmt in block.stmts:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            self._lower_block(stmt)
        elif isinstance(stmt, VarDecl):
            self._lower_vardecl(stmt)
        elif isinstance(stmt, ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, If):
            self._lower_if(stmt)
        elif isinstance(stmt, While):
            self._lower_while(stmt)
        elif isinstance(stmt, For):
            self._lower_for(stmt)
        elif isinstance(stmt, Return):
            self._lower_return(stmt)
        elif isinstance(stmt, Break):
            if not self._loops:
                raise CompileError("break outside a loop", stmt.line)
            self._emit(kind="jmp", sym=self._loops[-1][1])
        elif isinstance(stmt, Continue):
            if not self._loops:
                raise CompileError("continue outside a loop", stmt.line)
            self._emit(kind="jmp", sym=self._loops[-1][0])
        else:
            raise CompileError(f"cannot lower {type(stmt).__name__}",
                               stmt.line)

    def _lower_vardecl(self, decl: VarDecl) -> None:
        symbol = decl.symbol
        assert isinstance(symbol, LocalSymbol)
        is_float = decl.ty.is_float
        if symbol.needs_memory:
            words = symbol.array_size if symbol.is_array else 1
            slot = self.ir.new_slot(decl.name, words)
            self.env[symbol.uid] = slot
            if decl.init is not None:
                value = self._rvalue(decl.init, decl.ty)
                self._emit(kind="store", a=value, base=("frame", slot),
                           imm=0, locality=True, is_float=is_float)
            return
        dst = self._vreg(is_float)
        self.env[symbol.uid] = dst
        if decl.init is not None:
            value = self._rvalue(decl.init, decl.ty)
            self._emit(kind="mov", dst=dst, a=value)
            if decl.ty.is_pointer:
                self._set_prov(dst, self._get_prov(value))
        else:
            # Define the register so liveness never sees a use-before-def.
            if is_float:
                zero = self._const(0)
                self._emit(kind="cvt", dst=dst, a=zero, op="if")
            else:
                self._emit(kind="li", dst=dst, imm=0)

    def _lower_if(self, stmt: If) -> None:
        else_label = self._label("else")
        end_label = self._label("endif")
        cond = self._lower_expr(stmt.cond)
        self._emit(kind="br", a=cond, sym=else_label, invert=True)
        self._lower_stmt(stmt.then)
        if stmt.els is not None:
            self._emit(kind="jmp", sym=end_label)
            self._emit(kind="label", sym=else_label)
            self._lower_stmt(stmt.els)
            self._emit(kind="label", sym=end_label)
        else:
            self._emit(kind="label", sym=else_label)

    def _lower_while(self, stmt: While) -> None:
        top = self._label("while")
        end = self._label("wend")
        self._emit(kind="label", sym=top)
        cond = self._lower_expr(stmt.cond)
        self._emit(kind="br", a=cond, sym=end, invert=True)
        self._loops.append((top, end))
        self._lower_stmt(stmt.body)
        self._loops.pop()
        self._emit(kind="jmp", sym=top)
        self._emit(kind="label", sym=end)

    def _lower_for(self, stmt: For) -> None:
        top = self._label("for")
        step_label = self._label("fstep")
        end = self._label("fend")
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        self._emit(kind="label", sym=top)
        if stmt.cond is not None:
            cond = self._lower_expr(stmt.cond)
            self._emit(kind="br", a=cond, sym=end, invert=True)
        self._loops.append((step_label, end))
        self._lower_stmt(stmt.body)
        self._loops.pop()
        self._emit(kind="label", sym=step_label)
        if stmt.step is not None:
            self._lower_expr(stmt.step)
        self._emit(kind="jmp", sym=top)
        self._emit(kind="label", sym=end)

    def _lower_return(self, stmt: Return) -> None:
        if stmt.value is None:
            self._emit(kind="ret", args=[])
            self._emit(kind="jmp", sym=self.ir.exit_label)
            return
        ret_ty = self.func.ret_ty
        value = self._rvalue(stmt.value, ret_ty)
        ret_reg = VReg(0, ret_ty.is_float,
                       phys=_F0 if ret_ty.is_float else _V0)
        self._emit(kind="mov", dst=ret_reg, a=value)
        self._emit(kind="ret", args=[ret_reg])
        self._emit(kind="jmp", sym=self.ir.exit_label)

    # -- expressions ------------------------------------------------------------

    def _rvalue(self, expr: Expr, want: Ty) -> VReg:
        """Lower *expr* and coerce the result to type *want*."""
        value = self._lower_expr(expr)
        return self._coerce(value, expr.ty, want)

    def _coerce(self, value: VReg, have: Optional[Ty], want: Ty) -> VReg:
        if have is None:
            return value
        if want.is_float and not have.is_float:
            dst = self._vreg(True)
            self._emit(kind="cvt", dst=dst, a=value, op="if")
            return dst
        if not want.is_float and have.is_float:
            dst = self._vreg(False)
            self._emit(kind="cvt", dst=dst, a=value, op="fi")
            return dst
        return value

    def _lower_expr(self, expr: Expr) -> VReg:
        if isinstance(expr, IntLit):
            return self._const(expr.value)
        if isinstance(expr, FloatLit):
            dst = self._vreg(True)
            self._emit(kind="lfi", dst=dst, imm=expr.value)
            return dst
        if isinstance(expr, Ident):
            return self._lower_ident(expr)
        if isinstance(expr, Unary):
            return self._lower_unary(expr)
        if isinstance(expr, Binary):
            return self._lower_binary(expr)
        if isinstance(expr, Assign):
            return self._lower_assign(expr)
        if isinstance(expr, Index):
            base, offset, locality = self._addr_of(expr)
            dst = self._vreg(expr.ty.is_float)
            self._emit(kind="load", dst=dst, base=base, imm=offset,
                       locality=locality, is_float=expr.ty.is_float)
            if expr.ty.is_pointer:
                self._set_prov(dst, None)
            return dst
        if isinstance(expr, Call):
            return self._lower_call(expr)
        raise CompileError(f"cannot lower {type(expr).__name__}", expr.line)

    def _lower_ident(self, expr: Ident) -> VReg:
        symbol = expr.symbol
        if isinstance(symbol, GlobalSymbol):
            if symbol.is_array:
                dst = self._vreg()
                self._emit(kind="la_global", dst=dst, sym=symbol.name)
                self._set_prov(dst, False)
                return dst
            dst = self._vreg(symbol.ty.is_float)
            self._emit(kind="load", dst=dst, base=("global", symbol.name),
                       imm=0, locality=False, is_float=symbol.ty.is_float)
            if symbol.ty.is_pointer:
                self._set_prov(dst, None)
            return dst
        assert isinstance(symbol, LocalSymbol)
        binding = self.env[symbol.uid]
        if isinstance(binding, VReg):
            return binding
        if symbol.is_array:
            dst = self._vreg()
            self._emit(kind="la_frame", dst=dst, base=("frame", binding))
            self._set_prov(dst, True)
            return dst
        dst = self._vreg(symbol.ty.is_float)
        self._emit(kind="load", dst=dst, base=("frame", binding), imm=0,
                   locality=True, is_float=symbol.ty.is_float)
        if symbol.ty.is_pointer:
            self._set_prov(dst, None)
        return dst

    def _lower_unary(self, expr: Unary) -> VReg:
        if expr.op == "&":
            base, offset, locality = self._addr_of(expr.operand)
            return self._materialise_addr(base, offset, locality)
        if expr.op == "*":
            base, offset, locality = self._addr_of(expr)
            dst = self._vreg(expr.ty.is_float)
            self._emit(kind="load", dst=dst, base=base, imm=offset,
                       locality=locality, is_float=expr.ty.is_float)
            if expr.ty.is_pointer:
                self._set_prov(dst, None)
            return dst
        operand = self._lower_expr(expr.operand)
        if expr.op == "-":
            dst = self._vreg(expr.ty.is_float)
            if expr.ty.is_float:
                zero = self._vreg(True)
                int_zero = self._const(0)
                self._emit(kind="cvt", dst=zero, a=int_zero, op="if")
                self._emit(kind="bin", op="fsub", dst=dst, a=zero, b=operand)
            else:
                zero = self._const(0)
                self._emit(kind="bin", op="sub", dst=dst, a=zero, b=operand)
            return dst
        if expr.op == "!":
            value = operand
            if expr.operand.ty is not None and expr.operand.ty.is_float:
                value = self._coerce(operand, expr.operand.ty,
                                     Ty("int"))
            dst = self._vreg()
            zero = self._const(0)
            self._emit(kind="bin", op="seq", dst=dst, a=value, b=zero)
            return dst
        raise CompileError(f"cannot lower unary {expr.op!r}", expr.line)

    def _lower_binary(self, expr: Binary) -> VReg:
        op = expr.op
        if op in ("&&", "||"):
            return self._lower_logical(expr)
        left_ty, right_ty = expr.left.ty, expr.right.ty
        # pointer arithmetic: scale the integer side by the word size
        if left_ty.is_pointer or right_ty.is_pointer:
            return self._lower_pointer_arith(expr)
        is_float = left_ty.is_float or right_ty.is_float
        want = Ty("float") if is_float else Ty("int")
        left = self._rvalue(expr.left, want)
        right = self._rvalue(expr.right, want)
        ir_op = self._binary_ir_op(op, is_float, expr.line)
        result_float = is_float and op in ("+", "-", "*", "/")
        dst = self._vreg(result_float)
        if ir_op in _CMP_SWAP:
            self._emit(kind="bin", op=_CMP_SWAP[ir_op], dst=dst,
                       a=right, b=left)
        else:
            self._emit(kind="bin", op=ir_op, dst=dst, a=left, b=right)
        return dst

    @staticmethod
    def _binary_ir_op(op: str, is_float: bool, line: int) -> str:
        table = {
            "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
            "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "sra",
            "<": "slt", "<=": "sle", ">": "sgt", ">=": "sge",
            "==": "seq", "!=": "sne",
        }
        ir_op = table.get(op)
        if ir_op is None:
            raise CompileError(f"cannot lower binary {op!r}", line)
        if is_float:
            float_ok = {"add", "sub", "mul", "div",
                        "slt", "sle", "sgt", "sge", "seq", "sne"}
            if ir_op not in float_ok:
                raise CompileError(f"{op!r} is not defined on floats", line)
            return "f" + ir_op
        return ir_op

    def _lower_pointer_arith(self, expr: Binary) -> VReg:
        op = expr.op
        left_ty, right_ty = expr.left.ty, expr.right.ty
        if op in ("==", "!=", "<", "<=", ">", ">="):
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)
            dst = self._vreg()
            ir_op = self._binary_ir_op(op, False, expr.line)
            if ir_op in _CMP_SWAP:
                self._emit(kind="bin", op=_CMP_SWAP[ir_op], dst=dst,
                           a=right, b=left)
            else:
                self._emit(kind="bin", op=ir_op, dst=dst, a=left, b=right)
            return dst
        if left_ty.is_pointer and right_ty.is_pointer:
            if op != "-":
                raise CompileError("invalid pointer arithmetic", expr.line)
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)
            diff = self._vreg()
            self._emit(kind="bin", op="sub", dst=diff, a=left, b=right)
            dst = self._vreg()
            self._emit(kind="bini", op="sra", dst=dst, a=diff, imm=2)
            return dst
        pointer_expr = expr.left if left_ty.is_pointer else expr.right
        int_expr = expr.right if left_ty.is_pointer else expr.left
        pointer = self._lower_expr(pointer_expr)
        index = self._lower_expr(int_expr)
        scaled = self._vreg()
        self._emit(kind="bini", op="shl", dst=scaled, a=index, imm=2)
        dst = self._vreg()
        ir_op = "sub" if (op == "-" and left_ty.is_pointer) else "add"
        self._emit(kind="bin", op=ir_op, dst=dst, a=pointer, b=scaled)
        self._set_prov(dst, self._get_prov(pointer))
        return dst

    def _lower_logical(self, expr: Binary) -> VReg:
        dst = self._vreg()
        end = self._label("sc")
        zero = self._const(0)
        left = self._lower_expr(expr.left)
        if expr.op == "&&":
            self._emit(kind="li", dst=dst, imm=0)
            self._emit(kind="br", a=left, sym=end, invert=True)
            right = self._lower_expr(expr.right)
            self._emit(kind="bin", op="sne", dst=dst, a=right, b=zero)
        else:
            self._emit(kind="li", dst=dst, imm=1)
            self._emit(kind="br", a=left, sym=end, invert=False)
            right = self._lower_expr(expr.right)
            self._emit(kind="bin", op="sne", dst=dst, a=right, b=zero)
        self._emit(kind="label", sym=end)
        return dst

    def _lower_assign(self, expr: Assign) -> VReg:
        target = expr.target
        target_ty = target.ty
        # register-resident scalar
        if isinstance(target, Ident):
            symbol = target.symbol
            if isinstance(symbol, LocalSymbol):
                binding = self.env[symbol.uid]
                if isinstance(binding, VReg):
                    value = self._assign_value(expr, binding, target_ty)
                    self._emit(kind="mov", dst=binding, a=value)
                    if target_ty.is_pointer:
                        self._set_prov(binding, self._get_prov(value))
                    return binding
        base, offset, locality = self._addr_of(target)
        if expr.op:
            current = self._vreg(target_ty.is_float)
            self._emit(kind="load", dst=current, base=base, imm=offset,
                       locality=locality, is_float=target_ty.is_float)
            value = self._compound(expr, current, target_ty)
        else:
            value = self._rvalue(expr.value, target_ty)
        self._emit(kind="store", a=value, base=base, imm=offset,
                   locality=locality, is_float=target_ty.is_float)
        return value

    def _assign_value(self, expr: Assign, current: VReg, ty: Ty) -> VReg:
        if not expr.op:
            return self._rvalue(expr.value, ty)
        return self._compound(expr, current, ty)

    def _compound(self, expr: Assign, current: VReg, ty: Ty) -> VReg:
        if ty.is_pointer:
            index = self._rvalue(expr.value, Ty("int"))
            scaled = self._vreg()
            self._emit(kind="bini", op="shl", dst=scaled, a=index, imm=2)
            dst = self._vreg()
            op = "add" if expr.op == "+" else "sub"
            self._emit(kind="bin", op=op, dst=dst, a=current, b=scaled)
            self._set_prov(dst, self._get_prov(current))
            return dst
        value = self._rvalue(expr.value, ty)
        dst = self._vreg(ty.is_float)
        if ty.is_float:
            op = "fadd" if expr.op == "+" else "fsub"
        else:
            op = "add" if expr.op == "+" else "sub"
        self._emit(kind="bin", op=op, dst=dst, a=current, b=value)
        return dst

    # -- addressing -----------------------------------------------------------

    def _addr_of(self, expr: Expr) -> Addr:
        """Compute the address of an lvalue expression."""
        if isinstance(expr, Ident):
            symbol = expr.symbol
            if isinstance(symbol, GlobalSymbol):
                return ("global", symbol.name), 0, False
            assert isinstance(symbol, LocalSymbol)
            binding = self.env[symbol.uid]
            if isinstance(binding, VReg):
                raise CompileError(
                    f"{expr.name!r} has no address (register-resident)",
                    expr.line,
                )
            return ("frame", binding), 0, True
        if isinstance(expr, Unary) and expr.op == "*":
            pointer = self._lower_expr(expr.operand)
            return pointer, 0, self._get_prov(pointer)
        if isinstance(expr, Index):
            return self._addr_of_index(expr)
        raise CompileError("expression has no address", expr.line)

    def _addr_of_index(self, expr: Index) -> Addr:
        base_expr = expr.base
        # Direct array indexing with a constant index folds into the offset.
        if isinstance(base_expr, Ident) and base_expr.symbol is not None \
                and base_expr.symbol.is_array \
                and isinstance(expr.index, IntLit):
            symbol = base_expr.symbol
            offset = 4 * expr.index.value
            if isinstance(symbol, GlobalSymbol):
                return ("global", symbol.name), offset, False
            binding = self.env[symbol.uid]
            assert isinstance(binding, FrameSlot)
            return ("frame", binding), offset, True
        pointer = self._lower_expr(base_expr)
        locality = self._get_prov(pointer)
        index = self._lower_expr(expr.index)
        scaled = self._vreg()
        self._emit(kind="bini", op="shl", dst=scaled, a=index, imm=2)
        addr = self._vreg()
        self._emit(kind="bin", op="add", dst=addr, a=pointer, b=scaled)
        self._set_prov(addr, locality)
        return addr, 0, locality

    def _materialise_addr(self, base, offset: int,
                          locality: Optional[bool]) -> VReg:
        """Turn an address expression into a pointer value in a VReg."""
        if isinstance(base, VReg):
            if offset == 0:
                return base
            dst = self._vreg()
            self._emit(kind="bini", op="add", dst=dst, a=base, imm=offset)
            self._set_prov(dst, locality)
            return dst
        kind, payload = base
        dst = self._vreg()
        if kind == "frame":
            self._emit(kind="la_frame", dst=dst, base=base, imm=offset)
            self._set_prov(dst, True)
        elif kind == "global":
            self._emit(kind="la_global", dst=dst, sym=payload, imm=offset)
            self._set_prov(dst, False)
        else:
            raise CompileError(f"cannot take address of {kind} base")
        return dst

    # -- calls --------------------------------------------------------------

    def _lower_call(self, expr: Call) -> VReg:
        func = self.analyzer.functions[expr.name]
        assert isinstance(func, FuncSymbol)
        arg_values: List[Tuple[VReg, bool]] = []
        for arg, param_ty in zip(expr.args, func.param_tys):
            value = self._rvalue(arg, param_ty)
            arg_values.append((value, param_ty.is_float))
        precolored: List[VReg] = []
        for index, (value, is_float) in enumerate(arg_values):
            if index < 4:
                phys = _ARG_FPRS[index] if is_float else _ARG_GPRS[index]
                slot_reg = VReg(0, is_float, phys=phys)
                self._emit(kind="mov", dst=slot_reg, a=value)
                precolored.append(slot_reg)
            else:
                self._emit(kind="store", a=value,
                           base=("outgoing", index - 4), imm=0,
                           locality=True, is_float=is_float)
        self.ir.max_outgoing_args = max(self.ir.max_outgoing_args,
                                        len(arg_values))
        sym = INTRINSICS.get(expr.name, expr.name)
        if not func.is_builtin:
            self.ir.has_calls = True
        returns_value = not func.ty.is_void
        ret_reg: Optional[VReg] = None
        if returns_value:
            ret_reg = VReg(0, func.ty.is_float,
                           phys=_F0 if func.ty.is_float else _V0)
        self._emit(kind="call", sym=sym, args=precolored, dst=ret_reg)
        if ret_reg is None:
            return self._const(0)  # void result placeholder (never used)
        dst = self._vreg(func.ty.is_float)
        self._emit(kind="mov", dst=dst, a=ret_reg)
        if func.ty.is_pointer:
            # sbrk returns heap memory; other calls are unknown.
            self._set_prov(dst, False if func.name == "sbrk" else None)
        return dst


def lower_function(func: FuncDef, analyzer: SemanticAnalyzer) -> IrFunction:
    """Lower one function definition to IR."""
    return Lowerer(func, analyzer).lower()

"""Token definitions for the mini-C lexer."""

from __future__ import annotations

from enum import Enum, auto


class TokenType(Enum):
    """Lexical token categories."""

    # literals / identifiers
    INT_LIT = auto()
    FLOAT_LIT = auto()
    CHAR_LIT = auto()
    IDENT = auto()

    # keywords
    KW_INT = auto()
    KW_FLOAT = auto()
    KW_VOID = auto()
    KW_IF = auto()
    KW_ELSE = auto()
    KW_WHILE = auto()
    KW_FOR = auto()
    KW_RETURN = auto()
    KW_BREAK = auto()
    KW_CONTINUE = auto()

    # punctuation
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    COMMA = auto()
    SEMI = auto()

    # operators
    ASSIGN = auto()
    PLUS_ASSIGN = auto()
    MINUS_ASSIGN = auto()
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    AMP = auto()
    PIPE = auto()
    CARET = auto()
    SHL = auto()
    SHR = auto()
    NOT = auto()
    AND_AND = auto()
    OR_OR = auto()
    EQ = auto()
    NE = auto()
    LT = auto()
    LE = auto()
    GT = auto()
    GE = auto()
    PLUS_PLUS = auto()
    MINUS_MINUS = auto()

    EOF = auto()


KEYWORDS = {
    "int": TokenType.KW_INT,
    "float": TokenType.KW_FLOAT,
    "void": TokenType.KW_VOID,
    "if": TokenType.KW_IF,
    "else": TokenType.KW_ELSE,
    "while": TokenType.KW_WHILE,
    "for": TokenType.KW_FOR,
    "return": TokenType.KW_RETURN,
    "break": TokenType.KW_BREAK,
    "continue": TokenType.KW_CONTINUE,
}


class Token:
    """One lexical token with source position."""

    __slots__ = ("type", "value", "line", "column")

    def __init__(self, type_: TokenType, value, line: int, column: int):
        self.type = type_
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"

"""Recursive-descent parser for the mini-C language.

Grammar sketch::

    program   := (global | funcdef)*
    global    := type IDENT ('[' INT ']')? ('=' literal)? ';'
    funcdef   := type IDENT '(' params? ')' block
    stmt      := block | vardecl | if | while | for | return
               | break ';' | continue ';' | expr ';'
    expr      := assignment with C-like precedence

Increment/decrement (``i++``) desugars to a compound assignment.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import CompileError
from repro.lang.ast_nodes import (
    Assign, Binary, Block, Break, Call, Continue, Expr, ExprStmt, FloatLit,
    For, FuncDef, GlobalVar, Ident, If, Index, IntLit, Param, ProgramAst,
    Return, Stmt, Ty, Unary, VarDecl, While,
)
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenType as T

_TYPE_STARTERS = (T.KW_INT, T.KW_FLOAT, T.KW_VOID)

# binary operator precedence (larger binds tighter)
_BIN_PREC = {
    T.OR_OR: 1,
    T.AND_AND: 2,
    T.PIPE: 3,
    T.CARET: 4,
    T.AMP: 5,
    T.EQ: 6, T.NE: 6,
    T.LT: 7, T.LE: 7, T.GT: 7, T.GE: 7,
    T.SHL: 8, T.SHR: 8,
    T.PLUS: 9, T.MINUS: 9,
    T.STAR: 10, T.SLASH: 10, T.PERCENT: 10,
}

_BIN_NAMES = {
    T.OR_OR: "||", T.AND_AND: "&&", T.PIPE: "|", T.CARET: "^", T.AMP: "&",
    T.EQ: "==", T.NE: "!=", T.LT: "<", T.LE: "<=", T.GT: ">", T.GE: ">=",
    T.SHL: "<<", T.SHR: ">>", T.PLUS: "+", T.MINUS: "-", T.STAR: "*",
    T.SLASH: "/", T.PERCENT: "%",
}


class Parser:
    """Parser state over one token stream."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ---------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not T.EOF:
            self.pos += 1
        return token

    def check(self, type_: T) -> bool:
        return self.peek().type is type_

    def accept(self, type_: T) -> Optional[Token]:
        if self.check(type_):
            return self.advance()
        return None

    def expect(self, type_: T, what: str = "") -> Token:
        token = self.peek()
        if token.type is not type_:
            expected = what or type_.name
            raise CompileError(
                f"expected {expected}, found {token.type.name}",
                token.line, token.column,
            )
        return self.advance()

    # -- top level ---------------------------------------------------------

    def parse_program(self) -> ProgramAst:
        globals_: List[GlobalVar] = []
        functions: List[FuncDef] = []
        while not self.check(T.EOF):
            ty = self._parse_type()
            name = self.expect(T.IDENT, "identifier")
            if self.check(T.LPAREN):
                functions.append(self._parse_funcdef(ty, name))
            else:
                globals_.append(self._parse_global(ty, name))
        return ProgramAst(globals_, functions)

    def _parse_type(self) -> Ty:
        token = self.peek()
        if token.type is T.KW_INT:
            base = "int"
        elif token.type is T.KW_FLOAT:
            base = "float"
        elif token.type is T.KW_VOID:
            base = "void"
        else:
            raise CompileError(
                f"expected a type, found {token.type.name}",
                token.line, token.column,
            )
        self.advance()
        ptr = 0
        while self.accept(T.STAR):
            ptr += 1
        return Ty(base, ptr)

    def _parse_global(self, ty: Ty, name: Token) -> GlobalVar:
        array_size = None
        init: Optional[List[float]] = None
        if self.accept(T.LBRACKET):
            array_size = int(self.expect(T.INT_LIT, "array size").value)
            self.expect(T.RBRACKET)
        if self.accept(T.ASSIGN):
            init = [self._parse_const_literal()]
        self.expect(T.SEMI)
        return GlobalVar(ty, name.value, array_size, init, name.line)

    def _parse_const_literal(self) -> float:
        negative = bool(self.accept(T.MINUS))
        token = self.peek()
        if token.type is T.INT_LIT or token.type is T.FLOAT_LIT \
                or token.type is T.CHAR_LIT:
            self.advance()
            value = token.value
            return -value if negative else value
        raise CompileError(
            "global initialisers must be literals", token.line, token.column
        )

    def _parse_funcdef(self, ret_ty: Ty, name: Token) -> FuncDef:
        self.expect(T.LPAREN)
        params: List[Param] = []
        if not self.check(T.RPAREN):
            while True:
                pty = self._parse_type()
                pname = self.expect(T.IDENT, "parameter name")
                params.append(Param(pty, pname.value))
                if not self.accept(T.COMMA):
                    break
        self.expect(T.RPAREN)
        body = self._parse_block()
        return FuncDef(ret_ty, name.value, params, body, name.line)

    # -- statements ---------------------------------------------------------

    def _parse_block(self) -> Block:
        open_ = self.expect(T.LBRACE)
        stmts: List[Stmt] = []
        while not self.check(T.RBRACE):
            if self.check(T.EOF):
                raise CompileError("unterminated block", open_.line,
                                   open_.column)
            stmts.append(self._parse_stmt())
        self.expect(T.RBRACE)
        return Block(stmts, open_.line)

    def _parse_stmt(self) -> Stmt:
        token = self.peek()
        if token.type is T.LBRACE:
            return self._parse_block()
        if token.type in _TYPE_STARTERS:
            return self._parse_vardecl()
        if token.type is T.KW_IF:
            return self._parse_if()
        if token.type is T.KW_WHILE:
            return self._parse_while()
        if token.type is T.KW_FOR:
            return self._parse_for()
        if token.type is T.KW_RETURN:
            self.advance()
            value = None if self.check(T.SEMI) else self._parse_expr()
            self.expect(T.SEMI)
            return Return(value, token.line)
        if token.type is T.KW_BREAK:
            self.advance()
            self.expect(T.SEMI)
            stmt = Break(token.line)
            return stmt
        if token.type is T.KW_CONTINUE:
            self.advance()
            self.expect(T.SEMI)
            return Continue(token.line)
        expr = self._parse_expr()
        self.expect(T.SEMI)
        return ExprStmt(expr, token.line)

    def _parse_vardecl(self) -> VarDecl:
        ty = self._parse_type()
        name = self.expect(T.IDENT, "variable name")
        array_size = None
        init = None
        if self.accept(T.LBRACKET):
            array_size = int(self.expect(T.INT_LIT, "array size").value)
            self.expect(T.RBRACKET)
        elif self.accept(T.ASSIGN):
            init = self._parse_expr()
        self.expect(T.SEMI)
        return VarDecl(ty, name.value, array_size, init, name.line)

    def _parse_if(self) -> If:
        token = self.advance()
        self.expect(T.LPAREN)
        cond = self._parse_expr()
        self.expect(T.RPAREN)
        then = self._parse_stmt()
        els = self._parse_stmt() if self.accept(T.KW_ELSE) else None
        return If(cond, then, els, token.line)

    def _parse_while(self) -> While:
        token = self.advance()
        self.expect(T.LPAREN)
        cond = self._parse_expr()
        self.expect(T.RPAREN)
        return While(cond, self._parse_stmt(), token.line)

    def _parse_for(self) -> For:
        token = self.advance()
        self.expect(T.LPAREN)
        init: Optional[Stmt] = None
        if not self.check(T.SEMI):
            if self.peek().type in _TYPE_STARTERS:
                init = self._parse_vardecl()
            else:
                expr = self._parse_expr()
                self.expect(T.SEMI)
                init = ExprStmt(expr, token.line)
        else:
            self.advance()
        cond = None if self.check(T.SEMI) else self._parse_expr()
        self.expect(T.SEMI)
        step = None if self.check(T.RPAREN) else self._parse_expr()
        self.expect(T.RPAREN)
        return For(init, cond, step, self._parse_stmt(), token.line)

    # -- expressions --------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> Expr:
        left = self._parse_binary(0)
        token = self.peek()
        if token.type is T.ASSIGN:
            self.advance()
            return Assign(left, self._parse_assignment(), "", token.line)
        if token.type is T.PLUS_ASSIGN:
            self.advance()
            return Assign(left, self._parse_assignment(), "+", token.line)
        if token.type is T.MINUS_ASSIGN:
            self.advance()
            return Assign(left, self._parse_assignment(), "-", token.line)
        return left

    def _parse_binary(self, min_prec: int) -> Expr:
        left = self._parse_unary()
        while True:
            token = self.peek()
            prec = _BIN_PREC.get(token.type)
            if prec is None or prec < min_prec:
                return left
            self.advance()
            right = self._parse_binary(prec + 1)
            left = Binary(_BIN_NAMES[token.type], left, right, token.line)

    def _parse_unary(self) -> Expr:
        token = self.peek()
        if token.type is T.MINUS:
            self.advance()
            return Unary("-", self._parse_unary(), token.line)
        if token.type is T.NOT:
            self.advance()
            return Unary("!", self._parse_unary(), token.line)
        if token.type is T.STAR:
            self.advance()
            return Unary("*", self._parse_unary(), token.line)
        if token.type is T.AMP:
            self.advance()
            return Unary("&", self._parse_unary(), token.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            token = self.peek()
            if token.type is T.LBRACKET:
                self.advance()
                index = self._parse_expr()
                self.expect(T.RBRACKET)
                expr = Index(expr, index, token.line)
            elif token.type is T.PLUS_PLUS:
                self.advance()
                expr = Assign(expr, IntLit(1, token.line), "+", token.line)
            elif token.type is T.MINUS_MINUS:
                self.advance()
                expr = Assign(expr, IntLit(1, token.line), "-", token.line)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        token = self.advance()
        if token.type is T.INT_LIT or token.type is T.CHAR_LIT:
            return IntLit(int(token.value), token.line)
        if token.type is T.FLOAT_LIT:
            return FloatLit(float(token.value), token.line)
        if token.type is T.LPAREN:
            expr = self._parse_expr()
            self.expect(T.RPAREN)
            return expr
        if token.type is T.IDENT:
            if self.check(T.LPAREN):
                self.advance()
                args: List[Expr] = []
                if not self.check(T.RPAREN):
                    while True:
                        args.append(self._parse_expr())
                        if not self.accept(T.COMMA):
                            break
                self.expect(T.RPAREN)
                return Call(token.value, args, token.line)
            return Ident(token.value, token.line)
        raise CompileError(
            f"unexpected token {token.type.name} in expression",
            token.line, token.column,
        )


def parse(source: str) -> ProgramAst:
    """Parse mini-C source text into an (untyped) AST."""
    return Parser(tokenize(source)).parse_program()

"""Hand-written lexer for the mini-C language."""

from __future__ import annotations

from typing import List

from repro.errors import CompileError
from repro.lang.tokens import KEYWORDS, Token, TokenType

_SIMPLE = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ";": TokenType.SEMI,
    "^": TokenType.CARET,
}

_TWO_CHAR = {
    "==": TokenType.EQ,
    "!=": TokenType.NE,
    "<=": TokenType.LE,
    ">=": TokenType.GE,
    "&&": TokenType.AND_AND,
    "||": TokenType.OR_OR,
    "<<": TokenType.SHL,
    ">>": TokenType.SHR,
    "+=": TokenType.PLUS_ASSIGN,
    "-=": TokenType.MINUS_ASSIGN,
    "++": TokenType.PLUS_PLUS,
    "--": TokenType.MINUS_MINUS,
}

_ONE_CHAR = {
    "=": TokenType.ASSIGN,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "&": TokenType.AMP,
    "|": TokenType.PIPE,
    "!": TokenType.NOT,
    "<": TokenType.LT,
    ">": TokenType.GT,
}


def tokenize(source: str) -> List[Token]:
    """Turn mini-C source text into a token list ending with EOF."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)

    def error(message: str) -> CompileError:
        return CompileError(message, line, column)

    while i < n:
        ch = source[i]
        # whitespace
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        # comments
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            i += 2
            column += 2
            while i + 1 < n and not (source[i] == "*" and source[i + 1] == "/"):
                if source[i] == "\n":
                    line += 1
                    column = 1
                else:
                    column += 1
                i += 1
            if i + 1 >= n:
                raise error("unterminated block comment")
            i += 2
            column += 2
            continue
        start_col = column
        # numbers
        if ch.isdigit():
            j = i
            is_float = False
            while j < n and (source[j].isdigit() or source[j] == "."):
                if source[j] == ".":
                    if is_float:
                        raise error("malformed number")
                    is_float = True
                j += 1
            text = source[i:j]
            if is_float:
                tokens.append(Token(TokenType.FLOAT_LIT, float(text),
                                    line, start_col))
            else:
                tokens.append(Token(TokenType.INT_LIT, int(text),
                                    line, start_col))
            column += j - i
            i = j
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = KEYWORDS.get(text, TokenType.IDENT)
            value = text if kind is TokenType.IDENT else None
            tokens.append(Token(kind, value, line, start_col))
            column += j - i
            i = j
            continue
        # character literal
        if ch == "'":
            if i + 2 < n and source[i + 2] == "'":
                tokens.append(Token(TokenType.CHAR_LIT, ord(source[i + 1]),
                                    line, start_col))
                i += 3
                column += 3
                continue
            if (i + 3 < n and source[i + 1] == "\\"
                    and source[i + 3] == "'"):
                escapes = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39}
                code = escapes.get(source[i + 2])
                if code is None:
                    raise error(f"unknown escape \\{source[i + 2]}")
                tokens.append(Token(TokenType.CHAR_LIT, code, line, start_col))
                i += 4
                column += 4
                continue
            raise error("malformed character literal")
        # multi-char operators
        pair = source[i : i + 2]
        if pair in _TWO_CHAR:
            tokens.append(Token(_TWO_CHAR[pair], None, line, start_col))
            i += 2
            column += 2
            continue
        if ch in _SIMPLE:
            tokens.append(Token(_SIMPLE[ch], None, line, start_col))
            i += 1
            column += 1
            continue
        if ch in _ONE_CHAR:
            tokens.append(Token(_ONE_CHAR[ch], None, line, start_col))
            i += 1
            column += 1
            continue
        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenType.EOF, None, line, column))
    return tokens

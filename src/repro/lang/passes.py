"""Global optimization passes over SSA form.

Each pass takes a :class:`repro.lang.ssa.SsaFunction`, mutates it in
place, and returns a change count so the pipeline driver can iterate to
a fixpoint.  Shared ground rules (see also the SSA invariants in
:mod:`repro.lang.ssa`):

* precolored registers are ABI plumbing: no pass tracks, renames, moves,
  or merges an instruction that reads or writes one (the single
  exception: a ``mov`` *into* a precolored register may have its source
  rewritten or be folded to ``li`` — the destination never changes);
* ``div``/``rem`` can trap (divide by zero), so they are never folded
  with a zero divisor and never hoisted speculatively; removing a *dead*
  one follows the local optimizer's precedent that ``bin`` is pure;
* memory is touched only through the frame-slot machinery: a slot whose
  address is never taken (no ``la_frame``) cannot be reached by calls or
  pointer accesses, which is what makes store forwarding and dead-store
  elimination sound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import CompileError
from repro.lang.ir import IrInstr, VReg
from repro.lang.optimizer import _FOLDABLE_INT, _div_ok
from repro.lang.ssa import Phi, SsaBlock, SsaFunction
from repro.utils import to_signed32

#: ``bin`` ops codegen can take in register+immediate form (must mirror
#: ``_BINI_OPS`` in repro.lang.codegen).
_BINI_SAFE = ("add", "and", "or", "xor", "shl", "shr", "sra", "slt")

#: Commutative integer ops (operand order can be canonicalized/swapped).
_COMMUTATIVE = ("add", "mul", "and", "or", "xor", "seq", "sne")

#: Kinds with no side effects (safe to CSE / remove when dead).
_SSA_PURE = ("li", "lfi", "mov", "bin", "bini", "cvt",
             "la_frame", "la_global")

#: ``bin`` ops that may trap at runtime: never execute speculatively.
_TRAPPING = ("div", "rem", "fdiv")

_BOTTOM = object()  # constant lattice: absent=TOP, int=constant, _BOTTOM


def _virtual(reg) -> bool:
    return isinstance(reg, VReg) and not reg.precolored


def _rewrite_uses(ssa: SsaFunction, resolve) -> int:
    """Replace every virtual-register use by ``resolve(use)``."""
    changed = 0
    for block in ssa.live_blocks():
        for phi in block.phis:
            for pred, arg in list(phi.args.items()):
                rep = resolve(arg)
                if rep is not arg and _virtual(rep):
                    phi.args[pred] = rep
                    changed += 1
        for instr in block.instrs:
            for field in ("a", "b", "base"):
                reg = getattr(instr, field)
                if _virtual(reg):
                    rep = resolve(reg)
                    if rep is not reg and _virtual(rep):
                        setattr(instr, field, rep)
                        changed += 1
    return changed


def _frame_key(instr: IrInstr, untracked: Set[int]) -> Optional[Tuple]:
    """Trackable (slot, offset) key of a frame load/store, else None.

    Only slots in no way aliasable participate — unescaped, and accessed
    exclusively at word-aligned constant offsets inside the slot (see
    :func:`_untracked_slots`); those are exactly the accesses nothing
    else (calls, pointer loads/stores, the VM) can touch.
    """
    base = instr.base
    if not (isinstance(base, tuple) and base[0] == "frame"):
        return None
    slot = base[1]
    if id(slot) in untracked:
        return None
    imm = instr.imm
    if not isinstance(imm, int) or imm % 4 != 0 or imm < 0 \
            or imm + 4 > 4 * slot.words:
        return None
    return (id(slot), imm)


def _untracked_slots(ssa: SsaFunction) -> Set[int]:
    """Slots the memory passes must leave alone.

    Escaped slots (address taken via ``la_frame``) can be read or
    written through pointers and calls.  Slots with any irregular
    structural access (non-constant, unaligned, or out-of-bounds offset
    — lowering emits none, but hand-built IR might) are excluded
    entirely so a partial-word overlap can never slip past the
    per-word tracking.
    """
    bad: Set[int] = set()
    for block in ssa.live_blocks():
        for instr in block.instrs:
            base = instr.base
            if not (isinstance(base, tuple) and base[0] == "frame"):
                continue
            if instr.kind == "la_frame":
                bad.add(id(base[1]))
            elif instr.kind in ("load", "store"):
                slot = base[1]
                imm = instr.imm
                if not isinstance(imm, int) or imm % 4 != 0 or imm < 0 \
                        or imm + 4 > 4 * slot.words:
                    bad.add(id(slot))
    return bad


# -- sparse constant propagation + branch folding ----------------------------


def propagate_constants(ssa: SsaFunction) -> int:
    """Optimistic sparse constant propagation over SSA def-use edges.

    Constant defs become ``li``; ``bin`` with one constant operand is
    strength-reduced to ``bini`` where codegen has an immediate form;
    branches on constants fold to ``jmp`` (or disappear) and newly
    unreachable blocks are pruned.
    """
    values: Dict[VReg, object] = {}  # absent = TOP
    def_of: Dict[VReg, Tuple[str, object]] = {}
    users: Dict[VReg, List[Tuple[str, object]]] = {}

    def note_use(reg, entry) -> None:
        if _virtual(reg):
            users.setdefault(reg, []).append(entry)

    for block in ssa.live_blocks():
        for phi in block.phis:
            entry = ("p", phi)
            def_of[phi.dst] = entry
            for arg in phi.args.values():
                note_use(arg, entry)
        for instr in block.instrs:
            entry = ("i", instr)
            if _virtual(instr.dst):
                def_of[instr.dst] = entry
            for reg in instr.uses():
                note_use(reg, entry)

    def val(reg):
        if not _virtual(reg):
            return _BOTTOM
        return values.get(reg)

    def evaluate(entry):
        tag, obj = entry
        if tag == "p":
            out = None  # TOP
            for arg in obj.args.values():
                v = val(arg)
                if v is None:
                    continue
                if v is _BOTTOM or (out is not None and v != out):
                    return _BOTTOM
                out = v
            return out
        instr = obj
        kind = instr.kind
        if kind == "li":
            return to_signed32(instr.imm)
        if kind == "mov" and not instr.is_float:
            return val(instr.a)
        if kind == "bin" and instr.op in _FOLDABLE_INT:
            a, b = val(instr.a), val(instr.b)
            if a is _BOTTOM or b is _BOTTOM:
                return _BOTTOM
            if a is None or b is None:
                return None
            if not _div_ok(a, b, instr.op):
                return _BOTTOM
            return to_signed32(_FOLDABLE_INT[instr.op](a, b))
        if kind == "bini" and instr.op in _FOLDABLE_INT:
            a = val(instr.a)
            if a is _BOTTOM or a is None:
                return a
            if not _div_ok(a, instr.imm, instr.op):
                return _BOTTOM
            return to_signed32(_FOLDABLE_INT[instr.op](a, instr.imm))
        return _BOTTOM

    work = list(def_of.keys())
    while work:
        reg = work.pop()
        new = evaluate(def_of[reg])
        if new is None or new == values.get(reg):
            continue
        # monotone: TOP -> constant -> BOTTOM only
        values[reg] = new
        for entry in users.get(reg, ()):
            tag, obj = entry
            dst = obj.dst if tag == "p" else obj.dst
            if _virtual(dst):
                work.append(dst)

    changed = 0

    # Constant phis become li at the top of their block.
    for block in ssa.live_blocks():
        keep: List[Phi] = []
        consts: List[IrInstr] = []
        for phi in block.phis:
            v = values.get(phi.dst)
            if isinstance(v, int) and not phi.dst.is_float:
                consts.append(IrInstr("li", dst=phi.dst, imm=v))
                changed += 1
            else:
                keep.append(phi)
        if consts:
            block.phis = keep
            block.instrs[:0] = consts

    # Constant defs become li; one-constant bins become bini.
    for block in ssa.live_blocks():
        for instr in block.instrs:
            kind = instr.kind
            if kind in ("bin", "bini", "mov") and not instr.is_float \
                    and instr.dst is not None:
                v = values.get(instr.dst) if _virtual(instr.dst) else None
                if v is None and kind == "mov" and instr.dst.precolored:
                    v = values.get(instr.a) if _virtual(instr.a) else None
                if isinstance(v, int):
                    instr.kind = "li"
                    instr.imm = v
                    instr.op = ""
                    instr.a = None
                    instr.b = None
                    changed += 1
                    continue
            if kind == "bin" and instr.op in _FOLDABLE_INT:
                a = values.get(instr.a) if _virtual(instr.a) else None
                b = values.get(instr.b) if _virtual(instr.b) else None
                a = a if isinstance(a, int) else None
                b = b if isinstance(b, int) else None
                if b is not None and -32768 <= b <= 32767 \
                        and instr.op in _BINI_SAFE:
                    instr.kind = "bini"
                    instr.imm = b
                    instr.b = None
                    changed += 1
                elif b is not None and instr.op == "sub" \
                        and -32768 <= -b <= 32767:
                    instr.kind = "bini"
                    instr.op = "add"
                    instr.imm = -b
                    instr.b = None
                    changed += 1
                elif a is not None and -32768 <= a <= 32767 \
                        and instr.op in _COMMUTATIVE \
                        and instr.op in _BINI_SAFE:
                    instr.kind = "bini"
                    instr.imm = a
                    instr.a = instr.b
                    instr.b = None
                    changed += 1

    changed += _fold_branches(ssa, values)
    return changed


def _fold_branches(ssa: SsaFunction, values: Dict[VReg, object]) -> int:
    changed = 0
    for block in ssa.live_blocks():
        if not block.instrs:
            continue
        last = block.instrs[-1]
        if last.kind != "br" or not _virtual(last.a):
            continue
        v = values.get(last.a)
        if not isinstance(v, int):
            continue
        taken_block = ssa.block_by_label(last.sym).index
        fall = [s for s in block.succ if s != taken_block]
        taken = (v == 0) if last.invert else (v != 0)
        if taken:
            last.kind = "jmp"
            last.a = None
            last.invert = False
            for succ in fall:
                ssa.remove_edge(block.index, succ)
        else:
            block.instrs.pop()
            if fall:  # degenerate br (both arms equal) keeps its edge
                ssa.remove_edge(block.index, taken_block)
        changed += 1
    if changed:
        ssa.prune_unreachable()
        ssa.recompute_dominators()
    return changed


# -- copy propagation (incl. single-source phis) -----------------------------


def copy_propagate(ssa: SsaFunction) -> int:
    """Rewrite uses of SSA copies to their source.

    Covers ``mov`` between virtual registers and phis whose arguments
    (ignoring self-references) are all the same name — both are pure
    renames in SSA.  The movs themselves die in DCE; redundant phis are
    removed here.
    """
    mapping: Dict[VReg, VReg] = {}
    for block in ssa.live_blocks():
        for phi in block.phis:
            sources = {arg for arg in phi.args.values()
                       if arg is not phi.dst}
            if len(sources) == 1:
                src = sources.pop()
                if _virtual(src):
                    mapping[phi.dst] = src
        for instr in block.instrs:
            if instr.kind == "mov" and _virtual(instr.dst) \
                    and _virtual(instr.a):
                mapping[instr.dst] = instr.a
    if not mapping:
        return 0

    def resolve(reg):
        seen: Set[int] = set()
        while reg in mapping and id(reg) not in seen:
            seen.add(id(reg))
            reg = mapping[reg]
        return reg

    changed = _rewrite_uses(ssa, resolve)
    for block in ssa.live_blocks():
        keep = [phi for phi in block.phis if phi.dst not in mapping]
        changed += len(block.phis) - len(keep)
        block.phis = keep
    return changed


# -- global value numbering --------------------------------------------------


def value_number(ssa: SsaFunction) -> int:
    """Dominator-scoped value numbering with commutative canonicalization.

    A pure instruction whose value key was already computed somewhere on
    the dominator path becomes a ``mov`` from the earlier name; identical
    phis in the same block merge the same way.  Uses are rewritten to
    representatives afterwards (sound globally: a representative's
    definition always dominates the definitions it replaces).
    """
    ssa.recompute_dominators()
    children = ssa.dom_children()
    vn: Dict[VReg, VReg] = {}

    def rep(reg):
        if not _virtual(reg):
            return reg
        chain = []
        while reg in vn and vn[reg] is not reg:
            chain.append(reg)
            reg = vn[reg]
        for link in chain:
            vn[link] = reg
        return reg

    def key_of(instr: IrInstr) -> Optional[Tuple]:
        kind = instr.kind
        if kind == "li":
            return ("li", to_signed32(instr.imm))
        if kind == "lfi":
            return ("lfi", repr(float(instr.imm)))
        if kind == "la_global":
            return ("lag", instr.sym, instr.imm)
        if kind == "la_frame":
            if isinstance(instr.base, tuple):
                return ("laf", id(instr.base[1]), instr.imm)
            return None
        if kind == "cvt":
            a = rep(instr.a)
            if not _virtual(a):
                return None
            return ("cvt", instr.op, id(a))
        if kind == "bini":
            a = rep(instr.a)
            if not _virtual(a):
                return None
            return ("bini", instr.op, id(a), instr.imm)
        if kind == "bin":
            a, b = rep(instr.a), rep(instr.b)
            if not (_virtual(a) and _virtual(b)):
                return None
            ids = (id(a), id(b))
            if instr.op in _COMMUTATIVE:
                ids = tuple(sorted(ids))
            return ("bin", instr.op, ids)
        return None

    scopes: List[Dict[Tuple, VReg]] = []

    def lookup(key):
        for scope in reversed(scopes):
            hit = scope.get(key)
            if hit is not None:
                return hit
        return None

    changed = 0
    walk: List[Tuple[int, bool]] = [(0, False)]
    while walk:
        index, leaving = walk.pop()
        if leaving:
            scopes.pop()
            continue
        walk.append((index, True))
        scopes.append({})
        block = ssa.blocks[index]
        for phi in block.phis:
            args = {p: rep(a) for p, a in phi.args.items()}
            sources = {id(a) for a in args.values() if a is not phi.dst}
            if len(sources) == 1:
                continue  # copy_propagate's case; avoid double handling
            key = ("phi", index,
                   tuple(sorted((p, id(a)) for p, a in args.items())))
            hit = lookup(key)
            if hit is not None:
                vn[phi.dst] = hit
                changed += 1
            else:
                scopes[-1][key] = phi.dst
        for instr in block.instrs:
            if instr.kind == "mov":
                if _virtual(instr.dst) and _virtual(instr.a):
                    vn[instr.dst] = rep(instr.a)
                continue
            if instr.kind not in _SSA_PURE or not _virtual(instr.dst):
                continue
            key = key_of(instr)
            if key is None:
                continue
            hit = lookup(key)
            if hit is not None:
                instr.kind = "mov"
                instr.a = hit
                instr.b = None
                instr.op = ""
                instr.imm = 0
                instr.sym = ""
                instr.base = None
                vn[instr.dst] = rep(hit)
                changed += 1
            else:
                scopes[-1][key] = instr.dst
        for child in children[index]:
            walk.append((child, False))

    changed += _rewrite_uses(ssa, rep)
    # Phis that merged keep their (now redundant) bodies until DCE; the
    # mapped dst has no remaining uses after the rewrite above.
    return changed


# -- dead code elimination ---------------------------------------------------


def _safe_dead_load(instr: IrInstr) -> bool:
    """True when a dead *load* may be removed (cannot trap).

    Frame accesses at constant in-bounds offsets always hit valid stack
    memory; anything else (pointer loads, incoming-area reads) is kept,
    matching the local optimizer's conservatism.
    """
    base = instr.base
    return (isinstance(base, tuple) and base[0] == "frame"
            and isinstance(instr.imm, int) and instr.imm >= 0
            and instr.imm + 4 <= 4 * base[1].words)


def eliminate_dead(ssa: SsaFunction) -> int:
    """Mark-and-sweep DCE over instructions *and* phis."""
    def_of: Dict[VReg, Tuple[str, object]] = {}
    for block in ssa.live_blocks():
        for phi in block.phis:
            def_of[phi.dst] = ("p", phi)
        for instr in block.instrs:
            if _virtual(instr.dst):
                def_of[instr.dst] = ("i", instr)

    live: Set[int] = set()
    work: List[Tuple[str, object]] = []

    def mark(reg) -> None:
        if not _virtual(reg):
            return
        entry = def_of.get(reg)
        if entry is not None and id(entry[1]) not in live:
            live.add(id(entry[1]))
            work.append(entry)

    for block in ssa.live_blocks():
        for instr in block.instrs:
            kind = instr.kind
            root = (kind not in _SSA_PURE
                    and not (kind == "load" and _safe_dead_load(instr)))
            if not root and instr.dst is not None \
                    and instr.dst.precolored:
                root = True
            if root:
                live.add(id(instr))
                for reg in instr.uses():
                    mark(reg)

    while work:
        tag, obj = work.pop()
        if tag == "p":
            for arg in obj.args.values():
                mark(arg)
        else:
            for reg in obj.uses():
                mark(reg)

    removed = 0
    for block in ssa.live_blocks():
        keep_phis = [p for p in block.phis if id(p) in live]
        removed += len(block.phis) - len(keep_phis)
        block.phis = keep_phis
        keep: List[IrInstr] = []
        for instr in block.instrs:
            if id(instr) in live:
                keep.append(instr)
            else:
                removed += 1
        block.instrs = keep
    return removed


# -- store-to-load forwarding + dead store elimination -----------------------


def forward_stores(ssa: SsaFunction) -> int:
    """Block-local store-to-load and load-load forwarding on frame slots.

    Only unescaped slots participate (see module docstring), so calls
    and pointer stores cannot invalidate a tracked fact; a fact only
    dies when the same word is overwritten.
    """
    untracked = _untracked_slots(ssa)
    changed = 0
    for block in ssa.live_blocks():
        avail: Dict[Tuple, VReg] = {}
        for instr in block.instrs:
            kind = instr.kind
            if kind not in ("load", "store"):
                continue
            key = _frame_key(instr, untracked)
            if key is None:
                continue
            typed = key + (instr.is_float,)
            if kind == "store":
                # Defensive: a store invalidates the other-typed view of
                # the same word too (lowering never type-puns a slot,
                # but stale facts must be impossible, not just unlikely).
                avail.pop(key + (not instr.is_float,), None)
                if _virtual(instr.a):
                    avail[typed] = instr.a
                else:
                    avail.pop(typed, None)
            else:
                known = avail.get(typed)
                if known is not None and _virtual(instr.dst):
                    instr.kind = "mov"
                    instr.a = known
                    instr.base = None
                    instr.imm = 0
                    instr.locality = False
                    changed += 1
                elif _virtual(instr.dst):
                    avail[typed] = instr.dst
    return changed


def eliminate_dead_stores(ssa: SsaFunction) -> int:
    """Remove stores to unescaped frame words never loaded afterwards.

    Backward may-read dataflow at (slot, offset) granularity; the frame
    dies at function exit, so nothing is live out of exit blocks.
    """
    untracked = _untracked_slots(ssa)
    live_in: Dict[int, Set[Tuple]] = {b.index: set()
                                      for b in ssa.live_blocks()}

    def transfer(block: SsaBlock, live: Set[Tuple],
                 remove: bool) -> Tuple[Set[Tuple], int]:
        removed = 0
        keep: List[IrInstr] = []
        for instr in reversed(block.instrs):
            key = None
            if instr.kind in ("load", "store"):
                key = _frame_key(instr, untracked)
            if key is not None and instr.kind == "load":
                live.add(key)
            elif key is not None and instr.kind == "store":
                if key not in live:
                    if remove:
                        removed += 1
                        continue
                else:
                    live.discard(key)
            keep.append(instr)
        if remove:
            keep.reverse()
            block.instrs = keep
        return live, removed

    changed = True
    while changed:
        changed = False
        for block in ssa.live_blocks():
            out: Set[Tuple] = set()
            for succ in block.succ:
                out |= live_in[succ]
            new_in, _ = transfer(block, out, remove=False)
            if new_in != live_in[block.index]:
                live_in[block.index] = new_in
                changed = True

    removed = 0
    for block in ssa.live_blocks():
        out: Set[Tuple] = set()
        for succ in block.succ:
            out |= live_in[succ]
        _, r = transfer(block, out, remove=True)
        removed += r
    return removed


# -- loop-invariant code motion ----------------------------------------------


def _hoistable(instr: IrInstr) -> bool:
    if instr.kind not in _SSA_PURE or not _virtual(instr.dst):
        return False
    if instr.kind == "bin" and instr.op in _TRAPPING:
        return False  # a trap must not be executed speculatively
    for reg in instr.uses():
        if isinstance(reg, VReg) and reg.precolored:
            return False
    return True


def hoist_invariants(ssa: SsaFunction) -> int:
    """Loop-invariant code motion into freshly created preheaders.

    Natural loops come from back edges over the dominator tree; a loop
    is only processed when its header has exactly one outside
    predecessor (always true for lowered structured code), so the
    preheader splice never needs its own phis.  Hoisted instructions are
    pure and non-trapping, making execution on loop-skipping paths safe.
    """
    ssa.recompute_dominators()
    loops: Dict[int, Set[int]] = {}
    for block in ssa.live_blocks():
        for succ in block.succ:
            if not ssa.dominates(succ, block.index):
                continue
            body = loops.setdefault(succ, {succ})
            stack = [block.index]
            while stack:
                node = stack.pop()
                if node in body:
                    continue
                body.add(node)
                stack.extend(ssa.blocks[node].pred)
    if not loops:
        return 0

    def_block: Dict[VReg, int] = {}
    for block in ssa.live_blocks():
        for phi in block.phis:
            def_block[phi.dst] = block.index
        for instr in block.instrs:
            if _virtual(instr.dst):
                def_block[instr.dst] = block.index

    hoisted = 0
    # Inner loops first: their invariants can then bubble outward when
    # the pipeline runs another round.
    for header in sorted(loops, key=lambda h: len(loops[h])):
        body = loops[header]
        hblock = ssa.blocks[header]
        outside = [p for p in hblock.pred if p not in body]
        if len(outside) != 1 or header == 0:
            continue
        pre: Optional[SsaBlock] = None
        moving = True
        while moving:
            moving = False
            for bi in sorted(body):
                block = ssa.blocks[bi]
                remaining: List[IrInstr] = []
                for instr in block.instrs:
                    if not _hoistable(instr) or any(
                            def_block.get(reg, -1) in body
                            for reg in instr.uses() if _virtual(reg)):
                        remaining.append(instr)
                        continue
                    if pre is None:
                        pre = _make_preheader(ssa, header, outside[0])
                        # The preheader sits on the old outside->header
                        # edge: any *enclosing* loop that contained both
                        # endpoints now contains the preheader too.  The
                        # body sets must see that, or an outer-loop pass
                        # would treat values parked in this preheader as
                        # loop-invariant and hoist their users above
                        # them.
                        for other in loops.values():
                            if header in other and outside[0] in other:
                                other.add(pre.index)
                    pre.instrs.append(instr)
                    def_block[instr.dst] = pre.index
                    hoisted += 1
                    moving = True
                block.instrs = remaining
    if hoisted:
        ssa.recompute_dominators()
    return hoisted


def _make_preheader(ssa: SsaFunction, header: int, outside: int) -> SsaBlock:
    pre = SsaBlock(len(ssa.blocks), ssa.new_label(), [])
    ssa.blocks.append(pre)
    ssa.idom.append(None)
    hblock = ssa.blocks[header]
    pblock = ssa.blocks[outside]

    pblock.succ[pblock.succ.index(header)] = pre.index
    pre.pred = [outside]
    hblock.pred[hblock.pred.index(outside)] = pre.index
    pre.succ = [header]
    if pblock.instrs:
        last = pblock.instrs[-1]
        if last.kind in ("jmp", "br") and last.sym == hblock.label:
            last.sym = pre.label
    for phi in hblock.phis:
        if outside in phi.args:
            phi.args[pre.index] = phi.args.pop(outside)
    ssa.layout.insert(ssa.layout.index(header), pre.index)
    return pre

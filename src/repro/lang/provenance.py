"""Flow-sensitive pointer provenance: the authority on ``locality``.

Lowering annotates memory accesses with a compile-time locality bit while
walking the AST, tracking pointer provenance in a linear map.  That map
is unsound at control-flow joins: after ``p = g; if (c) p = x;`` the
last-lowered branch wins and ``*p`` can be tagged local even though it
may point at a global.  The LVAQ steering hardware trusts these bits, so
a wrong ``True`` is a miscompile.

This pass re-derives the annotation with a proper forward dataflow over
the lowered IR (meet at joins), then rewrites ``locality`` on every
load/store whose base is a virtual register:

* provably frame-derived (``la_frame``)  -> ``True``
* provably global/heap (``la_global``, ``sbrk``) -> ``False``
* anything merged, loaded, or call-returned -> ``None`` (ambiguous)

Bases that are structurally known (``frame``/``incoming``/``outgoing``/
``global`` tuples) keep the annotation lowering gave them.  The pass runs
on every compile, after optimisation and before register allocation.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analyze.dataflow import DataflowProblem, solve
from repro.analyze.ircfg import ir_cfg
from repro.lang.ir import IrFunction, IrInstr, VReg

P_LOCAL = "L"    # provably a stack (frame) address
P_GLOBAL = "G"   # provably a data/heap address
P_NUM = "N"      # provably not an address
P_UNKNOWN = "U"  # anything else

Key = Tuple[str, int]
State = Dict[Key, str]

#: bini operators that preserve the provenance of their register operand.
_ADDITIVE_IMM = ("add",)
#: bin operators that combine the provenances of both operands.
_ADDITIVE = ("add", "sub")


def _key(vreg: VReg) -> Key:
    # Precolored VRegs all share id 0; the physical register is their
    # identity.
    if vreg.phys is not None:
        return ("p", vreg.phys)
    return ("v", vreg.id)


def _combine(a: str, b: str) -> str:
    """Provenance of ``a +/- b``: offsetting keeps the pointer's region."""
    if a == P_NUM:
        return b
    if b == P_NUM:
        return a
    return P_UNKNOWN


class _ProvenanceProblem(DataflowProblem):
    """Forward provenance dataflow over one function's linear IR."""

    direction = "forward"

    def boundary_state(self) -> State:
        return {}

    def initial_state(self) -> Optional[State]:
        return None  # block not yet reached

    def meet(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        out: State = {}
        for key in a.keys() | b.keys():
            va, vb = a.get(key), b.get(key)
            if va is None:
                out[key] = vb
            elif vb is None:
                out[key] = va
            elif va == vb:
                out[key] = va
            else:
                out[key] = P_UNKNOWN
        return out

    def read(self, state: State, vreg: Optional[VReg]) -> str:
        if vreg is None:
            return P_UNKNOWN
        return state.get(_key(vreg), P_UNKNOWN)

    def transfer(self, index: int, instr: IrInstr, state):
        if state is None:
            return None
        kind = instr.kind
        if kind == "call":
            # Calls clobber every precolored (ABI) register.
            out = {k: v for k, v in state.items() if k[0] != "p"}
            if instr.dst is not None:
                out[_key(instr.dst)] = (
                    P_GLOBAL if instr.sym == "@sbrk" else P_UNKNOWN)
            return out
        if instr.dst is None:
            return state
        value = self._value_of(instr, state)
        out = dict(state)
        out[_key(instr.dst)] = value
        return out

    def _value_of(self, instr: IrInstr, state: State) -> str:
        kind = instr.kind
        if kind in ("li", "lfi", "cvt"):
            return P_NUM
        if kind == "mov":
            return self.read(state, instr.a)
        if kind == "bin":
            if instr.op in _ADDITIVE:
                return _combine(self.read(state, instr.a),
                                self.read(state, instr.b))
            return P_NUM
        if kind == "bini":
            if instr.op in _ADDITIVE_IMM:
                return self.read(state, instr.a)
            return P_NUM
        if kind == "load":
            return P_UNKNOWN
        if kind == "la_frame":
            return P_LOCAL
        if kind == "la_global":
            return P_GLOBAL
        return P_UNKNOWN


_LOCALITY = {P_LOCAL: True, P_GLOBAL: False}


def annotate_localities(ir: IrFunction) -> Tuple[int, int]:
    """Recompute ``locality`` for VReg-based accesses of one function.

    Returns ``(accesses_annotated, annotations_changed)`` — the second
    count is nonzero exactly when lowering's linear approximation got a
    join wrong (or was needlessly conservative).
    """
    cfg = ir_cfg(ir.body)
    problem = _ProvenanceProblem()
    solution = solve(cfg, problem)
    annotated = changed = 0
    for block in cfg.blocks:
        for _, instr, state in solution.instruction_states(block.index):
            if instr.kind not in ("load", "store"):
                continue
            if not isinstance(instr.base, VReg):
                continue  # structural bases: lowering's annotation stands
            region = (P_UNKNOWN if state is None
                      else problem.read(state, instr.base))
            locality = _LOCALITY.get(region)
            annotated += 1
            if instr.locality != locality:
                changed += 1
                instr.locality = locality
    return annotated, changed

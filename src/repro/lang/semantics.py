"""Semantic analysis: symbol resolution and type checking.

Annotates the AST in place: every :class:`Expr` gets a ``ty``, every
:class:`Ident`/:class:`VarDecl` gets a bound symbol.  Locals whose address
is taken (or which are arrays) are flagged ``needs_memory`` so lowering
gives them a stack-frame slot; everything else lives in virtual registers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CompileError
from repro.lang.ast_nodes import (
    Assign, Binary, Block, Break, Call, Continue, Expr, ExprStmt, FloatLit,
    For, FuncDef, GlobalVar, Ident, If, Index, IntLit, ProgramAst, Return,
    Stmt, Ty, Unary, VarDecl, While,
)

INT = Ty("int")
FLOAT = Ty("float")
VOID = Ty("void")


class Symbol:
    """Base class for named entities."""

    __slots__ = ("name", "ty", "array_size")

    def __init__(self, name: str, ty: Ty, array_size: Optional[int] = None):
        self.name = name
        self.ty = ty
        self.array_size = array_size

    @property
    def is_array(self) -> bool:
        """True for array declarations."""
        return self.array_size is not None


class GlobalSymbol(Symbol):
    """A module-level variable (data segment)."""

    __slots__ = ()


class LocalSymbol(Symbol):
    """A function-local variable or parameter."""

    __slots__ = ("uid", "needs_memory", "is_param", "param_index")

    def __init__(self, name: str, ty: Ty, uid: int,
                 array_size: Optional[int] = None,
                 is_param: bool = False, param_index: int = -1):
        super().__init__(name, ty, array_size)
        self.uid = uid
        self.needs_memory = array_size is not None
        self.is_param = is_param
        self.param_index = param_index


class FuncSymbol(Symbol):
    """A function signature."""

    __slots__ = ("param_tys", "is_builtin")

    def __init__(self, name: str, ret_ty: Ty, param_tys: List[Ty],
                 is_builtin: bool = False):
        super().__init__(name, ret_ty)
        self.param_tys = param_tys
        self.is_builtin = is_builtin


BUILTINS = {
    "print": FuncSymbol("print", VOID, [INT], is_builtin=True),
    "printc": FuncSymbol("printc", VOID, [INT], is_builtin=True),
    "printfl": FuncSymbol("printfl", VOID, [FLOAT], is_builtin=True),
    "sbrk": FuncSymbol("sbrk", Ty("int", 1), [INT], is_builtin=True),
}


class _Scope:
    """One lexical scope of local symbols."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: Dict[str, Symbol] = {}

    def define(self, symbol: Symbol, line: int) -> None:
        if symbol.name in self.names:
            raise CompileError(f"redefinition of {symbol.name!r}", line)
        self.names[symbol.name] = symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[_Scope] = self
        while scope is not None:
            symbol = scope.names.get(name)
            if symbol is not None:
                return symbol
            scope = scope.parent
        return None


def _coercible(dst: Ty, src: Ty) -> bool:
    """Implicit conversion compatibility."""
    if dst == src:
        return True
    if dst.is_float and src == INT:
        return True
    if dst == INT and src.is_float:
        return True
    if dst.is_pointer and src == INT:
        return True  # permits p = 0 and pointer/index arithmetic results
    if dst == INT and src.is_pointer:
        return True  # pointer truthiness / comparisons
    return False


class SemanticAnalyzer:
    """Resolves and type-checks one program AST."""

    def __init__(self, program: ProgramAst):
        self.program = program
        self.globals: Dict[str, Symbol] = {}
        self.functions: Dict[str, FuncSymbol] = dict(BUILTINS)
        self._uid = 0
        self._loop_depth = 0
        self._current: Optional[FuncDef] = None

    # -- driver --------------------------------------------------------------

    def analyze(self) -> None:
        """Run the full analysis; raises CompileError on the first problem."""
        for gvar in self.program.globals:
            self._declare_global(gvar)
        for func in self.program.functions:
            if func.name in self.functions:
                raise CompileError(
                    f"redefinition of function {func.name!r}", func.line
                )
            self.functions[func.name] = FuncSymbol(
                func.name, func.ret_ty, [p.ty for p in func.params]
            )
        if "main" not in self.functions:
            raise CompileError("program has no main() function")
        for func in self.program.functions:
            self._check_function(func)

    def _declare_global(self, gvar: GlobalVar) -> None:
        if gvar.name in self.globals:
            raise CompileError(f"redefinition of {gvar.name!r}", gvar.line)
        if gvar.ty.is_void:
            raise CompileError("void variables are not allowed", gvar.line)
        self.globals[gvar.name] = GlobalSymbol(
            gvar.name, gvar.ty, gvar.array_size
        )

    # -- functions ------------------------------------------------------------

    def _check_function(self, func: FuncDef) -> None:
        self._current = func
        scope = _Scope()
        for index, param in enumerate(func.params):
            if param.ty.is_void:
                raise CompileError("void parameters are not allowed",
                                   func.line)
            symbol = LocalSymbol(param.name, param.ty, self._next_uid(),
                                 is_param=True, param_index=index)
            scope.define(symbol, func.line)
            param.symbol = symbol
        self._check_block(func.body, scope)
        self._current = None

    def _next_uid(self) -> int:
        self._uid += 1
        return self._uid

    # -- statements --------------------------------------------------------

    def _check_block(self, block: Block, parent: _Scope) -> None:
        scope = _Scope(parent)
        for stmt in block.stmts:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: Stmt, scope: _Scope) -> None:
        if isinstance(stmt, Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, VarDecl):
            self._check_vardecl(stmt, scope)
        elif isinstance(stmt, If):
            self._check_expr(stmt.cond, scope)
            self._check_stmt(stmt.then, scope)
            if stmt.els is not None:
                self._check_stmt(stmt.els, scope)
        elif isinstance(stmt, While):
            self._check_expr(stmt.cond, scope)
            self._loop_depth += 1
            self._check_stmt(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            self._loop_depth += 1
            self._check_stmt(stmt.body, inner)
            self._loop_depth -= 1
        elif isinstance(stmt, Return):
            assert self._current is not None
            ret_ty = self._current.ret_ty
            if stmt.value is None:
                if not ret_ty.is_void:
                    raise CompileError(
                        f"{self._current.name}: return needs a value",
                        stmt.line,
                    )
            else:
                value_ty = self._check_expr(stmt.value, scope)
                if ret_ty.is_void:
                    raise CompileError(
                        f"{self._current.name}: void function returns a value",
                        stmt.line,
                    )
                if not _coercible(ret_ty, value_ty):
                    raise CompileError(
                        f"cannot return {value_ty} as {ret_ty}", stmt.line
                    )
        elif isinstance(stmt, (Break, Continue)):
            if self._loop_depth == 0:
                raise CompileError("break/continue outside a loop", stmt.line)
        elif isinstance(stmt, ExprStmt):
            self._check_expr(stmt.expr, scope)
        else:
            raise CompileError(f"unknown statement {type(stmt).__name__}",
                               stmt.line)

    def _check_vardecl(self, decl: VarDecl, scope: _Scope) -> None:
        if decl.ty.is_void:
            raise CompileError("void variables are not allowed", decl.line)
        symbol = LocalSymbol(decl.name, decl.ty, self._next_uid(),
                             array_size=decl.array_size)
        scope.define(symbol, decl.line)
        decl.symbol = symbol
        if decl.init is not None:
            init_ty = self._check_expr(decl.init, scope)
            if not _coercible(decl.ty, init_ty):
                raise CompileError(
                    f"cannot initialise {decl.ty} with {init_ty}", decl.line
                )

    # -- expressions -----------------------------------------------------------

    def _check_expr(self, expr: Expr, scope: _Scope) -> Ty:
        ty = self._infer(expr, scope)
        expr.ty = ty
        return ty

    def _infer(self, expr: Expr, scope: _Scope) -> Ty:
        if isinstance(expr, IntLit):
            return INT
        if isinstance(expr, FloatLit):
            return FLOAT
        if isinstance(expr, Ident):
            symbol = scope.lookup(expr.name) or self.globals.get(expr.name)
            if symbol is None:
                raise CompileError(f"undefined variable {expr.name!r}",
                                   expr.line)
            expr.symbol = symbol
            if symbol.is_array:
                return symbol.ty.pointer_to()  # arrays decay to pointers
            return symbol.ty
        if isinstance(expr, Unary):
            return self._infer_unary(expr, scope)
        if isinstance(expr, Binary):
            return self._infer_binary(expr, scope)
        if isinstance(expr, Assign):
            return self._infer_assign(expr, scope)
        if isinstance(expr, Index):
            base_ty = self._check_expr(expr.base, scope)
            if not base_ty.is_pointer:
                raise CompileError("indexing a non-pointer", expr.line)
            index_ty = self._check_expr(expr.index, scope)
            if index_ty != INT:
                raise CompileError("array index must be an int", expr.line)
            return base_ty.deref()
        if isinstance(expr, Call):
            return self._infer_call(expr, scope)
        raise CompileError(f"unknown expression {type(expr).__name__}",
                           expr.line)

    def _infer_unary(self, expr: Unary, scope: _Scope) -> Ty:
        if expr.op == "&":
            target = expr.operand
            if isinstance(target, Ident):
                ty = self._check_expr(target, scope)
                symbol = target.symbol
                if isinstance(symbol, LocalSymbol):
                    symbol.needs_memory = True
                if symbol.is_array:
                    return ty  # &array == array (already decayed)
                return ty.pointer_to()
            if isinstance(target, Index):
                elem_ty = self._check_expr(target, scope)
                return elem_ty.pointer_to()
            raise CompileError("cannot take the address of this expression",
                               expr.line)
        operand_ty = self._check_expr(expr.operand, scope)
        if expr.op == "*":
            if not operand_ty.is_pointer:
                raise CompileError("dereferencing a non-pointer", expr.line)
            pointee = operand_ty.deref()
            if pointee.is_void:
                raise CompileError("dereferencing a void pointer", expr.line)
            return pointee
        if expr.op == "-":
            if not (operand_ty == INT or operand_ty.is_float):
                raise CompileError("unary - needs a numeric operand",
                                   expr.line)
            return operand_ty
        if expr.op == "!":
            return INT
        raise CompileError(f"unknown unary operator {expr.op!r}", expr.line)

    def _infer_binary(self, expr: Binary, scope: _Scope) -> Ty:
        left = self._check_expr(expr.left, scope)
        right = self._check_expr(expr.right, scope)
        op = expr.op
        if op in ("&&", "||"):
            return INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return INT
        if op in ("%", "&", "|", "^", "<<", ">>"):
            if left != INT or right != INT:
                raise CompileError(f"{op} needs int operands", expr.line)
            return INT
        # + - * / : numeric promotion, plus pointer arithmetic for + and -
        if left.is_pointer and op in ("+", "-") and right == INT:
            return left
        if right.is_pointer and op == "+" and left == INT:
            return right
        if left.is_pointer and right.is_pointer and op == "-":
            return INT
        if left.is_float or right.is_float:
            return FLOAT
        if left == INT and right == INT:
            return INT
        raise CompileError(
            f"invalid operands to {op}: {left} and {right}", expr.line
        )

    def _infer_assign(self, expr: Assign, scope: _Scope) -> Ty:
        target = expr.target
        if isinstance(target, Ident):
            target_ty = self._check_expr(target, scope)
            if target.symbol.is_array:
                raise CompileError("cannot assign to an array", expr.line)
        elif isinstance(target, Index) or (
            isinstance(target, Unary) and target.op == "*"
        ):
            target_ty = self._check_expr(target, scope)
        else:
            raise CompileError("invalid assignment target", expr.line)
        value_ty = self._check_expr(expr.value, scope)
        if expr.op and target_ty.is_pointer:
            if value_ty != INT:
                raise CompileError("pointer += needs an int", expr.line)
        elif not _coercible(target_ty, value_ty):
            raise CompileError(
                f"cannot assign {value_ty} to {target_ty}", expr.line
            )
        return target_ty

    def _infer_call(self, expr: Call, scope: _Scope) -> Ty:
        func = self.functions.get(expr.name)
        if func is None:
            raise CompileError(f"call to undefined function {expr.name!r}",
                               expr.line)
        if len(expr.args) != len(func.param_tys):
            raise CompileError(
                f"{expr.name} expects {len(func.param_tys)} arguments, "
                f"got {len(expr.args)}",
                expr.line,
            )
        for arg, param_ty in zip(expr.args, func.param_tys):
            arg_ty = self._check_expr(arg, scope)
            if not _coercible(param_ty, arg_ty):
                raise CompileError(
                    f"argument type {arg_ty} incompatible with {param_ty}",
                    expr.line,
                )
        return func.ty


def analyze(program: ProgramAst) -> SemanticAnalyzer:
    """Run semantic analysis over *program*, returning the analyzer."""
    analyzer = SemanticAnalyzer(program)
    analyzer.analyze()
    return analyzer

"""Code generation: allocated IR -> machine instructions.

Responsibilities:

* frame layout (outgoing-argument area, spill/local slots, callee-saved
  save area) and prologue/epilogue emission — the ``sw``/``lw`` traffic
  this generates is annotated ``local`` and is the heart of the paper's
  workload analysis;
* expansion of IR comparison pseudo-ops into real instruction sequences;
* the float literal pool (floats are loaded from the data segment);
* translating every memory access with its compile-time locality
  annotation (local / nonlocal / ambiguous).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.isa.frames import FrameInfo, SlotInfo
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, Syscall
from repro.isa.program import DataItem
from repro.isa.registers import FPR_BASE, Reg
from repro.lang.ir import FrameSlot, IrFunction, IrInstr, VReg
from repro.lang.regalloc import AllocationResult
from repro.utils import align_up

_SP = int(Reg.SP)
_RA = int(Reg.RA)
_AT = int(Reg.AT)
_ZERO = int(Reg.ZERO)
_A0 = int(Reg.A0)
_V0 = int(Reg.V0)

_BIN_OPS = {
    "add": Opcode.ADD, "sub": Opcode.SUB, "mul": Opcode.MUL,
    "div": Opcode.DIV, "rem": Opcode.REM, "and": Opcode.AND,
    "or": Opcode.OR, "xor": Opcode.XOR, "shl": Opcode.SLLV,
    "shr": Opcode.SRLV, "sra": Opcode.SRAV, "slt": Opcode.SLT,
    "fadd": Opcode.FADD, "fsub": Opcode.FSUB, "fmul": Opcode.FMUL,
    "fdiv": Opcode.FDIV, "fslt": Opcode.CLTS, "fsle": Opcode.CLES,
    "fseq": Opcode.CEQS,
}

_BINI_OPS = {"add": Opcode.ADDI, "shl": Opcode.SLL, "shr": Opcode.SRL,
             "sra": Opcode.SRA, "and": Opcode.ANDI, "or": Opcode.ORI,
             "xor": Opcode.XORI, "slt": Opcode.SLTI}

_INTRINSIC_SYSCALLS = {
    "@print": Syscall.PRINT_INT,
    "@printc": Syscall.PRINT_CHAR,
    "@printfl": Syscall.PRINT_FLOAT,
    "@sbrk": Syscall.SBRK,
}


class FloatPool:
    """Deduplicated pool of float literals placed in the data segment."""

    def __init__(self) -> None:
        self._values: Dict[float, str] = {}

    def label_for(self, value: float) -> str:
        """Data symbol holding *value* (allocating it on first use)."""
        label = self._values.get(value)
        if label is None:
            label = f"__flt{len(self._values)}"
            self._values[value] = label
        return label

    def data_items(self) -> List[DataItem]:
        """One single-word DataItem per pooled literal."""
        return [DataItem(label, [value])
                for value, label in self._values.items()]


class FunctionCodegen:
    """Emits machine code for one allocated IR function."""

    def __init__(self, func: IrFunction, allocation: AllocationResult,
                 pool: FloatPool):
        self.func = func
        self.allocation = allocation
        self.pool = pool
        self.out: List[Instruction] = []
        self.labels: Dict[str, int] = {}
        self.frame_size = 0
        self._save_offsets: Dict[int, int] = {}
        self._saves_ra = False

    # -- frame layout --------------------------------------------------------

    def _layout_frame(self) -> None:
        offset = 4 * max(0, self.func.max_outgoing_args - 4)
        for slot in self.func.slots:
            slot.offset = offset
            offset += 4 * slot.words
        self._saves_ra = self.func.has_calls
        saved = sorted(self.allocation.used_callee_saved())
        for reg in saved:
            self._save_offsets[reg] = offset
            offset += 4
        if self._saves_ra:
            self._save_offsets[_RA] = offset
            offset += 4
        self.frame_size = align_up(offset, 8)

    def frame_info(self) -> FrameInfo:
        """The machine-readable record of this frame's layout.

        Valid after :meth:`generate`; the caller fills in the code
        extent once the function's position in the image is known.
        """
        return FrameInfo(
            name=self.func.name,
            frame_size=self.frame_size,
            slots=[SlotInfo(slot.name, slot.offset, slot.words,
                            slot.is_spill)
                   for slot in self.func.slots],
            save_offsets=dict(self._save_offsets),
            saves_ra=self._saves_ra,
            outgoing_words=max(0, self.func.max_outgoing_args - 4),
            incoming_words=max(0, self.func.num_params - 4),
        )

    # -- emission helpers ----------------------------------------------------

    def _emit(self, op: Opcode, **kwargs) -> None:
        self.out.append(Instruction(op, **kwargs))

    def _label_here(self, name: str) -> None:
        if name in self.labels:
            raise CompileError(f"duplicate label {name!r}")
        self.labels[name] = len(self.out)

    def _color(self, reg: Optional[VReg]) -> int:
        assert reg is not None
        return self.allocation.color(reg)

    # -- driver -------------------------------------------------------------

    def generate(self) -> Tuple[List[Instruction], Dict[str, int]]:
        """Produce the instruction list and label map for this function."""
        self._layout_frame()
        self._label_here(self.func.name)
        self._prologue()
        for instr in self.func.body:
            self._gen(instr)
        self._epilogue()
        return self.out, self.labels

    def _prologue(self) -> None:
        if self.frame_size:
            self._emit(Opcode.ADDI, rd=_SP, rs=_SP, imm=-self.frame_size)
        for reg, offset in sorted(self._save_offsets.items(),
                                  key=lambda kv: kv[1]):
            if reg >= FPR_BASE:
                self._emit(Opcode.SS, rt=reg, rs=_SP, imm=offset, local=True)
            else:
                self._emit(Opcode.SW, rt=reg, rs=_SP, imm=offset, local=True)

    def _epilogue(self) -> None:
        self._label_here(self.func.exit_label + "__code")
        for reg, offset in sorted(self._save_offsets.items(),
                                  key=lambda kv: kv[1]):
            if reg >= FPR_BASE:
                self._emit(Opcode.LS, rd=reg, rs=_SP, imm=offset, local=True)
            else:
                self._emit(Opcode.LW, rd=reg, rs=_SP, imm=offset, local=True)
        if self.frame_size:
            self._emit(Opcode.ADDI, rd=_SP, rs=_SP, imm=self.frame_size)
        self._emit(Opcode.JR, rs=_RA)

    # -- instruction selection ----------------------------------------------

    def _gen(self, instr: IrInstr) -> None:
        kind = instr.kind
        if kind == "li":
            self._emit(Opcode.LI, rd=self._color(instr.dst), imm=instr.imm)
        elif kind == "lfi":
            label = self.pool.label_for(float(instr.imm))
            self._emit(Opcode.LA, rd=_AT, label=label, imm=0)
            self._emit(Opcode.LS, rd=self._color(instr.dst), rs=_AT, imm=0,
                       local=False)
        elif kind == "mov":
            dst = self._color(instr.dst)
            src = self._color(instr.a)
            if dst != src:
                op = Opcode.FMOV if instr.dst.is_float else Opcode.MOVE
                self._emit(op, rd=dst, rs=src)
        elif kind == "bin":
            self._gen_bin(instr)
        elif kind == "bini":
            op = _BINI_OPS.get(instr.op)
            if op is None:
                raise CompileError(f"bad bini op {instr.op!r}")
            self._emit(op, rd=self._color(instr.dst),
                       rs=self._color(instr.a), imm=instr.imm)
        elif kind == "cvt":
            if instr.op == "if":
                self._emit(Opcode.CVTSW, rd=self._color(instr.dst),
                           rs=self._color(instr.a))
            else:
                self._emit(Opcode.CVTWS, rd=self._color(instr.dst),
                           rs=self._color(instr.a))
        elif kind == "load" or kind == "store":
            self._gen_mem(instr)
        elif kind == "la_frame":
            slot = instr.base[1]
            assert isinstance(slot, FrameSlot)
            self._emit(Opcode.ADDI, rd=self._color(instr.dst), rs=_SP,
                       imm=slot.offset + instr.imm)
        elif kind == "la_global":
            self._emit(Opcode.LA, rd=self._color(instr.dst),
                       label=instr.sym, imm=0)
            if instr.imm:
                dst = self._color(instr.dst)
                self._emit(Opcode.ADDI, rd=dst, rs=dst, imm=instr.imm)
        elif kind == "call":
            self._gen_call(instr)
        elif kind == "ret":
            pass  # value already in $v0/$f0; the jmp to exit follows
        elif kind == "label":
            if instr.sym == self.func.exit_label:
                # The epilogue carries this label.
                self.labels[instr.sym] = len(self.out)
            else:
                self._label_here(instr.sym)
        elif kind == "jmp":
            target = instr.sym
            if target == self.func.exit_label:
                target = self.func.exit_label
            self._emit(Opcode.J, label=target, imm=0)
        elif kind == "br":
            op = Opcode.BEQ if instr.invert else Opcode.BNE
            self._emit(op, rs=self._color(instr.a), rt=_ZERO,
                       label=instr.sym, imm=0)
        else:
            raise CompileError(f"cannot generate code for {kind!r}")

    def _gen_bin(self, instr: IrInstr) -> None:
        op = instr.op
        dst = self._color(instr.dst)
        a = self._color(instr.a)
        b = self._color(instr.b)
        direct = _BIN_OPS.get(op)
        if op == "sle":
            # a <= b  ==  !(b < a)
            self._emit(Opcode.SLT, rd=dst, rs=b, rt=a)
            self._emit(Opcode.XORI, rd=dst, rs=dst, imm=1)
        elif op == "seq":
            self._emit(Opcode.LI, rd=_AT, imm=1)
            self._emit(Opcode.XOR, rd=dst, rs=a, rt=b)
            self._emit(Opcode.SLTU, rd=dst, rs=dst, rt=_AT)
        elif op == "sne":
            self._emit(Opcode.XOR, rd=dst, rs=a, rt=b)
            self._emit(Opcode.SLTU, rd=dst, rs=_ZERO, rt=dst)
        elif op == "fsne":
            self._emit(Opcode.CEQS, rd=dst, rs=a, rt=b)
            self._emit(Opcode.XORI, rd=dst, rs=dst, imm=1)
        elif direct is not None:
            self._emit(direct, rd=dst, rs=a, rt=b)
        else:
            raise CompileError(f"bad binary op {op!r}")

    def _gen_mem(self, instr: IrInstr) -> None:
        is_store = instr.kind == "store"
        is_float = instr.is_float
        value = self._color(instr.a if is_store else instr.dst)
        base = instr.base
        locality = instr.locality
        if isinstance(base, VReg):
            base_reg = self._color(base)
            offset = instr.imm
        else:
            tag, payload = base
            if tag == "frame":
                assert isinstance(payload, FrameSlot)
                base_reg = _SP
                offset = payload.offset + instr.imm
            elif tag == "incoming":
                base_reg = _SP
                offset = self.frame_size + 4 * int(payload) + instr.imm
            elif tag == "outgoing":
                base_reg = _SP
                offset = 4 * int(payload) + instr.imm
            elif tag == "global":
                self._emit(Opcode.LA, rd=_AT, label=str(payload), imm=0)
                base_reg = _AT
                offset = instr.imm
            else:
                raise CompileError(f"bad memory base {tag!r}")
        if is_store:
            op = Opcode.SS if is_float else Opcode.SW
            self._emit(op, rt=value, rs=base_reg, imm=offset, local=locality)
        else:
            op = Opcode.LS if is_float else Opcode.LW
            self._emit(op, rd=value, rs=base_reg, imm=offset, local=locality)

    def _gen_call(self, instr: IrInstr) -> None:
        syscall = _INTRINSIC_SYSCALLS.get(instr.sym)
        if syscall is not None:
            self._emit(Opcode.SYSCALL, imm=int(syscall))
            return
        self._emit(Opcode.JAL, label=instr.sym, imm=0)


def generate_startup() -> Tuple[List[Instruction], Dict[str, int]]:
    """The __start stub: call main, pass its result to the exit syscall."""
    instructions = [
        Instruction(Opcode.JAL, label="main", imm=0),
        Instruction(Opcode.MOVE, rd=_A0, rs=_V0),
        Instruction(Opcode.SYSCALL, imm=int(Syscall.EXIT)),
    ]
    return instructions, {"__start": 0}

"""The optimization pipeline behind the ``-O`` knob.

Levels:

* **O0** — nothing: lowering's naive IR goes straight to regalloc.
* **O1** — the local (per basic block) folder in
  :mod:`repro.lang.optimizer`, the pre-SSA behavior.
* **O2** — the full mid-end: the function is converted to pruned SSA
  (:mod:`repro.lang.ssa`) and the global passes in
  :mod:`repro.lang.passes` run to a fixpoint —

      constants -> copies -> value numbering -> copies
                -> store forwarding -> dead stores -> DCE -> LICM

  — before SSA destruction; the local folder then runs once more to
  clean up the out-of-SSA copies and strength-reduce anything the
  global constants exposed.

The default compile (``CompilerOptions(optimize=True)``) is **O2**, so
every existing oracle — opt/timing/golden/analyze/replay fuzzing, the
golden config matrix, the IR lints — exercises the SSA stack
automatically.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.errors import CompileError
from repro.lang import passes
from repro.lang.ir import IrFunction
from repro.lang.optimizer import optimize
from repro.lang.ssa import build_ssa, destroy_ssa

#: Safety cap for pipeline rounds.  Every pass is structurally monotone
#: (instructions only ever become movs/lis or disappear), so genuine
#: inputs converge in a handful of rounds; hitting the cap means a pass
#: regressed into oscillation and the compile must fail loudly.
_MAX_ROUNDS = 64


class PipelineStats:
    """Counters from one function's trip through the pipeline."""

    __slots__ = ("folded", "removed", "phis", "hoisted")

    def __init__(self) -> None:
        self.folded = 0
        self.removed = 0
        self.phis = 0
        self.hoisted = 0


def normalize_opt_level(level: Union[int, str, None],
                        default: int = 2) -> int:
    """Coerce an ``-O`` spelling (``2``, ``"2"``, ``"O2"``) to 0/1/2."""
    if level is None:
        return default
    if isinstance(level, str):
        text = level.strip().lstrip("Oo-")
        if not text.isdigit():
            raise CompileError(f"bad optimization level {level!r}")
        level = int(text)
    if level not in (0, 1, 2):
        raise CompileError(f"bad optimization level {level!r}")
    return level


def run_pipeline(func: IrFunction, level: int) -> PipelineStats:
    """Optimize *func* in place at *level*; returns counters."""
    stats = PipelineStats()
    if level <= 0:
        return stats
    folded, removed = optimize(func)
    stats.folded += folded
    stats.removed += removed
    if level == 1:
        return stats

    ssa = build_ssa(func)
    stats.phis = sum(len(b.phis) for b in ssa.live_blocks())
    for _ in range(_MAX_ROUNDS):
        changed = passes.propagate_constants(ssa)
        changed += passes.copy_propagate(ssa)
        changed += passes.value_number(ssa)
        changed += passes.copy_propagate(ssa)
        stats.folded += changed
        forwarded = passes.forward_stores(ssa)
        stats.folded += forwarded
        changed += forwarded
        removed = passes.eliminate_dead_stores(ssa)
        removed += passes.eliminate_dead(ssa)
        stats.removed += removed
        changed += removed
        hoisted = passes.hoist_invariants(ssa)
        stats.hoisted += hoisted
        changed += hoisted
        if not changed:
            break
    else:
        raise CompileError(
            f"SSA pipeline did not converge on {func.name!r} within "
            f"{_MAX_ROUNDS} rounds; a pass is oscillating")
    destroy_ssa(ssa)

    # Local cleanup: the out-of-SSA copies are block-local by
    # construction, exactly what the per-block folder coalesces.
    folded, removed = optimize(func)
    stats.folded += folded
    stats.removed += removed
    return stats

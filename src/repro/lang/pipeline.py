"""The optimization pipeline behind the ``-O`` knob.

Levels:

* **O0** — nothing: lowering's naive IR goes straight to regalloc.
* **O1** — the local (per basic block) folder in
  :mod:`repro.lang.optimizer`, the pre-SSA behavior.
* **O2** — the full mid-end: the function is converted to pruned SSA
  (:mod:`repro.lang.ssa`) and the global passes in
  :mod:`repro.lang.passes` run to a fixpoint —

      constants -> copies -> value numbering -> copies
                -> store forwarding -> dead stores -> DCE -> LICM

  — before SSA destruction; the local folder then runs once more to
  clean up the out-of-SSA copies and strength-reduce anything the
  global constants exposed.

The default compile (``CompilerOptions(optimize=True)``) is **O2**, so
every existing oracle — opt/timing/golden/analyze/replay fuzzing, the
golden config matrix, the IR lints — exercises the SSA stack
automatically.

Translation validation (the ``verify=`` knob of :func:`run_pipeline`):

* ``"off"`` — trust the passes (the default).
* ``"ssa"`` — run the :mod:`repro.analyze.tv` well-formedness layer
  after SSA construction and after every pass.
* ``"tv"`` — full translation validation: snapshot the function before
  each pass and certify the pass's semantic diff as well.

Verification never raises on findings; each pass application's
:class:`repro.analyze.tv.PassCertificate` is appended to
``PipelineStats.certificates`` and callers (the analyze driver, the
``tv`` fuzz oracle, ``repro-cc analyze --tv``) decide how loud to be.
A linear-IR structural check (:func:`repro.lang.ssa.verify_linear`)
always runs after SSA destruction when verification is on.
"""

from __future__ import annotations

from typing import List, Union

from repro.errors import CompileError
from repro.lang import passes
from repro.lang.ir import IrFunction
from repro.lang.optimizer import optimize
from repro.lang.ssa import build_ssa, destroy_ssa, verify_linear

#: Safety cap for pipeline rounds.  Every pass is structurally monotone
#: (instructions only ever become movs/lis or disappear), so genuine
#: inputs converge in a handful of rounds; hitting the cap means a pass
#: regressed into oscillation and the compile must fail loudly.
_MAX_ROUNDS = 64

#: Accepted ``verify=`` values for :func:`run_pipeline`.
VERIFY_MODES = ("off", "ssa", "tv")

#: The O2 pass schedule.  Resolved through ``getattr(passes, name)`` at
#: run time — never bound at import — so tests can monkeypatch a pass
#: and the pipeline (and its verifier) sees the patched version.
_PASS_SEQUENCE = (
    "propagate_constants",
    "copy_propagate",
    "value_number",
    "copy_propagate",
    "forward_stores",
    "eliminate_dead_stores",
    "eliminate_dead",
    "hoist_invariants",
)

#: Which PipelineStats counter each pass's change count feeds.
_PASS_STAT = {
    "propagate_constants": "folded",
    "copy_propagate": "folded",
    "value_number": "folded",
    "forward_stores": "folded",
    "eliminate_dead_stores": "removed",
    "eliminate_dead": "removed",
    "hoist_invariants": "hoisted",
}


class PipelineStats:
    """Counters from one function's trip through the pipeline."""

    __slots__ = ("folded", "removed", "phis", "hoisted", "certificates")

    def __init__(self) -> None:
        self.folded = 0
        self.removed = 0
        self.phis = 0
        self.hoisted = 0
        #: Per-pass :class:`repro.analyze.tv.PassCertificate` log, in
        #: application order; empty unless ``verify`` was on.
        self.certificates: List = []

    @property
    def certified(self) -> bool:
        """True when every collected certificate is clean."""
        return all(cert.ok for cert in self.certificates)

    def certificate_findings(self) -> List:
        """All diagnostics across the certificate log, in order."""
        out: List = []
        for cert in self.certificates:
            out.extend(cert.findings)
        return out


def normalize_opt_level(level: Union[int, str, None],
                        default: int = 2) -> int:
    """Coerce an ``-O`` spelling (``2``, ``"2"``, ``"O2"``) to 0/1/2.

    Unknown spellings (``"O3"``, ``"Ox"``, ``"fast"``, ``7``...) raise a
    :class:`CompileError` naming the accepted levels.
    """
    if level is None:
        return default
    original = level
    if isinstance(level, str):
        text = level.strip().lstrip("Oo-")
        if not text.isdigit():
            raise CompileError(
                f"bad optimization level {original!r}: accepted levels "
                f"are O0, O1, and O2")
        level = int(text)
    if level not in (0, 1, 2):
        raise CompileError(
            f"bad optimization level {original!r}: accepted levels "
            f"are O0, O1, and O2")
    return level


def run_pipeline(func: IrFunction, level: int,
                 verify: str = "off") -> PipelineStats:
    """Optimize *func* in place at *level*; returns counters.

    ``verify`` selects translation validation (see module docstring):
    certificates land in ``PipelineStats.certificates``; findings never
    raise here.
    """
    if verify not in VERIFY_MODES:
        raise CompileError(
            f"bad verify mode {verify!r}: accepted modes are "
            f"{', '.join(VERIFY_MODES)}")
    stats = PipelineStats()
    if level <= 0:
        return stats
    folded, removed = optimize(func)
    stats.folded += folded
    stats.removed += removed
    if level == 1:
        return stats

    tv = None
    if verify != "off":
        # Lazy import: repro.analyze.tv imports repro.lang modules; a
        # top-level import here would be a cycle.
        from repro.analyze import tv as tv_module
        tv = tv_module

    ssa = build_ssa(func)
    stats.phis = sum(len(b.phis) for b in ssa.live_blocks())
    if tv is not None:
        cert = tv.PassCertificate(func.name, "build", 0)
        # build_ssa computed dominators on this exact graph moments ago
        # with the same algorithm — recomputing here buys nothing.
        cert.findings.extend(tv.check_wellformed(ssa, recompute=False))
        stats.certificates.append(cert)
    # Passes that report zero changes are not certified individually:
    # the pre-pass snapshot is carried forward and the quiet span is
    # diffed once by the trailing "fixpoint" certificate, so a pass
    # that mutates the function while claiming no changes still gets
    # caught (with span- rather than pass-level attribution).  This is
    # what keeps full verification within the compile-time budget —
    # late fixpoint rounds are almost entirely no-ops.
    snap = None
    last_round = 0
    for round_index in range(_MAX_ROUNDS):
        last_round = round_index
        changed = 0
        for name in _PASS_SEQUENCE:
            pass_fn = getattr(passes, name)
            if tv is not None and verify == "tv" and snap is None:
                snap = tv.snapshot(ssa)
            delta = pass_fn(ssa)
            if tv is not None and delta:
                if verify == "tv":
                    cert = tv.certify_pass(name, snap, ssa, round_index,
                                           update_snapshot=True,
                                           wf="events")
                else:
                    cert = tv.PassCertificate(
                        func.name, tv.PASS_KEYS.get(name, name),
                        round_index)
                    cert.findings.extend(tv.check_wellformed(ssa))
                stats.certificates.append(cert)
            bucket = _PASS_STAT[name]
            setattr(stats, bucket, getattr(stats, bucket) + delta)
            changed += delta
        if not changed:
            break
    else:
        raise CompileError(
            f"SSA pipeline did not converge on {func.name!r} within "
            f"{_MAX_ROUNDS} rounds; a pass is oscillating")
    if tv is not None:
        if verify == "tv":
            if snap is None:
                snap = tv.snapshot(ssa)
            cert = tv.certify_pass("fixpoint", snap, ssa, last_round,
                                   wf="always")
        else:
            cert = tv.PassCertificate(func.name, "fixpoint", last_round)
            cert.findings.extend(tv.check_wellformed(ssa))
        stats.certificates.append(cert)
    destroy_ssa(ssa)
    if verify != "off":
        verify_linear(func)

    # Local cleanup: the out-of-SSA copies are block-local by
    # construction, exactly what the per-block folder coalesces.
    folded, removed = optimize(func)
    stats.folded += folded
    stats.removed += removed
    return stats

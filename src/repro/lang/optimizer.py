"""IR-level optimizations: constant folding, copy propagation, dead code.

These run between lowering and register allocation.  They operate within
basic blocks (local value tracking is reset at labels and branch targets),
which is enough to clean up the naive lowering patterns — repeated
constant materialisation, copy chains from call-return plumbing, and dead
computations — without needing SSA.

The passes matter for fidelity as well as cleanliness: the paper's
baseline compiler is EGCS at -O3, so the instruction stream should not be
dominated by removable junk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import CompileError
from repro.lang.ir import IrFunction, IrInstr, VReg
from repro.utils import to_signed32

# The constant/copy maps below key on VReg *objects*.  That is only sound
# because VReg deliberately has no ``__eq__``/``__hash__`` — dict and set
# membership is object identity — and because every virtual register in a
# function is interned: it is created exactly once by
# ``IrFunction.new_vreg`` and shared by reference between its def and all
# of its uses.  Precolored registers are the exception (lowering creates a
# fresh ``VReg(0, phys=...)`` per use site, so two ``$a0`` mentions are
# *not* identical), which is why every tracking path guards on
# ``.precolored`` before touching the maps.  Enforce the identity half of
# the invariant at import time so a future "convenience" __eq__ cannot
# silently turn identity keying into value keying.
assert VReg.__eq__ is object.__eq__ and VReg.__hash__ is object.__hash__, \
    "optimizer state keys on VReg identity; VReg must not define __eq__/__hash__"


def _trunc_div(a: int, b: int) -> int:
    """Truncating (toward zero) division, exactly the VM's DIV."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


# Folding rules mirror the VM's execution semantics exactly: operands are
# signed 32-bit values, results are wrapped through ``to_signed32`` at the
# fold sites below (the VM wraps every integer register write the same
# way).  ``shr`` is the *logical* shift (SRL/SRLV: the operand is viewed
# unsigned), ``sra`` the arithmetic one (SRA/SRAV: Python's ``>>`` on a
# sign-extended int); shift counts are masked to 5 bits like the hardware.
# ``div``/``rem`` truncate toward zero (the remainder takes the dividend's
# sign: ``rem = a - trunc(a/b)*b``); INT_MIN / -1 overflows to INT_MIN via
# the same 32-bit wrap the VM applies on writeback.  Division by zero
# traps at runtime, so ``_div_ok`` keeps those folds from ever happening.
_FOLDABLE_INT = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _trunc_div,
    "rem": lambda a, b: a - _trunc_div(a, b) * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 31),
    "shr": lambda a, b: (a & 0xFFFFFFFF) >> (b & 31),
    "sra": lambda a, b: a >> (b & 31),
    "slt": lambda a, b: int(a < b),
    "sle": lambda a, b: int(a <= b),
    "sgt": lambda a, b: int(a > b),
    "sge": lambda a, b: int(a >= b),
    "seq": lambda a, b: int(a == b),
    "sne": lambda a, b: int(a != b),
}

#: Instruction kinds that end local value tracking (control flow joins).
_BARRIERS = ("label",)

#: Kinds with no side effects whose dead results may be removed.
_PURE = ("li", "lfi", "mov", "bin", "bini", "cvt", "la_frame", "la_global")


def _div_ok(a: int, b: int, op: str) -> bool:
    return not (op in ("div", "rem") and b == 0)


class _BlockState:
    """Known constants and copies within one basic block."""

    def __init__(self) -> None:
        self.constants: Dict[VReg, int] = {}
        self.copies: Dict[VReg, VReg] = {}

    def invalidate(self, reg: Optional[VReg]) -> None:
        if reg is None:
            return
        self.constants.pop(reg, None)
        self.copies.pop(reg, None)
        # anything copying *from* reg is stale now
        stale = [dst for dst, src in self.copies.items() if src is reg]
        for dst in stale:
            del self.copies[dst]

    def resolve(self, reg: Optional[VReg]) -> Optional[VReg]:
        """Follow copy chains to the original source."""
        seen = 0
        while reg in self.copies and seen < 8:
            reg = self.copies[reg]
            seen += 1
        return reg


def fold_and_propagate(func: IrFunction) -> int:
    """Constant folding + copy propagation; returns changed-op count."""
    changed = 0
    state = _BlockState()
    for instr in func.body:
        kind = instr.kind
        if kind in _BARRIERS:
            state = _BlockState()
            continue
        # Rewrite uses through known copies (precolored regs are pinned:
        # never rewrite them, their identity is the ABI).
        for field in ("a", "b"):
            reg = getattr(instr, field)
            if isinstance(reg, VReg) and not reg.precolored:
                resolved = state.resolve(reg)
                if resolved is not reg and isinstance(resolved, VReg) \
                        and not resolved.precolored:
                    setattr(instr, field, resolved)
                    changed += 1
        if isinstance(instr.base, VReg) and not instr.base.precolored:
            resolved = state.resolve(instr.base)
            if resolved is not instr.base and not resolved.precolored:
                instr.base = resolved
                changed += 1

        # Fold binaries whose operands are known integer constants, or
        # strength-reduce a bin with one constant operand into a bini.
        if kind == "bin" and instr.op in _FOLDABLE_INT:
            a = state.constants.get(instr.a)
            b = state.constants.get(instr.b)
            if a is not None and b is not None and _div_ok(a, b, instr.op):
                value = to_signed32(_FOLDABLE_INT[instr.op](a, b))
                instr.kind = "li"
                instr.imm = value
                instr.op = ""
                instr.a = None
                instr.b = None
                changed += 1
                kind = "li"
            elif (b is not None and -32768 <= b <= 32767
                    and instr.op in ("add", "and", "or", "xor",
                                     "shl", "shr", "sra", "slt")):
                instr.kind = "bini"
                instr.imm = b
                instr.b = None
                changed += 1
                kind = "bini"
        elif kind == "bini" and instr.op in _FOLDABLE_INT:
            a = state.constants.get(instr.a)
            if a is not None and _div_ok(a, instr.imm, instr.op):
                value = to_signed32(_FOLDABLE_INT[instr.op](a, instr.imm))
                instr.kind = "li"
                instr.imm = value
                instr.op = ""
                instr.a = None
                changed += 1
                kind = "li"

        # Update tracked facts for the destination.
        dst = instr.dst
        if dst is not None:
            state.invalidate(dst)
            if dst.precolored:
                pass  # ABI registers: do not track
            elif kind == "li":
                # Track what the VM will actually hold: register writes
                # wrap to signed 32-bit, so an oversized immediate must be
                # wrapped *before* it feeds further folds.
                state.constants[dst] = to_signed32(instr.imm)
            elif kind == "mov" and isinstance(instr.a, VReg) \
                    and not instr.a.precolored:
                source = state.resolve(instr.a)
                if source is not None and not source.precolored \
                        and source is not dst:
                    state.copies[dst] = source
                const = state.constants.get(instr.a)
                if const is not None:
                    state.constants[dst] = const
        if kind == "call":
            # Calls clobber precolored state only; virtual facts survive.
            pass
    return changed


def eliminate_dead_code(func: IrFunction) -> int:
    """Remove pure instructions whose results are never read."""
    used: Set[VReg] = set()
    for instr in func.body:
        for reg in instr.uses():
            if isinstance(reg, VReg):
                used.add(reg)
    new_body: List[IrInstr] = []
    removed = 0
    for instr in func.body:
        dst = instr.dst
        if (instr.kind in _PURE and dst is not None
                and not dst.precolored and dst not in used):
            removed += 1
            continue
        new_body.append(instr)
    func.body = new_body
    return removed


def optimize(func: IrFunction,
             max_rounds: Optional[int] = None) -> Tuple[int, int]:
    """Run folding/propagation and DCE to a true fixpoint.

    Each round is individually monotone but can expose work for the next
    one (a fold makes a def dead; DCE's single used-set sweep removes one
    link of a dead chain per round; ``resolve`` follows at most 8 copy
    hops per round), so a fixed round count silently under-optimizes deep
    chains.  *max_rounds* is therefore only a safety net: ``None`` (the
    default) derives a cap generous enough that hitting it can only mean
    the passes stopped being monotone, and raises instead of returning a
    half-optimized function.

    Returns (total folded/propagated, total removed).
    """
    if max_rounds is None:
        # Worst observed requirements are ~len(body) rounds (a dead chain
        # retires one instruction per round); double it and pad so tiny
        # functions still get slack.
        max_rounds = 2 * len(func.body) + 16
    total_folded = 0
    total_removed = 0
    for _ in range(max_rounds):
        folded = fold_and_propagate(func)
        removed = eliminate_dead_code(func)
        total_folded += folded
        total_removed += removed
        if not folded and not removed:
            return total_folded, total_removed
    raise CompileError(
        f"optimizer did not reach a fixpoint on {func.name!r} after "
        f"{max_rounds} rounds; a pass is oscillating")

"""Control-flow graph construction and liveness analysis over the IR.

Liveness is the classic backward dataflow::

    live_out(B) = union of live_in(S) for S in succ(B)
    live_in(B)  = use(B) | (live_out(B) - def(B))

iterated to a fixpoint over basic blocks, then replayed instruction by
instruction when the register allocator builds the interference graph.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.lang.ir import IrFunction, IrInstr, VReg

_BLOCK_ENDERS = ("jmp", "br")


class BasicBlock:
    """A maximal straight-line run of IR instructions."""

    __slots__ = ("index", "instrs", "succ", "use", "defs",
                 "live_in", "live_out")

    def __init__(self, index: int):
        self.index = index
        self.instrs: List[IrInstr] = []
        self.succ: List[int] = []
        self.use: Set[VReg] = set()
        self.defs: Set[VReg] = set()
        self.live_in: Set[VReg] = set()
        self.live_out: Set[VReg] = set()

    def __repr__(self) -> str:
        return f"BasicBlock({self.index}, {len(self.instrs)} instrs)"


def build_cfg(func: IrFunction) -> List[BasicBlock]:
    """Split the linear IR into basic blocks and wire successors."""
    # Find leaders: function start, every label, every instruction after a
    # control transfer.
    body = func.body
    leaders: Set[int] = {0} if body else set()
    label_at: Dict[str, int] = {}
    for i, instr in enumerate(body):
        if instr.kind == "label":
            leaders.add(i)
            label_at[instr.sym] = i
        elif instr.kind in _BLOCK_ENDERS and i + 1 < len(body):
            leaders.add(i + 1)

    ordered = sorted(leaders)
    block_of_index: Dict[int, int] = {}
    blocks: List[BasicBlock] = []
    for bi, start in enumerate(ordered):
        end = ordered[bi + 1] if bi + 1 < len(ordered) else len(body)
        block = BasicBlock(bi)
        block.instrs = body[start:end]
        blocks.append(block)
        block_of_index[start] = bi

    def block_of_label(sym: str) -> int:
        return block_of_index[label_at[sym]]

    for bi, block in enumerate(blocks):
        if not block.instrs:
            continue
        last = block.instrs[-1]
        if last.kind == "jmp":
            block.succ.append(block_of_label(last.sym))
        elif last.kind == "br":
            block.succ.append(block_of_label(last.sym))
            if bi + 1 < len(blocks):
                block.succ.append(bi + 1)
        elif bi + 1 < len(blocks):
            block.succ.append(bi + 1)
    return blocks


def _block_use_def(block: BasicBlock) -> None:
    use: Set[VReg] = set()
    defs: Set[VReg] = set()
    for instr in block.instrs:
        for reg in instr.uses():
            if reg is not None and reg not in defs:
                use.add(reg)
        for reg in instr.defs():
            defs.add(reg)
    block.use = use
    block.defs = defs


def analyze_liveness(func: IrFunction) -> List[BasicBlock]:
    """Build the CFG and compute per-block live-in/live-out sets."""
    blocks = build_cfg(func)
    for block in blocks:
        _block_use_def(block)
    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            live_out: Set[VReg] = set()
            for s in block.succ:
                live_out |= blocks[s].live_in
            live_in = block.use | (live_out - block.defs)
            if live_out != block.live_out or live_in != block.live_in:
                block.live_out = live_out
                block.live_in = live_in
                changed = True
    return blocks


def instruction_liveness(
    block: BasicBlock,
) -> List[Tuple[IrInstr, Set[VReg]]]:
    """Backward walk yielding (instr, live-after-instr) pairs.

    The returned list is in *reverse* instruction order, matching the order
    an interference-graph builder wants to consume it in.
    """
    live = set(block.live_out)
    out: List[Tuple[IrInstr, Set[VReg]]] = []
    for instr in reversed(block.instrs):
        out.append((instr, set(live)))
        for reg in instr.defs():
            live.discard(reg)
        for reg in instr.uses():
            if reg is not None:
                live.add(reg)
    return out

"""The mini-C compiler.

A small C-like language (ints, floats, pointers, arrays, functions,
recursion) compiled to the repro ISA through a classic pipeline:

    source --lexer--> tokens --parser--> AST --semantics--> typed AST
           --lowering--> IR (virtual registers, basic blocks)
           --regalloc--> IR with physical registers + spill code
           --codegen--> repro.isa.Program

Register allocation is Chaitin-Briggs graph coloring; values that do not
get a register are *spilled to the stack frame*, which — together with
callee-saved save/restore and argument passing — is precisely the local
variable traffic the paper decouples.
"""

from repro.lang.frontend import (CompileStats, CompilerOptions,
                                 compile_source)

__all__ = ["CompileStats", "CompilerOptions", "compile_source"]

"""Compiler driver: mini-C source text -> loadable Program."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa.frames import FrameInfo
from repro.isa.instruction import Instruction
from repro.isa.program import DataItem, Program
from repro.lang.codegen import FloatPool, FunctionCodegen, generate_startup
from repro.lang.ir import IrFunction
from repro.lang.lowering import lower_function
from repro.lang.optimizer import optimize
from repro.lang.parser import parse
from repro.lang.provenance import annotate_localities
from repro.lang.regalloc import allocate
from repro.lang.semantics import analyze


class CompilerOptions:
    """Compilation knobs."""

    def __init__(self, source_name: str = "<mini-c>",
                 optimize: bool = True):
        self.source_name = source_name
        self.optimize = optimize


class CompileStats:
    """Observability into one compilation (used by tests and examples)."""

    def __init__(self) -> None:
        self.functions = 0
        self.instructions = 0
        self.spilled_vregs = 0
        self.spill_rounds = 0
        self.frame_bytes: Dict[str, int] = {}
        self.ops_folded = 0
        self.ops_removed = 0
        self.localities_refined = 0


def compile_source(source: str, options: CompilerOptions = None,
                   stats: CompileStats = None,
                   ir_out: Optional[Dict[str, IrFunction]] = None
                   ) -> Program:
    """Compile mini-C *source* into a resolved, runnable Program.

    When *ir_out* is given, each function's (allocated) IR is stored
    there by name so IR-level tooling — the :mod:`repro.analyze` lints —
    can inspect exactly what codegen consumed.
    """
    if options is None:
        options = CompilerOptions()
    ast = parse(source)
    analyzer = analyze(ast)

    pool = FloatPool()
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    frames: Dict[str, FrameInfo] = {}

    start_code, start_labels = generate_startup()
    instructions.extend(start_code)
    labels.update(start_labels)
    frames["__start"] = FrameInfo(
        "__start", frame_size=0, slots=[], save_offsets={},
        saves_ra=False, outgoing_words=0, incoming_words=0,
        code_start=0, code_end=len(start_code))

    for func in ast.functions:
        ir = lower_function(func, analyzer)
        if options.optimize:
            folded, removed = optimize(ir)
            if stats is not None:
                stats.ops_folded += folded
                stats.ops_removed += removed
        # Authoritative locality bits: lowering's linear approximation is
        # unsound at joins, so this flow-sensitive pass always runs.
        _, refined = annotate_localities(ir)
        allocation = allocate(ir)
        codegen = FunctionCodegen(ir, allocation, pool)
        code, func_labels = codegen.generate()
        offset = len(instructions)
        for name, index in func_labels.items():
            labels[name] = index + offset
        instructions.extend(code)
        frame = codegen.frame_info()
        frame.code_start = offset
        frame.code_end = offset + len(code)
        frames[func.name] = frame
        if ir_out is not None:
            ir_out[func.name] = ir
        if stats is not None:
            stats.functions += 1
            stats.instructions += len(code)
            stats.spilled_vregs += allocation.spilled
            stats.spill_rounds = max(stats.spill_rounds,
                                     allocation.spill_rounds)
            stats.frame_bytes[func.name] = codegen.frame_size
            stats.localities_refined += refined

    data: List[DataItem] = []
    for gvar in ast.globals:
        count = gvar.array_size if gvar.array_size is not None else 1
        if gvar.init is not None:
            values = list(gvar.init) + [0] * (count - len(gvar.init))
        else:
            values = [0] * count
        data.append(DataItem(gvar.name, values))
    data.extend(pool.data_items())

    program = Program(
        instructions,
        labels=labels,
        data=data,
        entry="__start",
        source_name=options.source_name,
        frames=frames,
    )
    program.resolve()
    return program

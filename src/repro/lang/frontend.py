"""Compiler driver: mini-C source text -> loadable Program."""

from __future__ import annotations

from typing import Dict, List

from repro.isa.instruction import Instruction
from repro.isa.program import DataItem, Program
from repro.lang.codegen import FloatPool, FunctionCodegen, generate_startup
from repro.lang.lowering import lower_function
from repro.lang.optimizer import optimize
from repro.lang.parser import parse
from repro.lang.regalloc import allocate
from repro.lang.semantics import analyze


class CompilerOptions:
    """Compilation knobs."""

    def __init__(self, source_name: str = "<mini-c>",
                 optimize: bool = True):
        self.source_name = source_name
        self.optimize = optimize


class CompileStats:
    """Observability into one compilation (used by tests and examples)."""

    def __init__(self) -> None:
        self.functions = 0
        self.instructions = 0
        self.spilled_vregs = 0
        self.spill_rounds = 0
        self.frame_bytes: Dict[str, int] = {}
        self.ops_folded = 0
        self.ops_removed = 0


def compile_source(source: str, options: CompilerOptions = None,
                   stats: CompileStats = None) -> Program:
    """Compile mini-C *source* into a resolved, runnable Program."""
    if options is None:
        options = CompilerOptions()
    ast = parse(source)
    analyzer = analyze(ast)

    pool = FloatPool()
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}

    start_code, start_labels = generate_startup()
    instructions.extend(start_code)
    labels.update(start_labels)

    for func in ast.functions:
        ir = lower_function(func, analyzer)
        if options.optimize:
            folded, removed = optimize(ir)
            if stats is not None:
                stats.ops_folded += folded
                stats.ops_removed += removed
        allocation = allocate(ir)
        codegen = FunctionCodegen(ir, allocation, pool)
        code, func_labels = codegen.generate()
        offset = len(instructions)
        for name, index in func_labels.items():
            labels[name] = index + offset
        instructions.extend(code)
        if stats is not None:
            stats.functions += 1
            stats.instructions += len(code)
            stats.spilled_vregs += allocation.spilled
            stats.spill_rounds = max(stats.spill_rounds,
                                     allocation.spill_rounds)
            stats.frame_bytes[func.name] = codegen.frame_size

    data: List[DataItem] = []
    for gvar in ast.globals:
        count = gvar.array_size if gvar.array_size is not None else 1
        if gvar.init is not None:
            values = list(gvar.init) + [0] * (count - len(gvar.init))
        else:
            values = [0] * count
        data.append(DataItem(gvar.name, values))
    data.extend(pool.data_items())

    program = Program(
        instructions,
        labels=labels,
        data=data,
        entry="__start",
        source_name=options.source_name,
    )
    program.resolve()
    return program

"""Compiler driver: mini-C source text -> loadable Program."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa.frames import FrameInfo
from repro.isa.instruction import Instruction
from repro.isa.program import DataItem, Program
from repro.lang.codegen import FloatPool, FunctionCodegen, generate_startup
from repro.lang.ir import IrFunction
from repro.lang.lowering import lower_function
from repro.lang.parser import parse
from repro.errors import CompileError
from repro.lang.pipeline import (VERIFY_MODES, normalize_opt_level,
                                 run_pipeline)
from repro.lang.provenance import annotate_localities
from repro.lang.regalloc import allocate
from repro.lang.semantics import analyze


class CompilerOptions:
    """Compilation knobs.

    ``opt_level`` accepts ``0``/``1``/``2`` or the spellings ``"O0"`` /
    ``"O1"`` / ``"O2"`` (see :mod:`repro.lang.pipeline`).  When omitted
    it is derived from the legacy ``optimize`` flag: ``True`` means the
    full pipeline (**O2**), ``False`` means **O0** — so every caller of
    ``CompilerOptions(optimize=...)`` keeps working and the optimized
    default exercises the SSA mid-end.  ``optimize`` is kept coherent
    (``opt_level > 0``) for code that still reads it.

    ``verify`` selects translation validation of the SSA pipeline:
    ``"off"`` (default), ``"ssa"`` (well-formedness between passes), or
    ``"tv"`` (full per-pass semantic certification); certificates land
    in ``CompileStats.certificates``.
    """

    def __init__(self, source_name: str = "<mini-c>",
                 optimize: bool = True, opt_level=None,
                 verify: str = "off"):
        self.source_name = source_name
        self.opt_level = normalize_opt_level(
            opt_level, default=2 if optimize else 0)
        self.optimize = self.opt_level > 0
        if verify not in VERIFY_MODES:
            raise CompileError(
                f"bad verify mode {verify!r}: accepted modes are "
                f"{', '.join(VERIFY_MODES)}")
        self.verify = verify


class CompileStats:
    """Observability into one compilation (used by tests and examples)."""

    def __init__(self) -> None:
        self.functions = 0
        self.instructions = 0
        self.spilled_vregs = 0
        self.spill_rounds = 0
        self.frame_bytes: Dict[str, int] = {}
        self.ops_folded = 0
        self.ops_removed = 0
        self.localities_refined = 0
        self.ssa_phis = 0
        self.ssa_hoisted = 0
        #: ``(function name, PassCertificate)`` pairs from translation
        #: validation, in application order; empty unless
        #: ``CompilerOptions(verify=...)`` was on.
        self.certificates: List = []

    @property
    def certified(self) -> bool:
        """True when every collected pass certificate is clean."""
        return all(cert.ok for _name, cert in self.certificates)


def compile_source(source: str, options: CompilerOptions = None,
                   stats: CompileStats = None,
                   ir_out: Optional[Dict[str, IrFunction]] = None
                   ) -> Program:
    """Compile mini-C *source* into a resolved, runnable Program.

    When *ir_out* is given, each function's (allocated) IR is stored
    there by name so IR-level tooling — the :mod:`repro.analyze` lints —
    can inspect exactly what codegen consumed.
    """
    if options is None:
        options = CompilerOptions()
    ast = parse(source)
    analyzer = analyze(ast)

    pool = FloatPool()
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    frames: Dict[str, FrameInfo] = {}

    start_code, start_labels = generate_startup()
    instructions.extend(start_code)
    labels.update(start_labels)
    frames["__start"] = FrameInfo(
        "__start", frame_size=0, slots=[], save_offsets={},
        saves_ra=False, outgoing_words=0, incoming_words=0,
        code_start=0, code_end=len(start_code))

    for func in ast.functions:
        ir = lower_function(func, analyzer)
        pstats = run_pipeline(ir, options.opt_level,
                              verify=options.verify)
        if stats is not None:
            stats.ops_folded += pstats.folded
            stats.ops_removed += pstats.removed
            stats.ssa_phis += pstats.phis
            stats.ssa_hoisted += pstats.hoisted
            stats.certificates.extend(
                (func.name, cert) for cert in pstats.certificates)
        # Authoritative locality bits: lowering's linear approximation is
        # unsound at joins, so this flow-sensitive pass always runs.
        _, refined = annotate_localities(ir)
        allocation = allocate(ir)
        codegen = FunctionCodegen(ir, allocation, pool)
        code, func_labels = codegen.generate()
        offset = len(instructions)
        for name, index in func_labels.items():
            labels[name] = index + offset
        instructions.extend(code)
        frame = codegen.frame_info()
        frame.code_start = offset
        frame.code_end = offset + len(code)
        frames[func.name] = frame
        if ir_out is not None:
            ir_out[func.name] = ir
        if stats is not None:
            stats.functions += 1
            stats.instructions += len(code)
            stats.spilled_vregs += allocation.spilled
            stats.spill_rounds = max(stats.spill_rounds,
                                     allocation.spill_rounds)
            stats.frame_bytes[func.name] = codegen.frame_size
            stats.localities_refined += refined

    data: List[DataItem] = []
    for gvar in ast.globals:
        count = gvar.array_size if gvar.array_size is not None else 1
        if gvar.init is not None:
            values = list(gvar.init) + [0] * (count - len(gvar.init))
        else:
            values = [0] * count
        data.append(DataItem(gvar.name, values))
    data.extend(pool.data_items())

    program = Program(
        instructions,
        labels=labels,
        data=data,
        entry="__start",
        source_name=options.source_name,
        frames=frames,
    )
    program.resolve()
    return program

"""SSA construction and destruction for the mini-C IR.

The linear IR from lowering becomes a block graph (via
:mod:`repro.analyze.ircfg` — the same CFG the static verifier uses), gets
pruned-SSA phis (dominance frontiers over the CHK idoms from
:mod:`repro.analyze.cfg`, a phi only where the variable is live into the
join), is renamed so every virtual register has exactly one definition,
and is finally lowered back to the linear form codegen expects.

SSA invariants the passes in :mod:`repro.lang.passes` rely on:

* every non-precolored ``VReg`` has exactly one definition (a phi or an
  instruction), and that definition dominates every use;
* precolored registers are *outside* SSA entirely — they are ABI
  plumbing, created fresh per use site by lowering, and no pass may
  rename, move, or merge an instruction that reads or writes one;
* phi arguments are keyed by predecessor block index and every live
  predecessor has an entry;
* block 0 is the entry; the block carrying ``func.exit_label`` is kept
  alive (even if branch folding makes it unreachable) and is emitted
  last, because codegen attaches the epilogue to that label.

Out-of-SSA uses the isolation-temp (two copy) scheme: for each phi
``d = phi(a_p...)`` a fresh temp ``t`` is created, each predecessor gets
``mov t <- a_p`` ahead of its terminator, and the join block starts with
``mov d <- t``.  The temps make parallel phi semantics sequential without
edge splitting (lost-copy and swap problems cannot occur), and the local
optimizer plus the register allocator's same-color mov elision clean up
the copies that remain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analyze.cfg import dominates, dominators
from repro.analyze.ircfg import ir_cfg
from repro.errors import CompileError
from repro.lang.ir import IrFunction, IrInstr, VReg

# Same identity-keying contract as the local optimizer: every map below
# keys VRegs by object identity (see repro.lang.optimizer).
assert VReg.__eq__ is object.__eq__ and VReg.__hash__ is object.__hash__, \
    "SSA maps key on VReg identity; VReg must not define __eq__/__hash__"

#: Instruction kinds that end a block when they appear last.
_TERMINATORS = ("jmp", "br", "ret")


class Phi:
    """``dst <- phi(args)`` with arguments keyed by predecessor index."""

    __slots__ = ("dst", "args")

    def __init__(self, dst: VReg, args: Dict[int, VReg]):
        self.dst = dst
        self.args = args

    def __repr__(self) -> str:
        inner = ", ".join(f"{p}:{a}" for p, a in sorted(self.args.items()))
        return f"Phi({self.dst} <- {inner})"


class SsaBlock:
    """One basic block: optional label, phis, straight-line instructions."""

    __slots__ = ("index", "label", "phis", "instrs", "succ", "pred", "dead")

    def __init__(self, index: int, label: Optional[str],
                 instrs: List[IrInstr]):
        self.index = index
        self.label = label
        self.phis: List[Phi] = []
        self.instrs = instrs
        self.succ: List[int] = []
        self.pred: List[int] = []
        self.dead = False

    def terminator_at(self) -> int:
        """Index of the first trailing terminator (insertion point for
        edge copies): everything from here on is ``ret``/``jmp``/``br``."""
        i = len(self.instrs)
        while i > 0 and self.instrs[i - 1].kind in _TERMINATORS:
            i -= 1
        return i

    def __repr__(self) -> str:
        return (f"SsaBlock(#{self.index} {self.label or '<anon>'} "
                f"{len(self.phis)} phis, {len(self.instrs)} instrs)")


class SsaFunction:
    """A function in SSA form: block graph + dominator info.

    Exposes ``blocks`` / ``rpo()`` with the same shapes
    :func:`repro.analyze.cfg.dominators` expects, so the CHK computation
    is reused rather than duplicated.
    """

    def __init__(self, func: IrFunction, blocks: List[SsaBlock]):
        self.func = func
        self.blocks = blocks
        #: Emission order for destruction; preheaders are spliced in here.
        self.layout: List[int] = [b.index for b in blocks]
        self.idom: List[Optional[int]] = []
        self._label_counter = 0
        self.recompute_dominators()

    # -- graph maintenance ---------------------------------------------------

    def rpo(self) -> List[int]:
        """Reverse postorder over live blocks (duck-typed for CHK)."""
        order: List[int] = []
        visited = {0}
        stack: List[Tuple[int, int]] = [(0, 0)]
        while stack:
            block, pos = stack[-1]
            succs = self.blocks[block].succ
            if pos < len(succs):
                stack[-1] = (block, pos + 1)
                nxt = succs[pos]
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                order.append(block)
        return list(reversed(order))

    def recompute_dominators(self) -> None:
        self.idom = dominators(self)

    def dominates(self, a: int, b: int) -> bool:
        return dominates(self.idom, a, b)

    def dom_children(self) -> List[List[int]]:
        """Dominator-tree children per block (entry's self-idom excluded)."""
        children: List[List[int]] = [[] for _ in self.blocks]
        for block in self.blocks:
            if block.dead or block.index == 0:
                continue
            parent = self.idom[block.index]
            if parent is not None:
                children[parent].append(block.index)
        return children

    def live_blocks(self) -> List[SsaBlock]:
        return [b for b in self.blocks if not b.dead]

    def new_label(self) -> str:
        self._label_counter += 1
        return f"{self.func.name}__ssa{self._label_counter}"

    def ensure_label(self, block: SsaBlock) -> str:
        if block.label is None:
            block.label = self.new_label()
        return block.label

    def block_by_label(self, sym: str) -> SsaBlock:
        for block in self.blocks:
            if block.label == sym and not block.dead:
                return block
        raise CompileError(f"no live block labelled {sym!r}")

    def remove_edge(self, src: int, dst: int) -> None:
        """Unlink ``src -> dst`` and drop dst's phi args for that edge."""
        self.blocks[src].succ.remove(dst)
        self.blocks[dst].pred.remove(src)
        for phi in self.blocks[dst].phis:
            phi.args.pop(src, None)

    def prune_unreachable(self) -> int:
        """Mark blocks unreachable from the entry dead; returns count.

        The exit-label block is kept (codegen hangs the epilogue off that
        label), just emptied and detached like any other dead block.
        """
        reachable = {0}
        stack = [0]
        while stack:
            for succ in self.blocks[stack.pop()].succ:
                if succ not in reachable:
                    reachable.add(succ)
                    stack.append(succ)
        removed = 0
        for block in self.blocks:
            if block.dead or block.index in reachable:
                continue
            if block.label == self.func.exit_label:
                for succ in list(block.succ):
                    self.remove_edge(block.index, succ)
                block.instrs = []
                block.phis = []
                continue
            removed += 1
            block.dead = True
            for succ in list(block.succ):
                self.remove_edge(block.index, succ)
            for pred in list(block.pred):
                self.remove_edge(pred, block.index)
            block.instrs = []
            block.phis = []
            self.layout.remove(block.index)
        if removed:
            self.recompute_dominators()
        return removed


# -- construction ------------------------------------------------------------


def _split_blocks(func: IrFunction) -> List[SsaBlock]:
    """Cut the linear body into SsaBlocks using the analyzer's CFG."""
    cfg = ir_cfg(func.body)
    blocks: List[SsaBlock] = []
    for b in cfg.blocks:
        instrs = [func.body[i] for i in range(b.start, b.end)]
        label = None
        if instrs and instrs[0].kind == "label":
            label = instrs[0].sym
            instrs = instrs[1:]
        block = SsaBlock(b.index, label, instrs)
        block.succ = list(b.succ)
        block.pred = list(b.pred)
        blocks.append(block)
    ssa = SsaFunction(func, blocks)
    # Dead code behind an unconditional return etc. never gets phis or
    # renaming; drop it up front (keeps the rest of the passes honest).
    ssa.prune_unreachable()
    return ssa


def _block_liveness(ssa: SsaFunction) -> Dict[int, Set[VReg]]:
    """Per-block live-in sets of *virtual* registers (pre-SSA names).

    Drives pruned phi insertion: a phi for ``v`` at join ``B`` is only
    needed when ``v`` is live into ``B``.
    """
    gen: Dict[int, Set[VReg]] = {}
    kill: Dict[int, Set[VReg]] = {}
    for block in ssa.live_blocks():
        g: Set[VReg] = set()
        k: Set[VReg] = set()
        for instr in block.instrs:
            for reg in instr.uses():
                if isinstance(reg, VReg) and not reg.precolored \
                        and reg not in k:
                    g.add(reg)
            dst = instr.dst
            if dst is not None and not dst.precolored:
                k.add(dst)
        gen[block.index] = g
        kill[block.index] = k
    live_in: Dict[int, Set[VReg]] = {b.index: set()
                                     for b in ssa.live_blocks()}
    changed = True
    while changed:
        changed = False
        for block in ssa.live_blocks():
            out: Set[VReg] = set()
            for succ in block.succ:
                out |= live_in[succ]
            new_in = gen[block.index] | (out - kill[block.index])
            if new_in != live_in[block.index]:
                live_in[block.index] = new_in
                changed = True
    return live_in


def _dominance_frontiers(ssa: SsaFunction) -> Dict[int, Set[int]]:
    df: Dict[int, Set[int]] = {b.index: set() for b in ssa.blocks}
    for block in ssa.live_blocks():
        if len(block.pred) < 2:
            continue
        target_idom = ssa.idom[block.index]
        for pred in block.pred:
            runner: Optional[int] = pred
            while runner is not None and runner != target_idom:
                df[runner].add(block.index)
                if runner == 0:
                    break
                runner = ssa.idom[runner]
    return df


def _rewrite_use(instr: IrInstr, field: str, stacks, undef, func) -> None:
    reg = getattr(instr, field)
    if not isinstance(reg, VReg) or reg.precolored:
        return
    stack = stacks.get(reg)
    if stack:
        setattr(instr, field, stack[-1])
    else:
        setattr(instr, field, _undef_for(reg, undef, func))


def _undef_for(var: VReg, undef: Dict[VReg, VReg],
               func: IrFunction) -> VReg:
    """SSA name for a variable used on a path with no definition.

    Lowering initialises every register-resident local at its
    declaration, so this only triggers for hand-built IR; semantics
    match lowering's default (zero).  The defining ``li``/``lfi`` is
    collected in *undef* and spliced into the entry block after the
    renaming walk (never mid-iteration).
    """
    name = undef.get(var)
    if name is None:
        name = func.new_vreg(var.is_float)
        undef[var] = name
    return name


def build_ssa(func: IrFunction) -> SsaFunction:
    """Convert *func* (linear IR) into pruned SSA form."""
    ssa = _split_blocks(func)
    live_in = _block_liveness(ssa)
    df = _dominance_frontiers(ssa)

    # Definition sites per variable (virtual regs only).
    defsites: Dict[VReg, Set[int]] = {}
    for block in ssa.live_blocks():
        for instr in block.instrs:
            dst = instr.dst
            if dst is not None and not dst.precolored:
                defsites.setdefault(dst, set()).add(block.index)

    # Pruned phi placement: iterated dominance frontier gated on live-in.
    for var, sites in defsites.items():
        work = list(sites)
        has_phi: Set[int] = set()
        while work:
            site = work.pop()
            for join in df.get(site, ()):
                if join in has_phi or ssa.blocks[join].dead:
                    continue
                if var not in live_in[join]:
                    continue
                has_phi.add(join)
                args = {p: var for p in ssa.blocks[join].pred}
                ssa.blocks[join].phis.append(Phi(var, args))
                if join not in sites:
                    work.append(join)

    # Renaming: dominator-tree walk with per-variable name stacks.
    children = ssa.dom_children()
    stacks: Dict[VReg, List[VReg]] = {}
    undef: Dict[VReg, VReg] = {}

    def _push(var: VReg, pushed: List[VReg]) -> VReg:
        name = func.new_vreg(var.is_float)
        stacks.setdefault(var, []).append(name)
        pushed.append(var)
        return name

    walk: List[Tuple[int, Optional[List[VReg]]]] = [(0, None)]
    while walk:
        index, pushed = walk.pop()
        if pushed is not None:  # post-visit: pop this block's names
            for var in pushed:
                stacks[var].pop()
            continue
        block = ssa.blocks[index]
        pushed = []
        for phi in block.phis:
            phi.dst = _push(phi.dst, pushed)
        for instr in block.instrs:
            _rewrite_use(instr, "a", stacks, undef, func)
            if instr.kind == "bin":
                _rewrite_use(instr, "b", stacks, undef, func)
            if isinstance(instr.base, VReg):
                _rewrite_use(instr, "base", stacks, undef, func)
            for reg in instr.args:
                if not reg.precolored:
                    raise CompileError(
                        f"non-precolored arg {reg!r} in {instr!r}")
            dst = instr.dst
            if dst is not None and not dst.precolored:
                instr.dst = _push(dst, pushed)
        for succ in block.succ:
            for phi in ssa.blocks[succ].phis:
                var = phi.args.get(index)
                if var is None:
                    continue
                stack = stacks.get(var)
                if stack:
                    phi.args[index] = stack[-1]
                else:
                    phi.args[index] = _undef_for(var, undef, func)
        walk.append((index, pushed))
        for child in children[index]:
            walk.append((child, None))

    if undef:
        defs = []
        for var, name in undef.items():
            kind = "lfi" if var.is_float else "li"
            imm = 0.0 if var.is_float else 0
            defs.append(IrInstr(kind, dst=name, imm=imm,
                                is_float=var.is_float))
        ssa.blocks[0].instrs[:0] = defs
    return ssa


# -- verification ------------------------------------------------------------


def verify_ssa(ssa: SsaFunction) -> None:
    """Check core SSA invariants; raises :class:`CompileError` on breach.

    Used by the pass tests (and cheap enough to call after any pass while
    debugging): single definition per virtual register, definitions
    dominate uses, phi args keyed exactly by the live predecessors.
    """
    def_block: Dict[VReg, int] = {}
    def_pos: Dict[VReg, int] = {}
    for block in ssa.live_blocks():
        for phi in block.phis:
            if phi.dst in def_block:
                raise CompileError(f"multiple defs of {phi.dst!r}")
            def_block[phi.dst] = block.index
            def_pos[phi.dst] = -1
        for pos, instr in enumerate(block.instrs):
            dst = instr.dst
            if dst is not None and not dst.precolored:
                if dst in def_block:
                    raise CompileError(f"multiple defs of {dst!r}")
                def_block[dst] = block.index
                def_pos[dst] = pos

    # O(1) dominance queries: one DFS over the idom tree beats walking
    # the idom chain per use (the chains get deep in loop nests).  A
    # block the DFS never reaches keeps ``tin == 0`` and dominates
    # nothing, matching :func:`repro.analyze.cfg.dominates` (its idom
    # chain is ``None``-terminated without passing through the entry).
    n = len(ssa.blocks)
    tin = [0] * n
    tout = [0] * n
    children: List[List[int]] = [[] for _ in range(n)]
    for block in ssa.live_blocks():
        i = block.index
        parent = ssa.idom[i] if i < len(ssa.idom) else None
        if i != 0 and parent is not None:
            children[parent].append(i)
    clock = 1
    stack: List[Tuple[int, bool]] = [(0, False)]
    while stack:
        node, done = stack.pop()
        if done:
            tout[node] = clock
            clock += 1
            continue
        tin[node] = clock
        clock += 1
        stack.append((node, True))
        for child in children[node]:
            stack.append((child, False))

    def check_use(reg: VReg, block: int, pos: int, where) -> None:
        # *where* is the using instruction/phi, formatted only on error
        # (eager f-strings here dominated verification cost).
        if not isinstance(reg, VReg) or reg.precolored:
            return
        if reg not in def_block:
            raise CompileError(f"{where!r}: use of undefined {reg!r}")
        db = def_block[reg]
        if db == block:
            if not def_pos[reg] < pos:
                raise CompileError(f"{where!r}: {reg!r} used before def")
        elif not (tin[db] and tin[db] <= tin[block]
                  and tout[block] <= tout[db]):
            raise CompileError(
                f"{where!r}: def of {reg!r} (block {db}) does not "
                f"dominate use in block {block}")

    for block in ssa.live_blocks():
        for phi in block.phis:
            if phi.dst.precolored:
                raise CompileError(
                    f"phi {phi!r} defines a precolored register")
            if set(phi.args) != set(block.pred):
                raise CompileError(
                    f"phi {phi!r} args {sorted(phi.args)} do not match "
                    f"preds {sorted(block.pred)} of block {block.index}")
            # Length too: a duplicated predecessor edge would survive the
            # set comparison above with one arg silently covering both.
            if len(phi.args) != len(block.pred):
                raise CompileError(
                    f"phi {phi!r} has {len(phi.args)} args for "
                    f"{len(block.pred)} predecessor edges of block "
                    f"{block.index}")
            for pred, arg in phi.args.items():
                if isinstance(arg, VReg) and arg.precolored:
                    raise CompileError(
                        f"phi {phi!r} reads a precolored register")
                if isinstance(arg, VReg) \
                        and arg.is_float != phi.dst.is_float:
                    raise CompileError(
                        f"phi {phi!r} mixes register classes")
                # A phi use happens "at the end of" the predecessor.
                check_use(arg, pred, len(ssa.blocks[pred].instrs), phi)
        for pos, instr in enumerate(block.instrs):
            for reg in instr.uses():
                check_use(reg, block.index, pos, instr)


def verify_linear(func: IrFunction) -> None:
    """Structural sanity of the linear IR after SSA destruction.

    The full SSA invariants cannot hold post-destruction (the isolation
    temps deliberately have one definition per predecessor edge), so
    this checks what still must be true of ``func.body``: labels are
    unique and every ``jmp``/``br`` targets one that exists.  Raises
    :class:`CompileError` on breach.
    """
    labels: Set[str] = set()
    for instr in func.body:
        if instr.kind == "label":
            if instr.sym in labels:
                raise CompileError(
                    f"duplicate label {instr.sym!r} in {func.name!r}")
            labels.add(instr.sym)
    for instr in func.body:
        if instr.kind in ("jmp", "br") and instr.sym not in labels:
            raise CompileError(
                f"{instr.kind} to unknown label {instr.sym!r} "
                f"in {func.name!r}")
        if instr.kind == "br" and not isinstance(instr.a, VReg):
            raise CompileError(
                f"br without a condition register in {func.name!r}")


# -- destruction -------------------------------------------------------------


def destroy_ssa(ssa: SsaFunction) -> None:
    """Replace phis with copies and rebuild ``func.body`` linear IR."""
    func = ssa.func
    for block in ssa.live_blocks():
        if not block.phis:
            continue
        temps = [func.new_vreg(phi.dst.is_float) for phi in block.phis]
        for pred_index in block.pred:
            pred = ssa.blocks[pred_index]
            at = pred.terminator_at()
            for phi, temp in zip(block.phis, temps):
                arg = phi.args.get(pred_index)
                if arg is None:
                    raise CompileError(
                        f"phi {phi!r} missing arg for pred {pred_index}")
                pred.instrs.insert(
                    at, IrInstr("mov", dst=temp, a=arg,
                                is_float=temp.is_float))
                at += 1
        head = [IrInstr("mov", dst=phi.dst, a=temp,
                        is_float=temp.is_float)
                for phi, temp in zip(block.phis, temps)]
        block.instrs[:0] = head
        block.phis = []
    func.body = _linearize(ssa)


def _linearize(ssa: SsaFunction) -> List[IrInstr]:
    """Emit blocks in layout order, patching fallthrough with jmps.

    The exit-label block is forced last (codegen's epilogue contract);
    any block whose fallthrough successor is no longer adjacent gets an
    explicit ``jmp``.
    """
    order = [i for i in ssa.layout if not ssa.blocks[i].dead]
    exit_blocks = [i for i in order
                   if ssa.blocks[i].label == ssa.func.exit_label]
    for i in exit_blocks:
        order.remove(i)
        order.append(i)

    # Pass 1: decide which blocks need a patch jmp appended (fallthrough
    # successor no longer adjacent) and make sure every target has a
    # label *before* any emission.
    patches: Dict[int, str] = {}
    for pos, index in enumerate(order):
        block = ssa.blocks[index]
        last = block.instrs[-1] if block.instrs else None
        if last is not None and last.kind == "jmp":
            continue  # unconditional: no fallthrough to patch
        if last is not None and last.kind == "br":
            taken = ssa.block_by_label(last.sym).index
            fall = [s for s in block.succ if s != taken]
            # Degenerate br (both arms reach the same block): the
            # not-taken path still needs to get there physically.
            through = fall[0] if fall else taken
        else:
            fall = list(block.succ)
            if len(fall) > 1:
                raise CompileError(
                    f"block {index} has {len(fall)} fallthrough successors")
            if not fall:
                continue
            through = fall[0]
        nxt = order[pos + 1] if pos + 1 < len(order) else None
        if through != nxt:
            patches[index] = ssa.ensure_label(ssa.blocks[through])

    # Pass 2: emit.
    body: List[IrInstr] = []
    for index in order:
        block = ssa.blocks[index]
        if block.label is not None:
            body.append(IrInstr("label", sym=block.label))
        body.extend(block.instrs)
        if index in patches:
            body.append(IrInstr("jmp", sym=patches[index]))
    return body

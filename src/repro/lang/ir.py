"""Intermediate representation: virtual registers and linear IR.

The IR is a linear list of instructions per function with labels; basic
blocks are recovered by the liveness pass.  Virtual registers are typed
(int-like vs float); precolored registers (ABI argument/return registers at
call boundaries) are ordinary VRegs with ``phys`` set to a flat machine
register index.

Instruction kinds and their operands:

====================  =======================================================
kind                  meaning
====================  =======================================================
``li``                dst <- imm (int)
``lfi``               dst <- imm (float constant)
``mov``               dst <- a
``bin``               dst <- a <op> b; op in BIN_INT_OPS / BIN_FLOAT_OPS
``cvt``               dst <- convert(a); op is 'if' (int→float) or 'fi'
``load``/``store``    memory access; ``base`` is a VReg, ('frame', slot) or
                      ('global', name); ``imm`` is the byte offset;
                      ``locality`` is True/False/None (compile-time bit)
``la_frame``          dst <- $sp + slot offset (address of a frame object)
``la_global``         dst <- address of a global
``call``              call ``sym``; args already moved to precolored regs
``ret``               jump to the function epilogue
``label``             branch target; ``sym`` is the label name
``jmp``               unconditional branch to ``sym``
``br``                branch to ``sym`` when a != 0 (or == 0 if ``invert``)
====================  =======================================================
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

BIN_INT_OPS = (
    "add", "sub", "mul", "div", "rem", "and", "or", "xor",
    "shl", "shr", "sra", "slt", "sle", "sgt", "sge", "seq", "sne",
)
BIN_FLOAT_OPS = (
    "fadd", "fsub", "fmul", "fdiv",
    "fslt", "fsle", "fsgt", "fsge", "fseq", "fsne",
)


class VReg:
    """A virtual (or precolored physical) register."""

    __slots__ = ("id", "is_float", "phys")

    def __init__(self, id_: int, is_float: bool = False,
                 phys: Optional[int] = None):
        self.id = id_
        self.is_float = is_float
        self.phys = phys

    @property
    def precolored(self) -> bool:
        """True when this VReg is pinned to a physical register."""
        return self.phys is not None

    def __repr__(self) -> str:
        if self.precolored:
            from repro.isa.registers import reg_name

            return f"<{reg_name(self.phys)}>"
        prefix = "f" if self.is_float else "v"
        return f"%{prefix}{self.id}"


class FrameSlot:
    """A stack-frame object (addressed local, array, or spill slot)."""

    __slots__ = ("name", "words", "offset", "is_spill")

    def __init__(self, name: str, words: int, is_spill: bool = False):
        self.name = name
        self.words = words
        self.offset = -1  # byte offset from $sp, assigned by codegen
        self.is_spill = is_spill

    def __repr__(self) -> str:
        kind = "spill" if self.is_spill else "local"
        return f"FrameSlot({self.name!r}, {self.words}w, {kind})"


#: A memory base operand in load/store IR instructions.
Base = Union[VReg, Tuple[str, object]]


class IrInstr:
    """One IR instruction (see module docstring for the field layout)."""

    __slots__ = ("kind", "dst", "a", "b", "op", "imm", "sym", "base",
                 "args", "locality", "invert", "is_float", "depth")

    def __init__(self, kind: str, dst: Optional[VReg] = None,
                 a: Optional[VReg] = None, b: Optional[VReg] = None,
                 op: str = "", imm=0, sym: str = "",
                 base: Optional[Base] = None,
                 args: Optional[List[VReg]] = None,
                 locality: Optional[bool] = False,
                 invert: bool = False, is_float: bool = False,
                 depth: int = 0):
        self.kind = kind
        self.dst = dst
        self.a = a
        self.b = b
        self.op = op
        self.imm = imm
        self.sym = sym
        self.base = base
        self.args = args if args is not None else []
        self.locality = locality
        self.invert = invert
        self.is_float = is_float
        self.depth = depth

    # -- dataflow helpers ---------------------------------------------------

    def uses(self) -> List[VReg]:
        """VRegs read by this instruction."""
        kind = self.kind
        if kind == "mov" or kind == "cvt":
            return [self.a]
        if kind == "bin":
            return [self.a, self.b]
        if kind == "bini":
            return [self.a]
        if kind == "load":
            return [self.base] if isinstance(self.base, VReg) else []
        if kind == "store":
            out = [self.a]
            if isinstance(self.base, VReg):
                out.append(self.base)
            return out
        if kind == "br":
            return [self.a]
        if kind == "call":
            return list(self.args)
        if kind == "ret":
            return list(self.args)
        return []

    def defs(self) -> List[VReg]:
        """VRegs written by this instruction."""
        if self.dst is not None:
            return [self.dst]
        return []

    def __repr__(self) -> str:
        parts = [self.kind]
        if self.op:
            parts.append(self.op)
        if self.dst is not None:
            parts.append(f"dst={self.dst}")
        if self.a is not None:
            parts.append(f"a={self.a}")
        if self.b is not None:
            parts.append(f"b={self.b}")
        if self.sym:
            parts.append(f"sym={self.sym}")
        if self.base is not None:
            parts.append(f"base={self.base}")
        return f"IrInstr({' '.join(parts)})"


class IrFunction:
    """A function after lowering: linear IR plus frame bookkeeping."""

    def __init__(self, name: str, has_calls: bool = False):
        self.name = name
        self.body: List[IrInstr] = []
        self.slots: List[FrameSlot] = []
        self.has_calls = has_calls
        self.max_outgoing_args = 0
        self.num_params = 0  # set by lowering; >4 means stack-passed args
        self.exit_label = f"{name}__exit"
        self._next_vreg = 0

    def new_vreg(self, is_float: bool = False) -> VReg:
        """Allocate a fresh virtual register."""
        self._next_vreg += 1
        return VReg(self._next_vreg, is_float)

    def new_slot(self, name: str, words: int,
                 is_spill: bool = False) -> FrameSlot:
        """Allocate a stack-frame slot."""
        slot = FrameSlot(name, words, is_spill)
        self.slots.append(slot)
        return slot

    def emit(self, instr: IrInstr) -> IrInstr:
        """Append one instruction."""
        self.body.append(instr)
        return instr

    def __repr__(self) -> str:
        return f"IrFunction({self.name!r}, {len(self.body)} instrs)"

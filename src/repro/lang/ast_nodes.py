"""AST node classes and the mini-C type representation."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class Ty:
    """A mini-C type: ``base`` plus pointer depth.

    ``Ty('int')`` is int, ``Ty('int', 1)`` is ``int*``, etc.  Array-ness is
    a property of declarations, not of this type object; an array of T
    decays to ``T*`` in expressions.
    """

    __slots__ = ("base", "ptr")

    def __init__(self, base: str, ptr: int = 0):
        if base not in ("int", "float", "void"):
            raise ValueError(f"unknown base type {base!r}")
        self.base = base
        self.ptr = ptr

    @property
    def is_pointer(self) -> bool:
        """True for any pointer type."""
        return self.ptr > 0

    @property
    def is_float(self) -> bool:
        """True for the scalar float type (not float pointers)."""
        return self.base == "float" and self.ptr == 0

    @property
    def is_int_like(self) -> bool:
        """True for types held in integer registers (int and pointers)."""
        return self.ptr > 0 or self.base == "int"

    @property
    def is_void(self) -> bool:
        """True for plain void."""
        return self.base == "void" and self.ptr == 0

    def deref(self) -> "Ty":
        """The pointee type; raises on non-pointers."""
        if not self.is_pointer:
            raise ValueError(f"cannot dereference {self}")
        return Ty(self.base, self.ptr - 1)

    def pointer_to(self) -> "Ty":
        """The pointer-to-this type."""
        return Ty(self.base, self.ptr + 1)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ty):
            return NotImplemented
        return self.base == other.base and self.ptr == other.ptr

    def __hash__(self) -> int:
        return hash((self.base, self.ptr))

    def __repr__(self) -> str:
        return self.base + "*" * self.ptr


class Node:
    """Base class for AST nodes."""

    __slots__ = ("line",)

    def __init__(self, line: int = 0):
        self.line = line


# --------------------------------------------------------------- expressions

class Expr(Node):
    """Base class for expressions; ``ty`` is set by the semantic pass."""

    __slots__ = ("ty",)

    def __init__(self, line: int = 0):
        super().__init__(line)
        self.ty: Optional[Ty] = None


class IntLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, line: int = 0):
        super().__init__(line)
        self.value = value


class FloatLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float, line: int = 0):
        super().__init__(line)
        self.value = value


class Ident(Expr):
    """A variable reference; ``symbol`` is bound by the semantic pass."""

    __slots__ = ("name", "symbol")

    def __init__(self, name: str, line: int = 0):
        super().__init__(line)
        self.name = name
        self.symbol = None


class Unary(Expr):
    """Unary ``-``, ``!``, ``*`` (deref), ``&`` (address-of)."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Binary(Expr):
    """All binary arithmetic/comparison/logical operators."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class Assign(Expr):
    """``target = value`` (``op`` is '', '+' or '-' for compound forms)."""

    __slots__ = ("op", "target", "value")

    def __init__(self, target: Expr, value: Expr, op: str = "", line: int = 0):
        super().__init__(line)
        self.op = op
        self.target = target
        self.value = value


class Call(Expr):
    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expr], line: int = 0):
        super().__init__(line)
        self.name = name
        self.args = list(args)


class Index(Expr):
    """``base[index]`` where base is a pointer or array."""

    __slots__ = ("base", "index")

    def __init__(self, base: Expr, index: Expr, line: int = 0):
        super().__init__(line)
        self.base = base
        self.index = index


# ----------------------------------------------------------------- statements

class Stmt(Node):
    __slots__ = ()


class Block(Stmt):
    __slots__ = ("stmts",)

    def __init__(self, stmts: Sequence[Stmt], line: int = 0):
        super().__init__(line)
        self.stmts = list(stmts)


class VarDecl(Stmt):
    """A local declaration; ``symbol`` is bound by the semantic pass."""

    __slots__ = ("ty", "name", "array_size", "init", "symbol")

    def __init__(self, ty: Ty, name: str, array_size: Optional[int],
                 init: Optional[Expr], line: int = 0):
        super().__init__(line)
        self.ty = ty
        self.name = name
        self.array_size = array_size
        self.init = init
        self.symbol = None


class If(Stmt):
    __slots__ = ("cond", "then", "els")

    def __init__(self, cond: Expr, then: Stmt, els: Optional[Stmt],
                 line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.els = els


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: Stmt, line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.body = body


class For(Stmt):
    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init: Optional[Stmt], cond: Optional[Expr],
                 step: Optional[Expr], body: Stmt, line: int = 0):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr], line: int = 0):
        super().__init__(line)
        self.value = value


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, line: int = 0):
        super().__init__(line)
        self.expr = expr


# ----------------------------------------------------------------- top level

class Param:
    """One function parameter; ``symbol`` is bound by the semantic pass."""

    __slots__ = ("ty", "name", "symbol")

    def __init__(self, ty: Ty, name: str):
        self.ty = ty
        self.name = name
        self.symbol = None

    def __repr__(self) -> str:
        return f"Param({self.ty}, {self.name!r})"


class FuncDef(Node):
    __slots__ = ("ret_ty", "name", "params", "body")

    def __init__(self, ret_ty: Ty, name: str, params: Sequence[Param],
                 body: Block, line: int = 0):
        super().__init__(line)
        self.ret_ty = ret_ty
        self.name = name
        self.params = list(params)
        self.body = body


class GlobalVar(Node):
    __slots__ = ("ty", "name", "array_size", "init")

    def __init__(self, ty: Ty, name: str, array_size: Optional[int],
                 init: Optional[List[float]], line: int = 0):
        super().__init__(line)
        self.ty = ty
        self.name = name
        self.array_size = array_size
        self.init = init


class ProgramAst(Node):
    __slots__ = ("globals", "functions")

    def __init__(self, globals_: Sequence[GlobalVar],
                 functions: Sequence[FuncDef]):
        super().__init__(0)
        self.globals = list(globals_)
        self.functions = list(functions)

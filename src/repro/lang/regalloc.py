"""Chaitin-Briggs graph-coloring register allocation.

Virtual registers are colored with physical machine registers; nodes that
cannot be colored are **spilled** to stack-frame slots, with a load inserted
before each use and a store after each def, and the allocation re-run.
The spill traffic this produces is exactly the compiler-generated local
variable traffic the paper studies (its Section 2.2.1 cites up to 20% of
executed instructions being spill code).

Calls clobber the caller-saved registers, so any value live across a call
is forced into a callee-saved register or spilled — producing the
save/restore traffic of real calling conventions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import CompileError
from repro.isa.registers import (
    ALLOCATABLE_FPRS,
    ALLOCATABLE_GPRS,
    CALLEE_SAVED_FPRS,
    CALLER_SAVED,
    FPR_BASE,
)
from repro.lang.ir import IrFunction, IrInstr, VReg
from repro.lang.liveness import analyze_liveness, instruction_liveness

#: Integer palette (caller-saved temporaries first, then callee-saved).
INT_PALETTE: Tuple[int, ...] = tuple(int(r) for r in ALLOCATABLE_GPRS)

#: Float palette.
FLOAT_PALETTE: Tuple[int, ...] = tuple(ALLOCATABLE_FPRS) + tuple(
    CALLEE_SAVED_FPRS
)

#: Registers clobbered by a full call.
_CALL_CLOBBER_INT = frozenset(int(r) for r in CALLER_SAVED)
_CALL_CLOBBER_FLOAT = frozenset(range(FPR_BASE, FPR_BASE + 20))

#: Registers clobbered by an intrinsic (syscall-based) call.
_INTRINSIC_CLOBBER_INT = frozenset({2, 4})  # $v0, $a0
_INTRINSIC_CLOBBER_FLOAT = frozenset({FPR_BASE + 12})

_MAX_ROUNDS = 16


class AllocationResult:
    """Output of register allocation for one function."""

    def __init__(self, assignment: Dict[VReg, int], spill_rounds: int,
                 spilled: int):
        self.assignment = assignment
        self.spill_rounds = spill_rounds
        self.spilled = spilled

    def color(self, reg: VReg) -> int:
        """Physical register assigned to *reg* (precolored pass through)."""
        if reg.precolored:
            return reg.phys
        return self.assignment[reg]

    def used_callee_saved(self) -> Set[int]:
        """Callee-saved registers the allocation actually used."""
        from repro.isa.registers import CALLEE_SAVED

        callee = {int(r) for r in CALLEE_SAVED} | set(CALLEE_SAVED_FPRS)
        return {c for c in self.assignment.values() if c in callee}


class _Graph:
    """Interference graph over the virtual registers of one class."""

    def __init__(self, palette: Tuple[int, ...]):
        self.palette = palette
        self.adj: Dict[VReg, Set[VReg]] = {}
        self.forbidden: Dict[VReg, Set[int]] = {}
        self.cost: Dict[VReg, float] = {}

    def ensure(self, node: VReg) -> None:
        if node not in self.adj:
            self.adj[node] = set()
            self.forbidden[node] = set()
            self.cost[node] = 0.0

    def add_edge(self, a: VReg, b: VReg) -> None:
        if a is b:
            return
        self.ensure(a)
        self.ensure(b)
        self.adj[a].add(b)
        self.adj[b].add(a)

    def forbid(self, node: VReg, color: int) -> None:
        self.ensure(node)
        self.forbidden[node].add(color)


def _is_virtual(reg: Optional[VReg]) -> bool:
    return reg is not None and not reg.precolored


def _clobbers(instr: IrInstr) -> Tuple[frozenset, frozenset]:
    if instr.sym.startswith("@"):
        return _INTRINSIC_CLOBBER_INT, _INTRINSIC_CLOBBER_FLOAT
    return _CALL_CLOBBER_INT, _CALL_CLOBBER_FLOAT


def build_graphs(func: IrFunction) -> Tuple[_Graph, _Graph]:
    """Build the int and float interference graphs for *func*."""
    int_graph = _Graph(INT_PALETTE)
    float_graph = _Graph(FLOAT_PALETTE)

    def graph_of(reg: VReg) -> _Graph:
        return float_graph if reg.is_float else int_graph

    # Every virtual register is a node even if it never interferes.
    for instr in func.body:
        for reg in instr.uses() + instr.defs():
            if _is_virtual(reg):
                graph = graph_of(reg)
                graph.ensure(reg)
                graph.cost[reg] += 10.0 ** min(instr.depth, 4)

    blocks = analyze_liveness(func)
    for block in blocks:
        for instr, live_after in instruction_liveness(block):
            if instr.kind == "call":
                clobber_int, clobber_float = _clobbers(instr)
                for live in live_after:
                    if not _is_virtual(live):
                        continue
                    graph = graph_of(live)
                    clobbers = (clobber_float if live.is_float
                                else clobber_int)
                    for color in clobbers:
                        graph.forbid(live, color)
            for dst in instr.defs():
                move_src = instr.a if instr.kind == "mov" else None
                for live in live_after:
                    if live is dst or live is move_src:
                        continue
                    if live.is_float != dst.is_float:
                        continue
                    if _is_virtual(dst) and _is_virtual(live):
                        graph_of(dst).add_edge(dst, live)
                    elif _is_virtual(dst) and live.precolored:
                        graph_of(dst).forbid(dst, live.phys)
                    elif dst.precolored and _is_virtual(live):
                        graph_of(live).forbid(live, dst.phys)
    return int_graph, float_graph


def _color_graph(graph: _Graph) -> Tuple[Dict[VReg, int], List[VReg]]:
    """Chaitin-Briggs simplify/select; returns (assignment, spills)."""
    adj = {node: set(neigh) for node, neigh in graph.adj.items()}
    degree = {node: len(neigh) for node, neigh in adj.items()}
    k = len(graph.palette)
    work = set(adj)
    stack: List[VReg] = []

    def remove(node: VReg) -> None:
        work.discard(node)
        for neighbour in adj[node]:
            degree[neighbour] -= 1
            adj[neighbour].discard(node)
        adj[node] = set()

    while work:
        simplifiable = [n for n in work if degree[n] < k]
        if simplifiable:
            # Deterministic order keeps compilations reproducible.
            node = min(simplifiable, key=lambda n: n.id)
        else:
            # Optimistic (Briggs) potential spill: cheapest per degree.
            node = min(
                work,
                key=lambda n: (graph.cost[n] / (degree[n] + 1), n.id),
            )
        stack.append(node)
        remove(node)

    assignment: Dict[VReg, int] = {}
    spills: List[VReg] = []
    while stack:
        node = stack.pop()
        taken = set(graph.forbidden[node])
        for neighbour in graph.adj[node]:
            color = assignment.get(neighbour)
            if color is not None:
                taken.add(color)
        chosen = next((c for c in graph.palette if c not in taken), None)
        if chosen is None:
            spills.append(node)
        else:
            assignment[node] = chosen
    return assignment, spills


def _rewrite_spills(func: IrFunction, spills: List[VReg]) -> None:
    """Insert spill loads/stores, giving each occurrence a fresh temp."""
    slots = {
        node: func.new_slot(f"spill_v{node.id}", 1, is_spill=True)
        for node in spills
    }
    spill_set = set(spills)
    new_body: List[IrInstr] = []
    for instr in func.body:
        loads: List[IrInstr] = []
        replacements: Dict[VReg, VReg] = {}
        for reg in instr.uses():
            if reg in spill_set and reg not in replacements:
                temp = func.new_vreg(reg.is_float)
                replacements[reg] = temp
                loads.append(IrInstr(
                    kind="load", dst=temp, base=("frame", slots[reg]),
                    imm=0, locality=True, is_float=reg.is_float,
                    depth=instr.depth,
                ))
        _substitute_uses(instr, replacements)
        new_body.extend(loads)
        new_body.append(instr)
        for reg in instr.defs():
            if reg in spill_set:
                temp = func.new_vreg(reg.is_float)
                instr.dst = temp
                new_body.append(IrInstr(
                    kind="store", a=temp, base=("frame", slots[reg]),
                    imm=0, locality=True, is_float=reg.is_float,
                    depth=instr.depth,
                ))
    func.body = new_body


def _substitute_uses(instr: IrInstr, table: Dict[VReg, VReg]) -> None:
    if not table:
        return
    if instr.a in table:
        instr.a = table[instr.a]
    if instr.b in table:
        instr.b = table[instr.b]
    if isinstance(instr.base, VReg) and instr.base in table:
        instr.base = table[instr.base]
    if instr.args:
        instr.args = [table.get(reg, reg) for reg in instr.args]


def allocate(func: IrFunction) -> AllocationResult:
    """Run register allocation to a fixpoint (spilling as needed)."""
    total_spilled = 0
    for round_number in range(_MAX_ROUNDS):
        int_graph, float_graph = build_graphs(func)
        int_assign, int_spills = _color_graph(int_graph)
        float_assign, float_spills = _color_graph(float_graph)
        spills = int_spills + float_spills
        if not spills:
            assignment = dict(int_assign)
            assignment.update(float_assign)
            return AllocationResult(assignment, round_number, total_spilled)
        total_spilled += len(spills)
        _rewrite_spills(func, spills)
    raise CompileError(
        f"register allocation did not converge for {func.name!r}"
    )

"""Set-associative write-back caches (tag state only).

The timing simulator never needs data contents — the functional VM already
computed every value — so a cache here is pure tag/replacement state, which
keeps simulation fast.  Replacement is LRU; the write policy is write-back,
write-allocate (the SimpleScalar default the paper's simulator derives from).
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.errors import ConfigError
from repro.stats.counters import CounterSet
from repro.utils import is_power_of_two, log2_int


class CacheGeometry:
    """Size/shape parameters of one cache."""

    __slots__ = ("size_bytes", "assoc", "line_bytes", "num_sets",
                 "line_shift", "set_mask")

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int = 32):
        if not is_power_of_two(line_bytes):
            raise ConfigError(f"line size must be a power of two: {line_bytes}")
        if size_bytes <= 0 or size_bytes % (assoc * line_bytes):
            raise ConfigError(
                f"cache size {size_bytes} not divisible by "
                f"assoc*line ({assoc}x{line_bytes})"
            )
        num_sets = size_bytes // (assoc * line_bytes)
        if not is_power_of_two(num_sets):
            raise ConfigError(f"number of sets must be a power of two: {num_sets}")
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = num_sets
        self.line_shift = log2_int(line_bytes)
        self.set_mask = num_sets - 1

    def line_of(self, addr: int) -> int:
        """Line (block) number containing byte address *addr*."""
        return addr >> self.line_shift

    def set_of(self, line: int) -> int:
        """Set index of line number *line*."""
        return line & self.set_mask

    def __repr__(self) -> str:
        return (
            f"CacheGeometry({self.size_bytes}B, {self.assoc}-way, "
            f"{self.line_bytes}B lines, {self.num_sets} sets)"
        )


class Cache:
    """LRU set-associative cache over line tags.

    ``access`` returns True on a hit.  On a miss the line is allocated
    immediately (fill-on-miss, standard for latency-annotating simulators)
    and the evicted dirty victim, if any, is counted as a writeback.
    """

    def __init__(self, name: str, geometry: CacheGeometry,
                 counters: Optional[CounterSet] = None):
        self.name = name
        self.geom = geometry
        self.counters = counters if counters is not None else CounterSet()
        # Each set is an MRU-ordered list of line numbers.
        self._sets: List[List[int]] = [[] for _ in range(geometry.num_sets)]
        self._dirty: Set[int] = set()
        # Counter names precomputed (an f-string per access is measurable
        # on the simulator's hot path), bumped through the CounterSet's
        # backing dict; the lazy get() keeps never-bumped names absent.
        self._counts = self.counters._counts
        self._k_accesses = name + ".accesses"
        self._k_hits = name + ".hits"
        self._k_misses = name + ".misses"
        self._k_writebacks = name + ".writebacks"

    # -- queries -------------------------------------------------------------

    def present(self, addr: int) -> bool:
        """True when the line holding *addr* is resident (no LRU update)."""
        line = self.geom.line_of(addr)
        return line in self._sets[self.geom.set_of(line)]

    def access(self, addr: int, is_store: bool) -> bool:
        """Look up *addr*; allocate on miss.  Returns hit/miss."""
        geom = self.geom
        line = addr >> geom.line_shift
        ways = self._sets[line & geom.set_mask]
        counts = self._counts
        key = self._k_accesses
        counts[key] = counts.get(key, 0) + 1
        if line in ways:
            key = self._k_hits
            counts[key] = counts.get(key, 0) + 1
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
            if is_store:
                self._dirty.add(line)
            return True
        key = self._k_misses
        counts[key] = counts.get(key, 0) + 1
        self._fill(line, ways)
        if is_store:
            self._dirty.add(line)
        return False

    def _fill(self, line: int, ways: List[int]) -> None:
        if len(ways) >= self.geom.assoc:
            victim = ways.pop()
            if victim in self._dirty:
                self._dirty.discard(victim)
                counts = self._counts
                key = self._k_writebacks
                counts[key] = counts.get(key, 0) + 1
        ways.insert(0, line)

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding *addr*; returns True if it was resident."""
        geom = self.geom
        line = geom.line_of(addr)
        ways = self._sets[geom.set_of(line)]
        if line in ways:
            ways.remove(line)
            self._dirty.discard(line)
            return True
        return False

    def flush(self) -> int:
        """Empty the cache, returning the number of dirty lines written back."""
        dirty = len(self._dirty)
        self.counters.add(f"{self.name}.writebacks", dirty)
        for ways in self._sets:
            ways.clear()
        self._dirty.clear()
        return dirty

    # -- statistics -----------------------------------------------------------

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.counters.get(f"{self.name}.accesses")

    @property
    def hits(self) -> int:
        """Lookups that hit."""
        return self.counters.get(f"{self.name}.hits")

    @property
    def misses(self) -> int:
        """Lookups that missed."""
        return self.counters.get(f"{self.name}.misses")

    @property
    def miss_rate(self) -> float:
        """misses / accesses (0.0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def resident_lines(self) -> int:
        """Number of valid lines currently cached."""
        return sum(len(ways) for ways in self._sets)

    def __repr__(self) -> str:
        return f"Cache({self.name!r}, {self.geom!r})"

"""The :class:`MemorySystem` facade: the whole data-memory stream.

Everything a core needs to issue loads and stores lives behind this one
object: the two age-ordered access queues (LSQ and, when decoupled, the
LVAQ from :mod:`repro.pipeline.memqueue`), the two first-level structures
with their port arbiters, and the shared L2/bus/memory path
(:mod:`repro.mem.hierarchy`).  The staged kernel's memory and commit
stages bind its internals once per run; everything else — experiments,
tests, tools — goes through the attributes and helpers here.

Port arbitration is pluggable per structure (``l1_port_policy`` /
``lvc_port_policy`` on :class:`~repro.mem.hierarchy.MemSystemConfig`); the
facade aggregates whatever conflict accounting the chosen arbiters keep so
callers don't have to know which policy is live.
"""

from __future__ import annotations

from typing import Optional

from repro.mem.hierarchy import MemoryHierarchy, MemSystemConfig
from repro.pipeline.memqueue import MemQueue
from repro.stats.counters import CounterSet


class MemorySystem:
    """Access queues + first-level caches + ports + L2 path, as one unit.

    The constructor takes queue sizes rather than a ``MachineConfig`` so
    ``repro.mem`` never imports ``repro.core`` (the dependency points the
    other way).
    """

    def __init__(self, config: MemSystemConfig, lsq_size: int,
                 lvaq_size: int = 0,
                 counters: Optional[CounterSet] = None):
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        self.hierarchy = MemoryHierarchy(config, self.counters)
        self.lsq = MemQueue(lsq_size, "lsq")
        # Always materialised: a zero-size queue is inert (dispatch never
        # steers to it), and the core binds its internals unconditionally.
        self.lvaq = MemQueue(lvaq_size, "lvaq")

    # -- convenient views over the hierarchy --------------------------------

    @property
    def l1_ports(self):
        return self.hierarchy.l1_ports

    @property
    def lvc_ports(self):
        return self.hierarchy.lvc_ports

    @property
    def lvc_enabled(self) -> bool:
        return self.config.lvc_enabled

    def new_cycle(self) -> None:
        """Refill every port budget; call once at the top of each cycle."""
        self.hierarchy.new_cycle()

    # -- aggregate statistics ------------------------------------------------

    def conflict_stalls(self) -> int:
        """Total bank/port conflicts across both first-level arbiters.

        Only contended policies keep conflict counts; ideal arbitration
        contributes zero, so the default configuration never reports the
        counter at all.
        """
        total = getattr(self.hierarchy.l1_ports, "conflicts", 0)
        lvc_ports = self.hierarchy.lvc_ports
        if lvc_ports is not None:
            total += getattr(lvc_ports, "conflicts", 0)
        return total

    def occupancy(self) -> int:
        """Resident entries across both queues."""
        return len(self.lsq) + len(self.lvaq)

    def __repr__(self) -> str:
        return f"MemorySystem{self.config.notation()}"

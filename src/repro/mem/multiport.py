"""Realistic multi-port implementations (paper Section 1).

The paper's evaluation assumes *ideal* cache ports, but its motivation
rests on how the real techniques fall short:

* **time-division multiplexing** (DEC 21264): the array runs at a clock
  multiple — indistinguishable from ideal ports until the multiple stops
  scaling (the paper notes it "does not scale beyond ... two");
* **replication** (DEC 21164): loads use any copy, but every store must
  broadcast to all copies, consuming all ports at once;
* **interleaving/banking** (MIPS R10000): requests to the same bank in one
  cycle conflict.

These arbiters let the machine model use any of them in place of the
ideal ports, enabling the ablation the paper argues from:
``repro.experiments.ablation_multiport``.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigError
from repro.mem.ports import PortArbiter
from repro.utils import is_power_of_two


class BankedPorts(PortArbiter):
    """An N-bank interleaved cache: one access per bank per cycle.

    Banks are selected by low line-address bits; two same-cycle requests
    to the same bank conflict even when other banks sit idle.
    """

    __slots__ = ("banks", "_bank_busy", "bank_conflicts")

    def __init__(self, banks: int):
        if not is_power_of_two(banks):
            raise ConfigError(f"bank count must be a power of two: {banks}")
        super().__init__(banks)
        self.banks = banks
        self._bank_busy: List[bool] = [False] * banks
        self.bank_conflicts = 0

    def new_cycle(self) -> None:
        super().new_cycle()
        self._bank_busy = [False] * self.banks

    def try_take(self, count: int = 1, line: int = 0,
                 is_store: bool = False) -> bool:
        if count != 1:
            raise ValueError("banked caches service one request per bank")
        bank = line & (self.banks - 1)
        if self._bank_busy[bank]:
            self.bank_conflicts += 1
            return False
        if not super().try_take(1):
            return False
        self._bank_busy[bank] = True
        return True


class ReplicatedPorts(PortArbiter):
    """N replicated cache copies: N loads/cycle, but stores broadcast.

    A store must write every copy to keep them coherent, so it consumes
    the whole cycle's bandwidth; any port already used this cycle blocks
    the store (and vice versa).
    """

    __slots__ = ("copies", "store_blocks")

    def __init__(self, copies: int):
        super().__init__(copies)
        self.copies = copies
        self.store_blocks = 0

    def try_take(self, count: int = 1, line: int = 0,
                 is_store: bool = False) -> bool:
        if is_store:
            # needs every copy's write port at once
            if self.available < self.copies:
                self.store_blocks += 1
                return False
            return super().try_take(self.copies)
        return super().try_take(count)


class IdealPorts(PortArbiter):
    """The paper's assumption: any N requests per cycle (also models
    time-division multiplexing at small N)."""

    def try_take(self, count: int = 1, line: int = 0,
                 is_store: bool = False) -> bool:
        return super().try_take(count)


#: Policy-name -> constructor used by the memory hierarchy.
PORT_POLICIES = {
    "ideal": IdealPorts,
    "banked": BankedPorts,
    "replicated": ReplicatedPorts,
}


def make_ports(policy: str, ports: int) -> PortArbiter:
    """Construct a port arbiter for *policy* with *ports* ports/banks."""
    try:
        ctor = PORT_POLICIES[policy]
    except KeyError:
        raise ConfigError(
            f"unknown port policy {policy!r}; "
            f"known: {', '.join(sorted(PORT_POLICIES))}"
        ) from None
    return ctor(ports)

"""Memory hierarchy: caches, ports, MSHRs, L2, and main memory."""

from repro.mem.cache import Cache, CacheGeometry
from repro.mem.ports import (
    PORT_POLICIES,
    BankedPorts,
    FinitePorts,
    PortArbiter,
    ReplicatedPorts,
    make_ports,
)
from repro.mem.hierarchy import (
    AccessResult,
    MemoryHierarchy,
    MemSystemConfig,
    MshrFile,
)
from repro.mem.system import MemorySystem

__all__ = [
    "Cache",
    "CacheGeometry",
    "PortArbiter",
    "FinitePorts",
    "BankedPorts",
    "ReplicatedPorts",
    "PORT_POLICIES",
    "make_ports",
    "MshrFile",
    "AccessResult",
    "MemoryHierarchy",
    "MemSystemConfig",
    "MemorySystem",
]

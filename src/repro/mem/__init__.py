"""Memory hierarchy: caches, ports, MSHRs, L2, and main memory."""

from repro.mem.cache import Cache, CacheGeometry
from repro.mem.ports import PortArbiter
from repro.mem.mshr import MshrFile
from repro.mem.hierarchy import AccessResult, MemoryHierarchy

__all__ = [
    "Cache",
    "CacheGeometry",
    "PortArbiter",
    "MshrFile",
    "AccessResult",
    "MemoryHierarchy",
]

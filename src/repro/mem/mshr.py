"""Miss status holding registers (lockup-free cache support).

Both L1 caches in the paper are lock-up free.  An MSHR file tracks lines
with outstanding fills; a second miss to an in-flight line merges into the
existing entry instead of issuing a new L2 request.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigError


class MshrFile:
    """Outstanding-miss table keyed by line number."""

    __slots__ = ("entries", "_pending", "merged", "allocations", "full_events")

    def __init__(self, entries: int = 8):
        if entries <= 0:
            raise ConfigError(f"MSHR count must be positive: {entries}")
        self.entries = entries
        self._pending: Dict[int, int] = {}  # line -> fill-ready cycle
        self.merged = 0
        self.allocations = 0
        self.full_events = 0

    def _expire(self, now: int) -> None:
        if self._pending:
            done = [line for line, t in self._pending.items() if t <= now]
            for line in done:
                del self._pending[line]

    def lookup(self, line: int, now: int) -> Optional[int]:
        """Ready time of an in-flight fill of *line*, or None.

        A hit here merges the request into the existing entry.
        """
        pending = self._pending
        if not pending:
            return None
        done = [ln for ln, t in pending.items() if t <= now]
        for ln in done:
            del pending[ln]
        ready = pending.get(line)
        if ready is not None:
            self.merged += 1
        return ready

    def allocate(self, line: int, ready: int, now: int) -> bool:
        """Track a new outstanding fill; False when the file is full."""
        pending = self._pending
        if pending:
            done = [ln for ln, t in pending.items() if t <= now]
            for ln in done:
                del pending[ln]
        if len(pending) >= self.entries:
            self.full_events += 1
            return False
        pending[line] = ready
        self.allocations += 1
        return True

    def occupancy(self, now: int) -> int:
        """Number of live entries at cycle *now*."""
        self._expire(now)
        return len(self._pending)

    def __repr__(self) -> str:
        return f"MshrFile({len(self._pending)}/{self.entries} in flight)"

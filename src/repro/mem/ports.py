"""Cache-port arbitration policies.

The paper assumes *ideal* ports: an N-port cache can service any N requests
per cycle, in any load/store combination.  Its motivation, however, rests on
how the real techniques fall short (Section 1):

* **time-division multiplexing** (DEC 21264): the array runs at a clock
  multiple — indistinguishable from ideal ports until the multiple stops
  scaling (the paper notes it "does not scale beyond ... two");
* **replication** (DEC 21164): loads use any copy, but every store must
  broadcast to all copies, consuming all ports at once;
* **interleaving/banking** (MIPS R10000): requests to the same bank in one
  cycle conflict.

Every policy shares one interface: a per-cycle transaction budget refilled
by ``new_cycle`` and consumed by ``try_take(count, line, is_store)``.
Access combining (Section 2.2.2) issues one *wide* transaction for multiple
contiguous references, which consumes a single port.

Policies (see :data:`PORT_POLICIES`):

``ideal``
    :class:`PortArbiter` itself — a pure budget of N transactions, the
    paper's assumption (also models time-division multiplexing at small N).
``finite``
    :class:`FinitePorts` — N ports over B single-access banks with
    per-bank conflict accounting; the contended arbiter the
    ``ablation_realism`` experiment sweeps against ``ideal``.
``banked``
    :class:`BankedPorts` — an N-bank interleaved cache (one port per bank).
``replicated``
    :class:`ReplicatedPorts` — N replicated copies; stores broadcast.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigError
from repro.utils import is_power_of_two


class PortArbiter:
    """A renewable per-cycle budget of port transactions (``ideal``)."""

    __slots__ = ("ports", "_available", "busy_transactions", "cycles_saturated")

    def __init__(self, ports: int):
        if ports < 0:
            raise ConfigError(f"port count must be non-negative: {ports}")
        self.ports = ports
        self._available = ports
        self.busy_transactions = 0
        self.cycles_saturated = 0

    def new_cycle(self) -> None:
        """Refill the budget at the start of a cycle."""
        if self._available == 0 and self.ports > 0:
            self.cycles_saturated += 1
        self._available = self.ports

    @property
    def available(self) -> int:
        """Transactions still available this cycle."""
        return self._available

    def try_take(self, count: int = 1, line: int = 0,
                 is_store: bool = False) -> bool:
        """Reserve *count* port transactions; False if not enough remain.

        ``line`` and ``is_store`` are ignored by ideal ports; the realistic
        policies below use them for bank selection and store broadcast.
        """
        if count <= 0:
            raise ValueError("port request must be positive")
        if self._available < count:
            return False
        self._available -= count
        self.busy_transactions += count
        return True

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._available}/{self.ports} free)"


class FinitePorts(PortArbiter):
    """N contended ports over B single-access banks (``finite``).

    Unlike :class:`BankedPorts` (which ties the port count to the bank
    count), this decouples the two: a request needs a free port *and* a
    free bank, so same-cycle references to one bank conflict even when
    ports remain.  Conflicts are accounted per bank (``conflicts_by_bank``)
    and in total (``conflicts``); the processor folds the total into the
    ``ports.conflict_stalls`` counter at the end of a run.
    """

    __slots__ = ("banks", "_bank_busy", "conflicts", "conflicts_by_bank")

    def __init__(self, ports: int, banks: int = 0):
        if ports <= 0:
            raise ConfigError(
                f"finite ports need at least one port: {ports}")
        super().__init__(ports)
        if banks <= 0:
            # Default: the smallest power of two with some headroom over
            # the port count, so an uncontended stream rarely conflicts.
            banks = 2
            while banks < 2 * ports:
                banks *= 2
        if not is_power_of_two(banks):
            raise ConfigError(f"bank count must be a power of two: {banks}")
        if banks < ports:
            raise ConfigError(
                f"need at least as many banks ({banks}) as ports ({ports})")
        self.banks = banks
        self._bank_busy: List[bool] = [False] * banks
        self.conflicts = 0
        self.conflicts_by_bank: List[int] = [0] * banks

    def new_cycle(self) -> None:
        super().new_cycle()
        self._bank_busy = [False] * self.banks

    def try_take(self, count: int = 1, line: int = 0,
                 is_store: bool = False) -> bool:
        if count != 1:
            raise ValueError("finite ports service one request per "
                             "transaction")
        bank = line & (self.banks - 1)
        if self._bank_busy[bank]:
            self.conflicts += 1
            self.conflicts_by_bank[bank] += 1
            return False
        if not PortArbiter.try_take(self, 1):
            return False
        self._bank_busy[bank] = True
        return True


class BankedPorts(PortArbiter):
    """An N-bank interleaved cache: one access per bank per cycle.

    Banks are selected by low line-address bits; two same-cycle requests
    to the same bank conflict even when other banks sit idle.
    """

    __slots__ = ("banks", "_bank_busy", "bank_conflicts")

    def __init__(self, banks: int):
        if not is_power_of_two(banks):
            raise ConfigError(f"bank count must be a power of two: {banks}")
        super().__init__(banks)
        self.banks = banks
        self._bank_busy: List[bool] = [False] * banks
        self.bank_conflicts = 0

    def new_cycle(self) -> None:
        super().new_cycle()
        self._bank_busy = [False] * self.banks

    def try_take(self, count: int = 1, line: int = 0,
                 is_store: bool = False) -> bool:
        if count != 1:
            raise ValueError("banked caches service one request per bank")
        bank = line & (self.banks - 1)
        if self._bank_busy[bank]:
            self.bank_conflicts += 1
            return False
        if not super().try_take(1):
            return False
        self._bank_busy[bank] = True
        return True


class ReplicatedPorts(PortArbiter):
    """N replicated cache copies: N loads/cycle, but stores broadcast.

    A store must write every copy to keep them coherent, so it consumes
    the whole cycle's bandwidth; any port already used this cycle blocks
    the store (and vice versa).
    """

    __slots__ = ("copies", "store_blocks")

    def __init__(self, copies: int):
        super().__init__(copies)
        self.copies = copies
        self.store_blocks = 0

    def try_take(self, count: int = 1, line: int = 0,
                 is_store: bool = False) -> bool:
        if is_store:
            # needs every copy's write port at once
            if self.available < self.copies:
                self.store_blocks += 1
                return False
            return super().try_take(self.copies)
        return super().try_take(count)


#: Policy-name -> constructor used by the memory system.  ``ideal`` is the
#: plain :class:`PortArbiter`: the processor's fast path special-cases the
#: exact type (a pure budget it can track in a local integer), so the ideal
#: policy must not be a subclass.
PORT_POLICIES = {
    "ideal": PortArbiter,
    "finite": FinitePorts,
    "banked": BankedPorts,
    "replicated": ReplicatedPorts,
}


def make_ports(policy: str, ports: int, banks: int = 0) -> PortArbiter:
    """Construct a port arbiter for *policy* with *ports* ports/banks.

    ``banks`` only matters for the ``finite`` policy (0 picks a default
    derived from the port count); ``banked`` ties banks to ``ports``.
    """
    try:
        ctor = PORT_POLICIES[policy]
    except KeyError:
        raise ConfigError(
            f"unknown port policy {policy!r}; "
            f"known: {', '.join(sorted(PORT_POLICIES))}"
        ) from None
    if ctor is FinitePorts:
        return FinitePorts(ports, banks)
    return ctor(ports)

"""Per-cycle cache port accounting.

The paper assumes *ideal* ports: an N-port cache can service any N requests
per cycle, in any load/store combination.  A :class:`PortArbiter` is simply a
per-cycle budget of N transactions; the processor resets it at the top of
every cycle.  Access combining (Section 2.2.2) issues one *wide* transaction
for multiple contiguous references, which consumes a single port.
"""

from __future__ import annotations

from repro.errors import ConfigError


class PortArbiter:
    """A renewable per-cycle budget of port transactions."""

    __slots__ = ("ports", "_available", "busy_transactions", "cycles_saturated")

    def __init__(self, ports: int):
        if ports < 0:
            raise ConfigError(f"port count must be non-negative: {ports}")
        self.ports = ports
        self._available = ports
        self.busy_transactions = 0
        self.cycles_saturated = 0

    def new_cycle(self) -> None:
        """Refill the budget at the start of a cycle."""
        if self._available == 0 and self.ports > 0:
            self.cycles_saturated += 1
        self._available = self.ports

    @property
    def available(self) -> int:
        """Transactions still available this cycle."""
        return self._available

    def try_take(self, count: int = 1, line: int = 0,
                 is_store: bool = False) -> bool:
        """Reserve *count* port transactions; False if not enough remain.

        ``line`` and ``is_store`` are ignored by ideal ports; realistic
        policies (see :mod:`repro.mem.multiport`) use them for bank
        selection and store broadcast.
        """
        if count <= 0:
            raise ValueError("port request must be positive")
        if self._available < count:
            return False
        self._available -= count
        self.busy_transactions += count
        return True

    def __repr__(self) -> str:
        return f"PortArbiter({self._available}/{self.ports} free)"

"""The full data-memory hierarchy of the modelled processor.

Two first-level structures sit side by side, exactly as in Figure 1(b) of
the paper:

* the **L1 data cache** (32 KB, 2-way, 2-cycle hit in the base model), and
* the optional **local variable cache (LVC)** (2 KB, direct-mapped,
  1-cycle hit),

both lock-up free (MSHRs) and both connected to a shared **L2 bus**; behind
it a unified **L2** (512 KB, 4-way, 12-cycle) and 50-cycle main memory.

The hierarchy is latency-annotating rather than event-driven: an access
immediately returns the cycle at which its data will be available, with bus
queueing folded in via a busy-until clock.  This is the standard technique
for fast cycle simulators and preserves every effect the paper measures
(port contention, miss latency, L2 traffic).

Both first-level structures take their port arbiter from
:mod:`repro.mem.ports` (``l1_port_policy`` / ``lvc_port_policy``); the
``ideal`` default reproduces the paper's assumption bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigError
from repro.mem.cache import Cache, CacheGeometry
from repro.mem.ports import PORT_POLICIES, PortArbiter, make_ports
from repro.stats.counters import CounterSet


class MshrFile:
    """Miss status holding registers (lockup-free cache support).

    Both L1 caches in the paper are lock-up free.  The MSHR file tracks
    lines with outstanding fills; a second miss to an in-flight line merges
    into the existing entry instead of issuing a new L2 request.
    """

    __slots__ = ("entries", "_pending", "merged", "allocations", "full_events")

    def __init__(self, entries: int = 8):
        if entries <= 0:
            raise ConfigError(f"MSHR count must be positive: {entries}")
        self.entries = entries
        self._pending: Dict[int, int] = {}  # line -> fill-ready cycle
        self.merged = 0
        self.allocations = 0
        self.full_events = 0

    def _expire(self, now: int) -> None:
        if self._pending:
            done = [line for line, t in self._pending.items() if t <= now]
            for line in done:
                del self._pending[line]

    def lookup(self, line: int, now: int) -> Optional[int]:
        """Ready time of an in-flight fill of *line*, or None.

        A hit here merges the request into the existing entry.
        """
        pending = self._pending
        if not pending:
            return None
        done = [ln for ln, t in pending.items() if t <= now]
        for ln in done:
            del pending[ln]
        ready = pending.get(line)
        if ready is not None:
            self.merged += 1
        return ready

    def allocate(self, line: int, ready: int, now: int) -> bool:
        """Track a new outstanding fill; False when the file is full."""
        pending = self._pending
        if pending:
            done = [ln for ln, t in pending.items() if t <= now]
            for ln in done:
                del pending[ln]
        if len(pending) >= self.entries:
            self.full_events += 1
            return False
        pending[line] = ready
        self.allocations += 1
        return True

    def occupancy(self, now: int) -> int:
        """Number of live entries at cycle *now*."""
        self._expire(now)
        return len(self._pending)

    def __repr__(self) -> str:
        return f"MshrFile({len(self._pending)}/{self.entries} in flight)"


class MemSystemConfig:
    """Parameters of the data-memory hierarchy (paper Table 1 defaults)."""

    def __init__(
        self,
        l1_ports: int = 2,
        lvc_ports: int = 0,
        l1_size: int = 32 * 1024,
        l1_assoc: int = 2,
        l1_hit_latency: int = 2,
        lvc_size: int = 2 * 1024,
        lvc_assoc: int = 1,
        lvc_hit_latency: int = 1,
        line_bytes: int = 32,
        l2_size: int = 512 * 1024,
        l2_assoc: int = 4,
        l2_latency: int = 12,
        mem_latency: int = 50,
        mshr_entries: int = 8,
        bus_occupancy: int = 1,
        l1_port_policy: str = "ideal",
        lvc_port_policy: str = "ideal",
        l1_banks: int = 0,
        lvc_banks: int = 0,
    ):
        if l1_ports <= 0:
            raise ConfigError("the L1 data cache needs at least one port")
        if lvc_ports < 0:
            raise ConfigError("LVC port count must be non-negative")
        for label, policy in (("l1_port_policy", l1_port_policy),
                              ("lvc_port_policy", lvc_port_policy)):
            if policy not in PORT_POLICIES:
                raise ConfigError(
                    f"unknown {label} {policy!r}; "
                    f"known: {', '.join(sorted(PORT_POLICIES))}")
        if l1_banks < 0 or lvc_banks < 0:
            raise ConfigError("bank counts must be non-negative")
        self.l1_ports = l1_ports
        self.lvc_ports = lvc_ports
        self.l1_size = l1_size
        self.l1_assoc = l1_assoc
        self.l1_hit_latency = l1_hit_latency
        self.lvc_size = lvc_size
        self.lvc_assoc = lvc_assoc
        self.lvc_hit_latency = lvc_hit_latency
        self.line_bytes = line_bytes
        self.l2_size = l2_size
        self.l2_assoc = l2_assoc
        self.l2_latency = l2_latency
        self.mem_latency = mem_latency
        self.mshr_entries = mshr_entries
        self.bus_occupancy = bus_occupancy
        self.l1_port_policy = l1_port_policy
        self.lvc_port_policy = lvc_port_policy
        self.l1_banks = l1_banks
        self.lvc_banks = lvc_banks

    @property
    def lvc_enabled(self) -> bool:
        """True when the configuration includes an LVC (M > 0)."""
        return self.lvc_ports > 0

    def notation(self) -> str:
        """The paper's ``(N+M)`` configuration notation."""
        return f"({self.l1_ports}+{self.lvc_ports})"

    def __repr__(self) -> str:
        return f"MemSystemConfig{self.notation()}"


class AccessResult:
    """Outcome of one first-level access."""

    __slots__ = ("ready", "hit")

    def __init__(self, ready: int, hit: bool):
        self.ready = ready
        self.hit = hit

    def __repr__(self) -> str:
        return f"AccessResult(ready={self.ready}, hit={self.hit})"


class MemoryHierarchy:
    """L1 + LVC + shared L2 bus + L2 + main memory."""

    def __init__(self, config: MemSystemConfig,
                 counters: Optional[CounterSet] = None):
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        self.l1 = Cache(
            "l1",
            CacheGeometry(config.l1_size, config.l1_assoc, config.line_bytes),
            self.counters,
        )
        self.l2 = Cache(
            "l2",
            CacheGeometry(config.l2_size, config.l2_assoc, config.line_bytes),
            self.counters,
        )
        self.lvc: Optional[Cache] = None
        self.lvc_mshr: Optional[MshrFile] = None
        self.lvc_ports: Optional[PortArbiter] = None
        if config.lvc_enabled:
            self.lvc = Cache(
                "lvc",
                CacheGeometry(config.lvc_size, config.lvc_assoc,
                              config.line_bytes),
                self.counters,
            )
            self.lvc_mshr = MshrFile(config.mshr_entries)
            self.lvc_ports = make_ports(config.lvc_port_policy,
                                        config.lvc_ports, config.lvc_banks)
        self.l1_mshr = MshrFile(config.mshr_entries)
        self.l1_ports = make_ports(config.l1_port_policy, config.l1_ports,
                                   config.l1_banks)
        self._bus_busy_until = 0
        #: When set (mix runs), the L2 + bus live in a
        #: :class:`repro.mem.shared.SharedMemory` and ``_miss`` delegates
        #: to it; the private ``l2`` tags above stay untouched.
        self.shared = None
        #: Hit/miss of the most recent first-level access (set by ``_ready``).
        self.last_hit = False

    # -- per-cycle maintenance ---------------------------------------------

    def new_cycle(self) -> None:
        """Refill port budgets; call once at the top of every cycle."""
        self.l1_ports.new_cycle()
        if self.lvc_ports is not None:
            self.lvc_ports.new_cycle()

    # -- access paths ----------------------------------------------------------

    def access_l1(self, addr: int, is_store: bool, now: int) -> AccessResult:
        """One L1 transaction (the port must already be reserved)."""
        ready = self.ready_l1(addr, is_store, now)
        return AccessResult(ready, self.last_hit)

    def access_lvc(self, addr: int, is_store: bool, now: int) -> AccessResult:
        """One LVC transaction (the port must already be reserved)."""
        ready = self.ready_lvc(addr, is_store, now)
        return AccessResult(ready, self.last_hit)

    def ready_l1(self, addr: int, is_store: bool, now: int) -> int:
        """:meth:`access_l1` without the result object (hot path): returns
        the fill-ready cycle and leaves hit/miss in ``last_hit``."""
        return self._ready(self.l1, self.l1_mshr,
                           self.config.l1_hit_latency, addr, is_store, now)

    def ready_lvc(self, addr: int, is_store: bool, now: int) -> int:
        """:meth:`access_lvc` without the result object (hot path)."""
        if self.lvc is None or self.lvc_mshr is None:
            raise ConfigError("this configuration has no LVC")
        return self._ready(self.lvc, self.lvc_mshr,
                           self.config.lvc_hit_latency, addr, is_store, now)

    def _ready(self, cache: Cache, mshr: MshrFile, hit_latency: int,
               addr: int, is_store: bool, now: int) -> int:
        line = addr >> cache.geom.line_shift
        pending = mshr.lookup(line, now)
        if cache.access(addr, is_store):
            if pending is not None:
                # Secondary miss: tags were filled at primary-miss time but
                # the line is still in flight — merge into the MSHR entry.
                self.last_hit = False
                t = now + hit_latency
                return pending if pending > t else t
            self.last_hit = True
            return now + hit_latency
        self.last_hit = False
        ready = self._miss(now + hit_latency, addr, is_store)
        if not mshr.allocate(line, ready, now):
            # MSHR file full: the request queues behind the oldest fill.
            ready += 1
        return ready

    def _miss(self, start: int, addr: int, is_store: bool) -> int:
        """Latency path through the shared bus, L2, and main memory."""
        if self.shared is not None:
            return self.shared.miss(self, start, addr, is_store)
        bus_at = max(start, self._bus_busy_until)
        self._bus_busy_until = bus_at + self.config.bus_occupancy
        self.counters.add("bus.transactions")
        if self.l2.access(addr, is_store):
            return bus_at + self.config.l2_latency
        return bus_at + self.config.l2_latency + self.config.mem_latency

    # -- statistics -----------------------------------------------------------

    @property
    def l2_traffic(self) -> int:
        """Transactions that crossed the L1/L2 bus (the paper's §4.2.1 stat)."""
        return self.counters.get("bus.transactions")

    def __repr__(self) -> str:
        return f"MemoryHierarchy{self.config.notation()}"

"""Shared second-level memory for multi-programmed mixes.

In a mix run (:mod:`repro.core.multicore`) each program gets its own
core — private L1/LVC, ports, MSHRs, counters — but the L2 tags and the
L1/L2 bus are one physical resource.  :class:`SharedMemory` models both,
replacing each private hierarchy's miss path via the ``shared`` hook in
:meth:`repro.mem.hierarchy.MemoryHierarchy._miss`.

Accounting is **requester-attributed**: every transaction bumps the
counters of the core that issued it, under the same names the private
hierarchy uses (``bus.transactions``, ``l2.accesses``/``hits``/
``misses``/``writebacks``), so a one-program mix produces a counter
dictionary identical to a solo run — the property the mix equivalence
test pins.  On top of those, four interference counters appear only
when programs actually collide:

``mix.bus_conflicts`` / ``mix.bus_conflict_stalls``
    Transactions delayed behind a bus transfer issued by a *different*
    core, and the total cycles lost waiting.  Self-queueing (present in
    solo runs too) is deliberately not counted.
``mix.l2_evictions_caused`` / ``mix.l2_evictions_suffered``
    LRU fills by one core that evicted a line last touched by another;
    counted against the evictor and for the victim respectively.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import MemoryHierarchy, MemSystemConfig


class SharedMemory:
    """One L2 + bus shared by every core of a mix run."""

    def __init__(self, config: MemSystemConfig, n_cores: int):
        self.config = config
        self.n_cores = n_cores
        self.geom = CacheGeometry(config.l2_size, config.l2_assoc,
                                  config.line_bytes)
        self._sets: List[List[int]] = [[] for _ in range(self.geom.num_sets)]
        self._dirty: Set[int] = set()
        #: line -> index of the core that last touched it (attribution
        #: for inter-program evictions).
        self._line_owner: Dict[int, int] = {}
        self._bus_busy_until = 0
        self._bus_owner = -1
        #: id(hierarchy) -> (core index, that core's counter dict).
        self._cores: Dict[int, Tuple[int, Dict[str, int]]] = {}

    def attach(self, hierarchy: MemoryHierarchy, core_index: int) -> None:
        """Route *hierarchy*'s miss path through this shared model."""
        hierarchy.shared = self
        self._cores[id(hierarchy)] = (core_index,
                                      hierarchy.counters._counts)

    def miss(self, hierarchy: MemoryHierarchy, start: int, addr: int,
             is_store: bool) -> int:
        """One first-level miss: bus queueing + shared-L2 lookup.

        Mirrors the private :meth:`MemoryHierarchy._miss` /
        :meth:`repro.mem.cache.Cache.access` pair exactly (same latency
        math, same counter keys, same LRU/fill/writeback behaviour), so
        with one core attached the observable result is bit-identical
        to a solo run.
        """
        index, counts = self._cores[id(hierarchy)]
        config = self.config

        busy_until = self._bus_busy_until
        if busy_until > start:
            bus_at = busy_until
            if self._bus_owner != index:
                counts["mix.bus_conflicts"] = counts.get(
                    "mix.bus_conflicts", 0) + 1
                counts["mix.bus_conflict_stalls"] = counts.get(
                    "mix.bus_conflict_stalls", 0) + (bus_at - start)
        else:
            bus_at = start
        self._bus_busy_until = bus_at + config.bus_occupancy
        self._bus_owner = index
        counts["bus.transactions"] = counts.get("bus.transactions", 0) + 1

        # Each program owns a disjoint physical address space: the core
        # index lands in high tag bits, leaving set-index bits untouched
        # (identical page coloring), so two programs can conflict in the
        # L2 only through capacity/associativity — never false-share a
        # line.  Core 0's lines are unchanged, keeping a one-program mix
        # bit-identical to a solo run.
        line = (addr >> self.geom.line_shift) | (index << 48)
        ways = self._sets[line & self.geom.set_mask]
        counts["l2.accesses"] = counts.get("l2.accesses", 0) + 1
        if line in ways:
            counts["l2.hits"] = counts.get("l2.hits", 0) + 1
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
            if is_store:
                self._dirty.add(line)
            self._line_owner[line] = index
            return bus_at + config.l2_latency
        counts["l2.misses"] = counts.get("l2.misses", 0) + 1
        if len(ways) >= self.geom.assoc:
            victim = ways.pop()
            victim_owner = self._line_owner.pop(victim, index)
            if victim in self._dirty:
                self._dirty.discard(victim)
                counts["l2.writebacks"] = counts.get(
                    "l2.writebacks", 0) + 1
            if victim_owner != index:
                counts["mix.l2_evictions_caused"] = counts.get(
                    "mix.l2_evictions_caused", 0) + 1
                victim_counts = None
                for _hid, (other, other_counts) in self._cores.items():
                    if other == victim_owner:
                        victim_counts = other_counts
                        break
                if victim_counts is not None:
                    victim_counts["mix.l2_evictions_suffered"] = \
                        victim_counts.get("mix.l2_evictions_suffered",
                                          0) + 1
        ways.insert(0, line)
        self._line_owner[line] = index
        if is_store:
            self._dirty.add(line)
        return bus_at + config.l2_latency + config.mem_latency

    def __repr__(self) -> str:
        return (f"SharedMemory({self.n_cores} cores, "
                f"{self.geom.size_bytes}B L2)")

"""A validated, versioned registry of the machine's pluggable policies.

The simulator's variation points — data-cache port arbitration and
frontend instruction delivery — are each named by a string in the config
objects (``MemSystemConfig.l1_port_policy`` / ``lvc_port_policy``,
``FrontendConfig.policy``).  This module is the single place that ties
those names, their implementations, and the config schema together, so
tools (CLI, experiments, docs) enumerate policies from one source of
truth instead of hard-coding string lists.

``CONFIG_SCHEMA_VERSION`` tracks *semantic* changes to the configuration
space: bump it whenever a policy is added/removed or a config field
changes meaning.  The version participates in :func:`describe_machine`,
so anything hashing a machine description (result caches, manifests)
is invalidated by a schema change even if the field values happen to
coincide.

Version history:

1. implicit schema of the original monolithic core (l1_port_policy only)
2. staged kernel: ``finite`` ports, per-structure port policies + banks,
   pluggable frontend (``perfect``/``gshare``)
3. trace capture/replay engine (``repro.trace``): serialized-trace
   format version rides along in the schema description, and the mix
   job family (shared L2 + bus, ``mix.*`` interference counters) joins
   the configuration space
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.config import MachineConfig
from repro.core.frontend import FRONTEND_POLICIES
from repro.errors import ConfigError
from repro.mem.ports import PORT_POLICIES
from repro.runtime.signature import describe_config
from repro.trace.format import TRACE_FORMAT_VERSION

CONFIG_SCHEMA_VERSION = 3

#: The machine's variation points: dimension -> {policy name -> class}.
POLICY_DIMENSIONS = {
    "ports": PORT_POLICIES,
    "frontend": FRONTEND_POLICIES,
}


def policy_names(dimension: str) -> tuple:
    """Sorted policy names for *dimension* (``ports`` or ``frontend``)."""
    try:
        registry = POLICY_DIMENSIONS[dimension]
    except KeyError:
        raise ConfigError(
            f"unknown policy dimension {dimension!r}; "
            f"known: {', '.join(sorted(POLICY_DIMENSIONS))}") from None
    return tuple(sorted(registry))


def validate_machine(config: MachineConfig) -> MachineConfig:
    """Check *config*'s policy names against the registry; returns it.

    The config constructors already validate scalar fields; this guards
    against configs built by mutation after construction (e.g. CLI
    overrides) naming a policy that no longer exists.
    """
    mem = config.mem
    for label, policy in (("l1_port_policy", mem.l1_port_policy),
                          ("lvc_port_policy", mem.lvc_port_policy)):
        if policy not in PORT_POLICIES:
            raise ConfigError(
                f"unknown {label} {policy!r}; "
                f"known: {', '.join(sorted(PORT_POLICIES))}")
    if config.frontend.policy not in FRONTEND_POLICIES:
        raise ConfigError(
            f"unknown frontend policy {config.frontend.policy!r}; "
            f"known: {', '.join(sorted(FRONTEND_POLICIES))}")
    return config


def describe_machine(config: MachineConfig) -> Dict[str, Any]:
    """A versioned, JSON-serialisable description of *config*.

    Field coverage is generic (via :func:`repro.runtime.signature
    .describe_config`), so new config fields can never be silently
    dropped from the description.
    """
    body = describe_config(validate_machine(config))
    return {"schema_version": CONFIG_SCHEMA_VERSION, "machine": body}


def describe_schema() -> Dict[str, Any]:
    """The registry itself: schema version plus every known policy."""
    return {
        "schema_version": CONFIG_SCHEMA_VERSION,
        "trace_format_version": TRACE_FORMAT_VERSION,
        "policies": {dim: list(policy_names(dim))
                     for dim in sorted(POLICY_DIMENSIONS)},
    }

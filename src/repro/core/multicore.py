"""Lockstep multi-core co-simulation for multi-programmed mixes.

``run_mix`` steps N independent cores — one captured trace each, private
L1/LVC/ports/window — through a single global cycle loop, with the L2
tags and the L1/L2 bus shared via :class:`repro.mem.shared.SharedMemory`.
Each core executes exactly the portable kernel cycle body from
:meth:`repro.core.processor.Processor._portable_kernel` (same stage
binds, same activity guards, same per-cycle scalar threading, same
cycle-skip accounting), so a mix of **one** program is bit-identical to
a solo run of that program — the anchor the mix tests pin.  With two or
more programs the only coupling is the shared miss path, which is where
the interference counters (``mix.*``) come from.

The per-core cycle skip carries over: a core whose next possible event
is k cycles away sets a ``wake`` cycle and is not stepped (nor its port
budgets refilled) until then, charging the same one-rob-full-stall-per-
skipped-cycle the solo kernel charges.  When every live core is asleep
the global clock jumps to the earliest wake.
"""

from __future__ import annotations

import gc
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.core.config import MachineConfig
from repro.core.metrics import SimResult
from repro.core.processor import Processor
from repro.core.stages import commit as commit_stage
from repro.core.stages import dispatch as dispatch_stage
from repro.core.stages import issue as issue_stage
from repro.core.stages import memory as memory_stage
from repro.core.stages import writeback as writeback_stage
from repro.core.stages.state import CoreState, MASK, RING
from repro.mem.shared import SharedMemory
from repro.vm.trace import DynInst


class _Core:
    """One program's core plus the kernel-owned per-cycle scalars."""

    __slots__ = (
        "name", "processor", "state", "insts", "total",
        "commit_tick", "commit_finish", "writeback_tick",
        "writeback_finish", "memory_tick", "memory_finish",
        "issue_tick", "issue_finish", "dispatch_tick", "dispatch_finish",
        "rob_entries", "rob_size", "ready_fifo", "woken", "sleep",
        "store_done", "ring", "overflow", "lsq", "lvaq",
        "l1_simple", "lvc_simple", "have_lvc", "l1_ports", "lvc_ports",
        "l1_new_cycle", "lvc_new_cycle", "l1_nports", "lvc_nports",
        "l1_avail", "lvc_avail", "l1_sat", "lvc_sat",
        "lsq_unserviced", "lvaq_unserviced",
        "index", "rob_count", "committed", "n_skip",
        "done", "finish", "wake",
    )

    def __init__(self, name: str, insts: Sequence[DynInst],
                 config: MachineConfig):
        self.name = name
        self.insts = insts
        self.total = len(insts)
        processor = Processor(config)
        self.processor = processor
        state = CoreState(processor, insts)
        self.state = state
        self.commit_tick, self.commit_finish = commit_stage.bind(state)
        self.writeback_tick, self.writeback_finish = \
            writeback_stage.bind(state)
        self.memory_tick, self.memory_finish = memory_stage.bind(state)
        self.issue_tick, self.issue_finish = issue_stage.bind(state)
        self.dispatch_tick, self.dispatch_finish = \
            dispatch_stage.bind(state)

        self.rob_entries = state.rob_entries
        self.rob_size = state.rob_size
        self.ready_fifo = state.ready_fifo
        self.woken = state.woken
        self.sleep = state.sleep
        self.store_done = state.store_done
        self.ring = state.ring
        self.overflow = state.overflow
        self.lsq = processor.lsq
        self.lvaq = processor.lvaq

        self.l1_simple = state.l1_simple
        self.lvc_simple = state.lvc_simple
        self.have_lvc = state.have_lvc
        l1_ports = state.l1_ports
        lvc_ports = state.lvc_ports
        self.l1_ports = l1_ports
        self.lvc_ports = lvc_ports
        self.l1_new_cycle = l1_ports.new_cycle
        self.lvc_new_cycle = (lvc_ports.new_cycle if self.have_lvc
                              else None)
        self.l1_nports = l1_ports.ports
        self.l1_avail = l1_ports._available if self.l1_simple else 0
        self.l1_sat = 0
        self.lvc_nports = lvc_ports.ports if self.have_lvc else 0
        self.lvc_avail = lvc_ports._available if self.lvc_simple else 0
        self.lvc_sat = 0

        self.lsq_unserviced = self.lsq.unserviced_loads
        self.lvaq_unserviced = self.lvaq.unserviced_loads
        self.index = 0
        self.rob_count = len(self.rob_entries)
        self.committed = 0
        self.n_skip = 0
        self.done = False
        self.finish = 0
        self.wake = 0


def run_mix(
    traces: Sequence[Tuple[str, Sequence[DynInst]]],
    config: MachineConfig,
) -> List[SimResult]:
    """Co-schedule *traces* on independent cores sharing L2 + bus.

    *traces* is a sequence of ``(program name, committed stream)``
    pairs, one core each.  Returns one :class:`SimResult` per program,
    in input order: ``cycles`` is the cycle its core finished (global
    clock — programs in a mix share time), counters are that core's own
    plus its ``mix.*`` interference counters.
    """
    if not traces:
        raise SimulationError("a mix needs at least one trace")
    cores = [_Core(name, insts, config) for name, insts in traces]
    shared = SharedMemory(config.mem, len(cores))
    for i, core in enumerate(cores):
        shared.attach(core.processor.hierarchy, i)

    limit = sum(core.total for core in cores) * 80 + 1000 * len(cores)
    now = 0
    active = len(cores)
    exceeded = False
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        while active:
            now += 1
            if now > limit:
                exceeded = True
                break
            all_asleep = True
            min_wake = None
            for c in cores:
                if c.done:
                    continue
                if now < c.wake:
                    if min_wake is None or c.wake < min_wake:
                        min_wake = c.wake
                    continue

                # ---- new cycle: refill this core's port budgets ------
                if c.l1_simple:
                    if c.l1_avail == 0:
                        c.l1_sat += 1
                    c.l1_avail = c.l1_nports
                else:
                    c.l1_new_cycle()
                if c.have_lvc:
                    if c.lvc_simple:
                        if c.lvc_avail == 0:
                            c.lvc_sat += 1
                        c.lvc_avail = c.lvc_nports
                    else:
                        c.lvc_new_cycle()

                # ---- the five stages, guards as in the solo kernel ---
                rob_entries = c.rob_entries
                if c.rob_count and rob_entries[0].state == 2:
                    (c.rob_count, c.committed,
                     c.l1_avail, c.lvc_avail) = c.commit_tick(
                        now, c.rob_count, c.committed,
                        c.l1_avail, c.lvc_avail)
                if c.store_done or c.overflow or c.ring[now & MASK]:
                    c.writeback_tick(now)
                if c.lsq_unserviced or c.lvaq_unserviced:
                    (c.l1_avail, c.lvc_avail,
                     c.lsq_unserviced, c.lvaq_unserviced) = c.memory_tick(
                        now, c.l1_avail, c.lvc_avail,
                        c.lsq_unserviced, c.lvaq_unserviced)
                if c.sleep or c.ready_fifo or c.woken:
                    c.issue_tick(now)
                if c.index < c.total:
                    (c.index, c.rob_count,
                     c.lsq_unserviced, c.lvaq_unserviced) = \
                        c.dispatch_tick(
                            now, c.index, c.rob_count,
                            c.lsq_unserviced, c.lvaq_unserviced)

                if c.committed >= c.total:
                    c.done = True
                    c.finish = now
                    active -= 1
                    continue
                all_asleep = False

                # ---- per-core cycle skip (solo condition verbatim) ---
                if (not c.ready_fifo
                        and not c.woken
                        and not c.store_done
                        and (c.index >= c.total
                             or c.rob_count >= c.rob_size)
                        and c.lsq_unserviced == 0
                        and c.lvaq_unserviced == 0
                        and c.rob_count
                        and rob_entries[0].state != 2):
                    target = None
                    ring = c.ring
                    for k in range(1, RING):
                        if ring[(now + k) & MASK]:
                            target = now + k
                            break
                    if c.overflow:
                        for t in c.overflow:
                            if t > now and (target is None
                                            or t < target):
                                target = t
                    # Sleeping entries wake at known cycles too (issue
                    # pops the bucket for each cycle it ticks), so the
                    # skip may jump straight to the earliest of them.
                    if c.sleep:
                        for t in c.sleep:
                            if t > now and (target is None
                                            or t < target):
                                target = t
                    cap = limit + 1
                    if target is None or target > cap:
                        target = cap
                    if target > now + 1:
                        if c.index < c.total:
                            c.n_skip += target - now - 1
                        c.wake = target
                        if min_wake is None or target < min_wake:
                            min_wake = target
            # When every live core sleeps, jump the global clock to the
            # earliest wake (each core's skip stalls are already
            # charged, so the jump is pure wall-clock).
            if active and all_asleep and min_wake is not None \
                    and min_wake > now + 1:
                now = min_wake - 1
    finally:
        if gc_was_enabled:
            gc.enable()
        # Per-core epilogue, mirroring the solo kernel's finally block:
        # write kernel-owned scalars back, run every finish(), fold the
        # fast-path shares into the counter dict.
        for c in cores:
            processor = c.processor
            final_now = c.finish if c.done else now
            processor.now = final_now
            processor._committed = c.committed
            c.lsq.unserviced_loads = c.lsq_unserviced
            c.lvaq.unserviced_loads = c.lvaq_unserviced
            shares: Dict[str, int] = {}
            for fin in (c.commit_finish, c.writeback_finish,
                        c.memory_finish, c.dispatch_finish):
                for name, value in fin().items():
                    shares[name] = shares.get(name, 0) + value
            for name, value in c.issue_finish(final_now).items():
                shares[name] = shares.get(name, 0) + value
            l1_busy = shares.pop("_l1_busy", 0)
            lvc_busy = shares.pop("_lvc_busy", 0)
            if c.l1_simple:
                c.l1_ports._available = c.l1_avail
                c.l1_ports.busy_transactions += l1_busy
                c.l1_ports.cycles_saturated += c.l1_sat
            if c.lvc_simple:
                c.lvc_ports._available = c.lvc_avail
                c.lvc_ports.busy_transactions += lvc_busy
                c.lvc_ports.cycles_saturated += c.lvc_sat
            n_l1_fast = shares.pop("_l1_fast", 0)
            n_lvc_fast = shares.pop("_lvc_fast", 0)
            state = c.state
            if n_l1_fast or n_lvc_fast:
                counts = state.counts
                counts_get = counts.get
                if n_l1_fast:
                    k = state.l1_ka
                    counts[k] = counts_get(k, 0) + n_l1_fast
                    k = state.l1_kh
                    counts[k] = counts_get(k, 0) + n_l1_fast
                if n_lvc_fast:
                    k = state.lvc_ka
                    counts[k] = counts_get(k, 0) + n_lvc_fast
                    k = state.lvc_kh
                    counts[k] = counts_get(k, 0) + n_lvc_fast
            counters = processor.counters
            if c.n_skip:
                shares["stall.rob_full"] = (
                    shares.get("stall.rob_full", 0) + c.n_skip)
            for name, value in shares.items():
                if value:
                    counters.add(name, value)
            conflict_stalls = processor.memsys.conflict_stalls()
            if conflict_stalls:
                counters.add("ports.conflict_stalls", conflict_stalls)
            counters.set("cycles", final_now)
            counters.set("instructions", c.total)

    if exceeded:
        laggard = min((c for c in cores if not c.done),
                      key=lambda c: c.committed / max(c.total, 1),
                      default=None)
        detail = (f"; slowest program {laggard.name!r} at "
                  f"{laggard.committed}/{laggard.total} committed"
                  if laggard is not None else "")
        raise SimulationError(
            f"mix cycle limit exceeded ({limit}) with "
            f"{active}/{len(cores)} programs unfinished{detail}")

    return [
        SimResult(config.notation(), c.name, c.finish, c.total,
                  c.processor.counters)
        for c in cores
    ]

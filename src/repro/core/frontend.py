"""Pluggable instruction-delivery (frontend) timing models.

The paper idealizes everything upstream of dispatch: perfect branch
prediction and a perfect instruction cache (Section 3, Table 1), so its
simulated frontend never starves the window.  That idealization is exactly
what the ``ablation_realism`` experiment relaxes: how much of the LVC's
headroom survives once the frontend charges real redirect and fill bubbles?

Because the core is trace-driven — it replays the *committed* path — a
realistic frontend does not change which instructions execute, only **when
dispatch may deliver them**.  Prediction outcomes and I-cache probes are
therefore timing-independent: they depend only on the in-order committed
stream, never on the out-of-order timing around it.  :meth:`prepare`
exploits this by walking the trace once, before simulation, and emitting a
sparse gate list the dispatch stage consults in O(1) per instruction:

``(index, code)`` with code bit 0
    an I-cache miss: dispatch stalls ``icache_miss_latency`` cycles
    *before* delivering instruction ``index`` (``frontend.fetch_bubbles``);
``(index, code)`` with code bit 1
    a mispredicted branch at ``index``: after it dispatches, delivery
    pauses for ``redirect_penalty`` cycles while the pipeline refills from
    the correct path (``frontend.redirect_bubbles``).

Policies (see :data:`FRONTEND_POLICIES`):

``perfect``
    today's model: no gates, dispatch is never frontend-limited;
``gshare``
    a gshare predictor (global history XOR PC indexing a 2-bit counter
    table) plus a direct-mapped finite I-cache.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.isa.opcodes import FuClass
from repro.utils import is_power_of_two

_BRANCH = int(FuClass.BRANCH)

#: Gate codes in the prepared schedule.
GATE_IMISS = 1     # stall before delivering the instruction
GATE_REDIRECT = 2  # stall after delivering the instruction


class FrontendConfig:
    """Frontend timing parameters (ignored entirely by ``perfect``).

    No ``__slots__``: the runtime cache derives config signatures from
    instance ``vars()``, so every field added here is picked up
    automatically.
    """

    def __init__(
        self,
        policy: str = "perfect",
        gshare_table_bits: int = 12,
        gshare_history_bits: int = 8,
        icache_lines: int = 512,
        icache_line_bytes: int = 32,
        icache_miss_latency: int = 6,
        redirect_penalty: int = 8,
    ):
        if policy not in FRONTEND_POLICIES:
            raise ConfigError(
                f"unknown frontend policy {policy!r}; "
                f"known: {', '.join(sorted(FRONTEND_POLICIES))}")
        if gshare_table_bits <= 0 or gshare_table_bits > 24:
            raise ConfigError(
                f"gshare table bits out of range: {gshare_table_bits}")
        if gshare_history_bits < 0 or gshare_history_bits > 32:
            raise ConfigError(
                f"gshare history bits out of range: {gshare_history_bits}")
        if not is_power_of_two(icache_lines):
            raise ConfigError(
                f"I-cache line count must be a power of two: {icache_lines}")
        if not is_power_of_two(icache_line_bytes):
            raise ConfigError(
                f"I-cache line size must be a power of two: "
                f"{icache_line_bytes}")
        if icache_miss_latency <= 0:
            raise ConfigError(
                f"I-cache miss latency must be positive: "
                f"{icache_miss_latency}")
        if redirect_penalty <= 0:
            raise ConfigError(
                f"redirect penalty must be positive: {redirect_penalty}")
        self.policy = policy
        self.gshare_table_bits = gshare_table_bits
        self.gshare_history_bits = gshare_history_bits
        self.icache_lines = icache_lines
        self.icache_line_bytes = icache_line_bytes
        self.icache_miss_latency = icache_miss_latency
        self.redirect_penalty = redirect_penalty

    def __repr__(self) -> str:
        return f"FrontendConfig({self.policy!r})"


class PerfectFrontend:
    """The paper's assumption: instruction delivery is never a bottleneck."""

    def __init__(self, config: FrontendConfig):
        self.config = config
        self.mispredicts = 0
        self.icache_misses = 0

    def prepare(self, insts: Sequence) -> Optional[List[Tuple[int, int]]]:
        """No gates: dispatch runs at full width every cycle."""
        return None


class GshareFrontend(PerfectFrontend):
    """gshare branch prediction + a direct-mapped finite I-cache.

    One pass over the committed trace (see the module docstring for why a
    pre-pass is exact here).  Branch direction ground truth is recovered
    from the trace itself: a branch fell through iff the next committed
    instruction is its static successor.
    """

    def prepare(self, insts: Sequence) -> List[Tuple[int, int]]:
        cfg = self.config
        table_size = 1 << cfg.gshare_table_bits
        tmask = table_size - 1
        hmask = (1 << cfg.gshare_history_bits) - 1
        counters = [1] * table_size  # 2-bit counters, init weakly not-taken
        line_shift = cfg.icache_line_bytes.bit_length() - 1
        set_mask = cfg.icache_lines - 1
        tags = [-1] * cfg.icache_lines
        history = 0
        gates: List[Tuple[int, int]] = []
        mispredicts = 0
        icache_misses = 0
        n = len(insts)
        for i in range(n):
            inst = insts[i]
            pc = inst.pc
            code = 0
            line = (pc << 2) >> line_shift  # 4-byte instruction slots
            s = line & set_mask
            if tags[s] != line:
                tags[s] = line
                icache_misses += 1
                code = GATE_IMISS
            if inst.fu == _BRANCH:
                idx = (pc ^ history) & tmask
                counter = counters[idx]
                taken = i + 1 < n and insts[i + 1].pc != pc + 1
                if (counter >= 2) != taken:
                    mispredicts += 1
                    code |= GATE_REDIRECT
                if taken:
                    if counter < 3:
                        counters[idx] = counter + 1
                elif counter > 0:
                    counters[idx] = counter - 1
                history = ((history << 1) | taken) & hmask
            if code:
                gates.append((i, code))
        self.mispredicts = mispredicts
        self.icache_misses = icache_misses
        return gates


#: Policy-name -> frontend model.
FRONTEND_POLICIES = {
    "perfect": PerfectFrontend,
    "gshare": GshareFrontend,
}


def make_frontend(config: Optional[FrontendConfig]) -> PerfectFrontend:
    """Construct the frontend model named by *config* (None -> perfect)."""
    if config is None:
        config = FrontendConfig()
    return FRONTEND_POLICIES[config.policy](config)

"""Machine configuration (paper Table 1 plus decoupling knobs).

The paper's ``(N+M)`` notation means an N-port L1 data cache plus an M-port
LVC; ``(N+0)`` is the conventional, non-decoupled machine.
"""

from __future__ import annotations

from typing import Optional

from repro.core.frontend import FrontendConfig
from repro.errors import ConfigError
from repro.mem.hierarchy import MemSystemConfig


class DecoupleConfig:
    """Options specific to the data-decoupled memory pipeline."""

    def __init__(
        self,
        fast_forwarding: bool = False,
        combining: int = 1,
        predictor: bool = True,
        mispredict_penalty: int = 8,
    ):
        if combining < 1:
            raise ConfigError("combining degree must be >= 1 (1 = disabled)")
        self.fast_forwarding = fast_forwarding
        self.combining = combining
        self.predictor = predictor
        self.mispredict_penalty = mispredict_penalty

    def __repr__(self) -> str:
        return (
            f"DecoupleConfig(fast_fwd={self.fast_forwarding}, "
            f"combining={self.combining}, predictor={self.predictor})"
        )


class MachineConfig:
    """Full processor model configuration."""

    def __init__(
        self,
        issue_width: int = 16,
        rob_size: int = 128,
        lsq_size: int = 64,
        lvaq_size: int = 64,
        ialu_units: int = 16,
        falu_units: int = 16,
        imultdiv_units: int = 4,
        fmultdiv_units: int = 4,
        mem: Optional[MemSystemConfig] = None,
        decouple: Optional[DecoupleConfig] = None,
        frontend: Optional[FrontendConfig] = None,
    ):
        if issue_width <= 0:
            raise ConfigError("issue width must be positive")
        if rob_size <= 0 or lsq_size <= 0 or lvaq_size <= 0:
            raise ConfigError("window sizes must be positive")
        if min(ialu_units, falu_units, imultdiv_units, fmultdiv_units) <= 0:
            raise ConfigError("functional-unit counts must be positive")
        self.issue_width = issue_width
        self.rob_size = rob_size
        self.lsq_size = lsq_size
        self.lvaq_size = lvaq_size
        self.ialu_units = ialu_units
        self.falu_units = falu_units
        self.imultdiv_units = imultdiv_units
        self.fmultdiv_units = fmultdiv_units
        self.mem = mem if mem is not None else MemSystemConfig()
        self.decouple = decouple if decouple is not None else DecoupleConfig()
        self.frontend = frontend if frontend is not None else FrontendConfig()

    @property
    def decoupled(self) -> bool:
        """True when this machine has an LVAQ/LVC side."""
        return self.mem.lvc_enabled

    def notation(self) -> str:
        """The paper's ``(N+M)`` configuration name."""
        return self.mem.notation()

    @classmethod
    def baseline(
        cls,
        l1_ports: int = 2,
        lvc_ports: int = 0,
        fast_forwarding: bool = False,
        combining: int = 1,
        l1_hit_latency: int = 2,
        lvc_hit_latency: int = 1,
        lvc_size: int = 2 * 1024,
        frontend: Optional[FrontendConfig] = None,
        **mem_overrides,
    ) -> "MachineConfig":
        """The paper's base machine with an ``(N+M)`` memory system.

        Defaults reproduce Table 1: 16-issue, 128-entry ROB, 64-entry LSQ,
        32 KB 2-way L1 with a 2-cycle hit, 512 KB L2 at 12 cycles, 50-cycle
        memory, and (when ``lvc_ports > 0``) a 2 KB direct-mapped LVC with a
        1-cycle hit.
        """
        mem = MemSystemConfig(
            l1_ports=l1_ports,
            lvc_ports=lvc_ports,
            l1_hit_latency=l1_hit_latency,
            lvc_hit_latency=lvc_hit_latency,
            lvc_size=lvc_size,
            **mem_overrides,
        )
        decouple = DecoupleConfig(
            fast_forwarding=fast_forwarding, combining=combining
        )
        return cls(mem=mem, decouple=decouple, frontend=frontend)

    def __repr__(self) -> str:
        return (
            f"MachineConfig({self.notation()}, width={self.issue_width}, "
            f"rob={self.rob_size}, lsq={self.lsq_size})"
        )

"""The cycle-stepped out-of-order processor model.

This is the reproduction of the paper's simulator: a 16-issue RUU/ROB
machine (derived conceptually from SimpleScalar's sim-outorder) with a
perfect front end, a conventional LSQ + L1 path, and — when configured —
the decoupled LVAQ + LVC path with fast data forwarding and access
combining.

Stage order within a cycle (processed so results flow forward):

1. **commit** — retire completed instructions in order; stores write their
   cache (consuming a port) at commit.
2. **writeback** — completions scheduled for this cycle wake dependents.
3. **memory** — loads with known addresses access their cache or forward
   from an earlier store in their queue; fast forwarding matches
   sp-relative pairs before address generation; access combining merges
   same-line LVAQ references into one port transaction.
4. **issue** — ready instructions grab issue slots and functional units
   (memory ops issue their address generation here).
5. **dispatch** — decode up to ``issue_width`` instructions from the
   committed stream into the ROB and the memory queues, steering each
   memory reference to the LSQ or LVAQ (stream partitioning).

Because the modelled front end is perfect (oracle branch prediction,
perfect I-cache — paper Section 3.1), simulating the committed dynamic
stream is exactly equivalent to execution-driven timing: there is no
wrong-path work.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.isa.opcodes import FuClass, LATENCY
from repro.core.classify import StreamPartitioner
from repro.core.config import MachineConfig
from repro.core.metrics import SimResult
from repro.mem.hierarchy import MemoryHierarchy
from repro.pipeline.fu import FuPool
from repro.pipeline.memqueue import MemQueue, MemQueueEntry
from repro.pipeline.rob import (
    COMPLETED,
    DISPATCHED,
    ISSUED,
    Rob,
    RobEntry,
)
from repro.stats.counters import CounterSet
from repro.vm.trace import DynInst

_LOAD = int(FuClass.LOAD)
_STORE = int(FuClass.STORE)


class Processor:
    """One simulated machine instance; reusable across runs is NOT supported
    — construct a fresh Processor per workload run."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.counters = CounterSet()
        self.hierarchy = MemoryHierarchy(config.mem, self.counters)
        self.rob = Rob(config.rob_size)
        self.lsq = MemQueue(config.lsq_size, "lsq")
        self.lvaq = MemQueue(config.lvaq_size, "lvaq")
        self.fus = FuPool(config.ialu_units, config.falu_units,
                          config.imultdiv_units, config.fmultdiv_units)
        self.partitioner = StreamPartitioner(
            config.decoupled, config.decouple.predictor
        )
        self.now = 0
        self._events: Dict[int, List[RobEntry]] = {}
        self._issuable: List[RobEntry] = []
        self._producer: List[Optional[RobEntry]] = [None] * 64
        self._seq = 0
        self._committed = 0

    # ------------------------------------------------------------------ run

    def run(self, insts: Sequence[DynInst],
            workload_name: str = "<trace>") -> SimResult:
        """Simulate the dynamic stream to completion and return the result."""
        total = len(insts)
        index = 0
        limit = total * 80 + 1000
        decoupled = self.config.decoupled
        while self._committed < total:
            self.now += 1
            if self.now > limit:
                raise SimulationError(
                    f"cycle limit exceeded ({limit}) at "
                    f"{self._committed}/{total} committed"
                )
            self.hierarchy.new_cycle()
            self.fus.new_cycle()
            self._commit()
            self._writeback()
            if decoupled:
                self._memory(self.lvaq, lvc_side=True)
            self._memory(self.lsq, lvc_side=False)
            self._issue()
            index = self._dispatch(insts, index, total)
        self.counters.set("cycles", self.now)
        self.counters.set("instructions", total)
        return SimResult(self.config.notation(), workload_name,
                         self.now, total, self.counters)

    # ----------------------------------------------------------------- commit

    def _commit(self) -> None:
        budget = self.config.issue_width
        now = self.now
        counters = self.counters
        hierarchy = self.hierarchy
        combining = self.config.decouple.combining
        # Per-cycle store-combining window state: (side, line, slots left).
        combine_side: Optional[bool] = None
        combine_line = -1
        combine_left = 0
        retired_mem = False
        while budget > 0:
            entry = self.rob.head()
            if entry is None or entry.state != COMPLETED:
                break
            qe = entry.mem
            if qe is not None and qe.is_store:
                use_lvc = qe.use_lvc
                combined = (
                    combining > 1
                    and use_lvc
                    and combine_side == use_lvc
                    and combine_line == qe.line
                    and combine_left > 0
                )
                if combined:
                    combine_left -= 1
                    counters.add("lvaq.store_combined")
                else:
                    ports = (hierarchy.lvc_ports if use_lvc
                             else hierarchy.l1_ports)
                    if ports is None or not ports.try_take(
                            1, line=qe.line, is_store=True):
                        counters.add("stall.store_port")
                        break
                    combine_side = use_lvc
                    combine_line = qe.line
                    combine_left = combining - 1
                if use_lvc:
                    hierarchy.access_lvc(qe.word << 2, True, now)
                else:
                    hierarchy.access_l1(qe.word << 2, True, now)
                retired_mem = True
            elif qe is not None:
                retired_mem = True
            self.rob.pop_head()
            inst = entry.inst
            if inst.dst >= 0 and self._producer[inst.dst] is entry:
                self._producer[inst.dst] = None
            entry.consumers = []
            self._committed += 1
            budget -= 1
        if retired_mem:
            self.lsq.retire_committed()
            self.lvaq.retire_committed()

    # -------------------------------------------------------------- writeback

    def _writeback(self) -> None:
        completing = self._events.pop(self.now, None)
        if not completing:
            return
        now = self.now
        issuable = self._issuable
        for entry in completing:
            entry.state = COMPLETED
            entry.complete_time = now
            produced = entry.inst.dst
            for consumer in entry.consumers:
                consumer.pending -= 1
                qe = consumer.mem
                if (qe is not None and qe.is_store and not qe.addr_known
                        and consumer.inst.srcs
                        and consumer.inst.srcs[0] == produced):
                    # STA split: the store's address computes as soon as
                    # its base register arrives, off the issue path.
                    qe.addr_known_time = now + 1
                    qe.word = consumer.inst.addr >> 2
                    qe.line = consumer.inst.addr >> 5
                if consumer.pending == 0 and consumer.state == DISPATCHED:
                    if consumer.earliest < now:
                        consumer.earliest = now
                    if not consumer.in_issuable:
                        consumer.in_issuable = True
                        issuable.append(consumer)
            entry.consumers = []

    def _schedule(self, entry: RobEntry, when: int) -> None:
        self._events.setdefault(when, []).append(entry)

    # ----------------------------------------------------------------- memory

    def _memory(self, queue: MemQueue, lvc_side: bool) -> None:
        entries = queue.entries
        if not entries:
            return
        now = self.now
        counters = self.counters
        hierarchy = self.hierarchy
        ports = hierarchy.lvc_ports if lvc_side else hierarchy.l1_ports
        fast_fwd = (lvc_side and self.config.decouple.fast_forwarding)
        combining = (self.config.decouple.combining
                     if lvc_side else 1)
        unknown_seq = queue.oldest_unknown_store_seq()
        nonsp_unknown_seq = (queue.oldest_unknown_nonsp_store_seq()
                             if fast_fwd else unknown_seq)
        qname = queue.name
        ports_exhausted = ports is None or ports.available == 0

        i = 0
        n = len(entries)
        while i < n:
            qe = entries[i]
            i += 1
            if qe.serviced or qe.is_store:
                continue
            entry = qe.rob
            if entry.state == COMPLETED:
                continue

            # --- fast data forwarding (LVAQ, sp-relative pairs) ---------
            blocking_seq = unknown_seq
            if fast_fwd and qe.sp_based:
                source, conclusive = queue.fast_forward_source(qe)
                if source is not None and entry.state == DISPATCHED:
                    src_rob = source.rob
                    if src_rob.pending == 0 and src_rob.earliest <= now:
                        # The match resolves before address generation,
                        # but the transfer still occupies an LVC port
                        # (the queue datapath is the cache's): the gain
                        # is latency and disambiguation, not bandwidth.
                        if ports_exhausted or not ports.try_take(
                                1, line=qe.line, is_store=False):
                            counters.add(f"stall.{qname}_port")
                            ports_exhausted = True
                            continue
                        qe.serviced = True
                        entry.state = ISSUED
                        entry.issue_time = now
                        self._schedule(entry, now + 1)
                        counters.add("lvaq.fast_forwards")
                        continue
                    # Matching store's data not produced yet: wait.
                    continue
                if conclusive:
                    # Offsets proved independence from every earlier
                    # sp-relative store: only non-sp stores can block.
                    blocking_seq = nonsp_unknown_seq

            # --- conventional path --------------------------------------
            if not qe.addr_known or qe.addr_known_time > now:
                continue
            if entry.seq > blocking_seq:
                continue  # blocked by an earlier unknown-address store
            if qe.penalty and now < qe.addr_known_time + qe.penalty:
                continue  # classification-misprediction recovery
            source = queue.forward_source(qe)
            if source is not None:
                # Store-to-load forwarding still occupies a cache port:
                # sim-outorder acquires the memory port before probing the
                # store queue, and the paper's simulator derives from it.
                # (The LVAQ *fast* forwarding path above is the exception —
                # it resolves before address generation, off the cache
                # pipeline entirely.)
                if ports_exhausted or not ports.try_take(
                        1, line=qe.line, is_store=False):
                    counters.add(f"stall.{qname}_port")
                    ports_exhausted = True
                    continue
                qe.serviced = True
                self._schedule(entry, now + 1)
                counters.add(f"{qname}.forwards")
                continue
            if ports_exhausted or not ports.try_take(
                    1, line=qe.line, is_store=False):
                counters.add(f"stall.{qname}_port")
                ports_exhausted = True
                continue
            addr = qe.word << 2
            if lvc_side:
                result = hierarchy.access_lvc(addr, False, now)
            else:
                result = hierarchy.access_l1(addr, False, now)
            qe.serviced = True
            self._schedule(entry, result.ready)
            # --- access combining: absorb following same-line refs -------
            if combining > 1:
                j = i
                while j < n and j < i + combining - 1:
                    cand = entries[j]
                    j += 1
                    if (cand.is_store or cand.serviced
                            or not cand.addr_known
                            or cand.addr_known_time > now
                            or cand.line != qe.line
                            or cand.rob.seq > unknown_seq
                            or cand.penalty
                            or cand.rob.state == COMPLETED):
                        continue
                    if queue.forward_source(cand) is not None:
                        continue
                    cand.serviced = True
                    self._schedule(cand.rob, result.ready)
                    counters.add("lvaq.load_combined")

    # ------------------------------------------------------------------ issue

    def _issue(self) -> None:
        issuable = self._issuable
        if not issuable:
            return
        now = self.now
        budget = self.config.issue_width
        fus = self.fus
        keep: List[RobEntry] = []
        issuable.sort(key=lambda e: e.seq)
        for entry in issuable:
            if entry.state != DISPATCHED:
                entry.in_issuable = False
                continue  # already handled (e.g. fast-forwarded load)
            if budget == 0 or entry.earliest > now:
                keep.append(entry)
                continue
            fu = entry.inst.fu
            if not fus.try_take(fu, now):
                keep.append(entry)
                self.counters.add("stall.fu")
                continue
            budget -= 1
            entry.state = ISSUED
            entry.issue_time = now
            entry.in_issuable = False
            qe = entry.mem
            if qe is not None:
                # Address generation: address known next cycle (stores may
                # already have resolved their address at dispatch).
                if not qe.addr_known:
                    qe.addr_known_time = now + 1
                    inst = entry.inst
                    qe.word = inst.addr >> 2
                    qe.line = inst.addr >> 5
                if qe.is_store:
                    # Address and data both captured: ready to commit.
                    self._schedule(entry, now + 1)
            else:
                self._schedule(entry, now + LATENCY[FuClass(entry.inst.fu)])
        self._issuable = keep

    # --------------------------------------------------------------- dispatch

    def _dispatch(self, insts: Sequence[DynInst], index: int,
                  total: int) -> int:
        rob = self.rob
        counters = self.counters
        now = self.now
        line_shift = self.hierarchy.l1.geom.line_shift
        penalty = self.config.decouple.mispredict_penalty
        producer = self._producer
        issuable = self._issuable
        for _ in range(self.config.issue_width):
            if index >= total:
                break
            if rob.full:
                counters.add("stall.rob_full")
                break
            inst = insts[index]
            fu = inst.fu
            is_mem = fu == _LOAD or fu == _STORE
            to_lvaq = False
            mispredicted = False
            if is_mem:
                to_lvaq, mispredicted = self.partitioner.steer(inst)
                queue = self.lvaq if to_lvaq else self.lsq
                if queue.full:
                    counters.add(f"stall.{queue.name}_full")
                    break
            entry = RobEntry(self._seq, inst)
            self._seq += 1
            pending = 0
            for reg in inst.srcs:
                if reg <= 0:
                    continue  # $zero and absent operands are always ready
                prod = producer[reg]
                if prod is not None and prod.state != COMPLETED:
                    prod.consumers.append(entry)
                    pending += 1
            entry.pending = pending
            entry.earliest = now + 1
            dst = inst.dst
            if dst > 0:
                producer[dst] = entry
            rob.push(entry)
            if is_mem:
                frame_key = None
                if inst.sp_based:
                    frame_key = (inst.frame_id, inst.offset)
                qe = MemQueueEntry(
                    entry,
                    fu == _STORE,
                    now,
                    sp_based=inst.sp_based,
                    frame_key=frame_key,
                    use_lvc=to_lvaq,
                    penalty=penalty if mispredicted else 0,
                )
                entry.mem = qe
                queue.append(qe)
                if qe.is_store:
                    # STA/STD split (as in sim-outorder and the R10000
                    # address queue): the store's address computes as soon
                    # as its base register is available — it never waits
                    # for the store *data*, so it stops blocking younger
                    # loads' disambiguation almost immediately.
                    base_reg = inst.srcs[0] if inst.srcs else 0
                    prod = producer[base_reg] if base_reg > 0 else None
                    if prod is None or prod.state == COMPLETED:
                        qe.addr_known_time = now + 1
                        qe.word = inst.addr >> 2
                        qe.line = inst.addr >> 5
                side = "lvaq" if to_lvaq else "lsq"
                counters.add(f"{side}.stores" if qe.is_store
                             else f"{side}.loads")
                if mispredicted:
                    counters.add("classify.mispredictions")
            if pending == 0:
                entry.in_issuable = True
                issuable.append(entry)
            index += 1
        return index

"""The cycle-stepped out-of-order processor model.

This is the reproduction of the paper's simulator: a 16-issue RUU/ROB
machine (derived conceptually from SimpleScalar's sim-outorder) with a
perfect front end, a conventional LSQ + L1 path, and — when configured —
the decoupled LVAQ + LVC path with fast data forwarding and access
combining.

Stage order within a cycle (processed so results flow forward):

1. **commit** — retire completed instructions in order; stores write their
   cache (consuming a port) at commit.
2. **writeback** — completions scheduled for this cycle wake dependents.
3. **memory** — loads with known addresses access their cache or forward
   from an earlier store in their queue; fast forwarding matches
   sp-relative pairs before address generation; access combining merges
   same-line LVAQ references into one port transaction.
4. **issue** — ready instructions grab issue slots and functional units
   (memory ops issue their address generation here).
5. **dispatch** — decode up to ``issue_width`` instructions from the
   committed stream into the ROB and the memory queues, steering each
   memory reference to the LSQ or LVAQ (stream partitioning).

Because the modelled front end is perfect (oracle branch prediction,
perfect I-cache — paper Section 3.1), simulating the committed dynamic
stream is exactly equivalent to execution-driven timing: there is no
wrong-path work.

Implementation notes
--------------------

This module is the hot loop of every experiment, so it is written for
speed while staying **bit-identical** — same cycle counts, same counter
values — to the straightforward model it replaced (kept verbatim as
``repro.perf.reference.ReferenceProcessor`` and enforced by the golden
equivalence suite in ``tests/perf``):

* all five pipeline stages are fused into one ``run`` loop with every
  per-cycle-touched object bound to a local once, up front;
* completion events live in a 256-slot ring-buffer calendar (distance of
  almost every event is a small latency); the rare long-latency event
  (memory misses behind a backed-up bus) overflows into a dict.  Drained
  buckets are cleared and left in place so the lists get reused;
* when dispatch is exhausted or blocked, nothing is issuable, no load is
  waiting for the memory stage and the ROB head is not committable, the
  loop jumps straight to the next scheduled event.  Stalled cycles it
  skips are accounted exactly as the reference would have (see
  ``docs/perf.md`` for the invariant);
* the issuable set is two seq-ordered lanes merged at issue time — a
  FIFO for dispatch-ready entries (dispatch runs in seq order) and a
  heap for entries woken out of order by writeback — instead of a
  per-cycle sort;
* committed ROB entries are recycled through a free list (unless a
  stale lane reference still points at them), skipping allocation and
  re-initialisation;
* simple port arbiters (``PortArbiter``/``IdealPorts`` — pure per-cycle
  budgets) and the pipelined ALU pools are tracked as local integers and
  written back to their objects when the run ends; banked/replicated
  ports keep their method calls (their state is not a plain budget);
* per-cycle counters accumulate in plain ints and fold into the shared
  :class:`CounterSet` once, at the end of the run (zero-valued counters
  stay absent, exactly as if they had never been bumped);
* the cyclic garbage collector is paused for the duration of the run —
  the simulator's object graph is alive the whole time, so collection
  passes are pure overhead.
"""

from __future__ import annotations

import gc
from collections import deque
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.isa.opcodes import FuClass, LATENCY_BY_INT
from repro.core.classify import StreamPartitioner
from repro.core.config import MachineConfig
from repro.core.metrics import SimResult
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.multiport import IdealPorts
from repro.mem.ports import PortArbiter
from repro.pipeline.fu import FU_KIND, FuPool
from repro.pipeline.memqueue import INF_SEQ, MemQueue, MemQueueEntry
from repro.pipeline.rob import (
    COMPLETED,
    DISPATCHED,
    ISSUED,
    Rob,
    RobEntry,
)
from repro.stats.counters import CounterSet
from repro.vm.trace import DynInst

_LOAD = int(FuClass.LOAD)
_STORE = int(FuClass.STORE)

#: Calendar ring size; must exceed every fixed execution latency so that
#: only memory events (whose distance is unbounded behind a busy bus) can
#: overflow.  Power of two so the slot index is a mask.
_RING = 256
_MASK = _RING - 1
assert max(LATENCY_BY_INT) < _RING


class Processor:
    """One simulated machine instance; reusable across runs is NOT supported
    — construct a fresh Processor per workload run."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.counters = CounterSet()
        self.hierarchy = MemoryHierarchy(config.mem, self.counters)
        self.rob = Rob(config.rob_size)
        self.lsq = MemQueue(config.lsq_size, "lsq")
        self.lvaq = MemQueue(config.lvaq_size, "lvaq")
        self.fus = FuPool(config.ialu_units, config.falu_units,
                          config.imultdiv_units, config.fmultdiv_units)
        self.partitioner = StreamPartitioner(
            config.decoupled, config.decouple.predictor
        )
        self.now = 0
        # Completion calendar: ring for near events, dict for far ones.
        self._ring: List[Optional[List[RobEntry]]] = [None] * _RING
        self._overflow: Dict[int, List[RobEntry]] = {}
        # The issuable set is two seq-ordered lanes merged at issue time:
        # dispatch-ready entries arrive in seq order and ride a plain FIFO
        # (no tuple, no heap op); entries woken later by writeback arrive
        # out of order and go through a (seq, entry) heap.
        self._ready_fifo: "deque[RobEntry]" = deque()
        self._issuable: List[Tuple[int, RobEntry]] = []
        self._producer: List[Optional[RobEntry]] = [None] * 64
        self._seq = 0
        self._committed = 0
        # Hot-path bindings of per-run-constant configuration.
        self._width = config.issue_width
        self._rob_entries = self.rob.entries
        self._rob_size = config.rob_size
        self._fast_fwd = config.decoupled and config.decouple.fast_forwarding
        self._combining = config.decouple.combining
        self._penalty = config.decouple.mispredict_penalty
        # Counters accumulated as plain ints, folded into ``self.counters``
        # at the end of ``run`` (absent when zero, like the reference).
        self._n_stall_rob_full = 0
        self._n_stall_lsq_full = 0
        self._n_stall_lvaq_full = 0
        self._n_stall_fu = 0
        self._n_stall_store_port = 0
        self._n_stall_lsq_port = 0
        self._n_stall_lvaq_port = 0
        self._n_lsq_loads = 0
        self._n_lsq_stores = 0
        self._n_lsq_forwards = 0
        self._n_lvaq_loads = 0
        self._n_lvaq_stores = 0
        self._n_lvaq_forwards = 0
        self._n_lvaq_fast_forwards = 0
        self._n_lvaq_load_combined = 0
        self._n_lvaq_store_combined = 0
        self._n_classify_mispredictions = 0

    # ------------------------------------------------------------------ run

    def run(self, insts: Sequence[DynInst],
            workload_name: str = "<trace>") -> SimResult:
        """Simulate the dynamic stream to completion and return the result.

        Everything below is the five pipeline stages of the reference
        model fused into one loop; every block is a verbatim-semantics
        transcription (see the module docstring for the invariants).
        ROB states appear as literals here: 0 DISPATCHED, 1 ISSUED,
        2 COMPLETED, 3 COMMITTED.
        """
        total = len(insts)
        index = 0
        limit = total * 80 + 1000
        config = self.config
        decoupled = config.decoupled
        width = self._width
        rob_size = self._rob_size
        fast_fwd = self._fast_fwd
        combining = self._combining
        combine_window = combining > 1
        mispredict_penalty = self._penalty
        load_fu = _LOAD
        store_fu = _STORE
        fu_kind = FU_KIND
        latency = LATENCY_BY_INT
        new_rob_entry = RobEntry
        new_mem_entry = MemQueueEntry
        mem_entry_new = MemQueueEntry.__new__

        rob_entries = self._rob_entries
        rob_append = rob_entries.append
        rob_popleft = rob_entries.popleft
        rob_count = len(rob_entries)
        ready_fifo = self._ready_fifo
        fifo_append = ready_fifo.append
        fifo_popleft = ready_fifo.popleft
        woken = self._issuable
        ring = self._ring
        overflow = self._overflow
        # Stores issued this cycle, completing next cycle (see writeback).
        store_done: List[RobEntry] = []
        store_done_append = store_done.append
        # Entries whose operands are complete but not yet forwardable
        # (earliest > now) sleep here, keyed by that cycle, instead of
        # churning through the issue lanes every cycle.  ``earliest`` is
        # final once pending hits zero, so the wake cycle is exact.
        sleep: Dict[int, List[RobEntry]] = {}
        sleep_get = sleep.get
        sleep_pop = sleep.pop
        producer = self._producer
        # Committed ROB entries are recycled through this free list; an
        # entry still sitting stale in an issue lane (in_issuable) is not
        # recycled, so lane references can never alias a new instruction.
        free_entries: List[RobEntry] = []

        lsq = self.lsq
        lvaq = self.lvaq
        lsq_entries = lsq.entries
        lvaq_entries = lvaq.entries
        lsq_size = lsq.size
        lvaq_size = lvaq.size
        # Memory-queue internals, aliased for the inlined hot paths
        # (append, per-cycle load/unknown-store cursors, forwarding
        # scans).  The structures and maintenance discipline are
        # MemQueue's own (see memqueue.py); retire_committed stays a
        # method call and mutates only state these locals alias in
        # place.  The integer cursors live in locals and are written
        # back at the end of the run.
        lsq_loads_list = lsq._loads
        lvaq_loads_list = lvaq._loads
        lsq_load_head = lsq._load_head
        lvaq_load_head = lvaq._load_head
        lsq_unknown = lsq._unknown_stores
        lvaq_unknown = lvaq._unknown_stores
        lsq_us_head = lsq._us_head
        lvaq_us_head = lvaq._us_head
        lsq_un_nonsp = lsq._unknown_nonsp_stores
        lvaq_un_nonsp = lvaq._unknown_nonsp_stores
        lvaq_un_head = lvaq._un_head
        lvaq_ns = lvaq._nonsp_stores
        lsq_ns = lsq._nonsp_stores
        lsq_ns_head = lsq._ns_head
        lvaq_ns_head = lvaq._ns_head
        lsq_words = lsq._stores_by_word
        lvaq_words = lvaq._stores_by_word
        lsq_sp = lsq._sp_stores
        lvaq_sp = lvaq._sp_stores
        lvaq_sp_get = lvaq_sp.get
        lsq_sp_set = lsq_sp.setdefault
        lvaq_sp_set = lvaq_sp.setdefault
        lsq_base = lsq.base
        lvaq_base = lvaq.base
        lsq_unserviced = lsq.unserviced_loads
        lvaq_unserviced = lvaq.unserviced_loads
        inf_seq = INF_SEQ

        hierarchy = self.hierarchy
        ready_l1 = hierarchy.ready_l1
        ready_lvc = hierarchy.ready_lvc
        # Inline first-level-cache fast path: when the addressed line has
        # no live outstanding fill and the tags hit, the access is a
        # counter bump plus an LRU move.  Any other case (in-flight line,
        # tag miss) falls back to the full ``ready_*`` path BEFORE any
        # state is touched, so the fallback replays the lookup exactly.
        # The MSHR expiry stays lazy: a stale (expired) pending entry is
        # treated as absent here and physically removed by the next
        # fallback's lookup/allocate, exactly as the reference's
        # lazy-expire does — its timing is unobservable by design.
        # Fast-path hit counters accumulate in local ints and fold into
        # the counter dict at the end of the run.
        counts = self.counters._counts
        counts_get = counts.get
        l1_cache = hierarchy.l1
        l1_sets = l1_cache._sets
        l1_shift = l1_cache.geom.line_shift
        l1_smask = l1_cache.geom.set_mask
        l1_dirty = l1_cache._dirty
        l1_ka = l1_cache._k_accesses
        l1_kh = l1_cache._k_hits
        l1_pending = hierarchy.l1_mshr._pending
        l1_hitlat = hierarchy.config.l1_hit_latency
        lvc_cache = hierarchy.lvc
        if lvc_cache is not None:
            lvc_sets = lvc_cache._sets
            lvc_shift = lvc_cache.geom.line_shift
            lvc_smask = lvc_cache.geom.set_mask
            lvc_dirty = lvc_cache._dirty
            lvc_ka = lvc_cache._k_accesses
            lvc_kh = lvc_cache._k_hits
            lvc_pending = hierarchy.lvc_mshr._pending
            lvc_hitlat = hierarchy.config.lvc_hit_latency
        else:
            lvc_sets = l1_sets
            lvc_shift = lvc_smask = 0
            lvc_dirty = l1_dirty
            lvc_ka = lvc_kh = ""
            lvc_pending = l1_pending
            lvc_hitlat = 0
        n_l1_fast = 0
        n_lvc_fast = 0
        lsq_words_get = lsq._stores_by_word.get
        lvaq_words_get = lvaq._stores_by_word.get
        l1_ports = hierarchy.l1_ports
        lvc_ports = hierarchy.lvc_ports
        # Simple arbiters are pure per-cycle budgets: keep the budget in a
        # local int and write it back at the end.  Banked/replicated ports
        # carry extra per-request state, so they keep their method calls.
        l1_type = type(l1_ports)
        l1_simple = l1_type is IdealPorts or l1_type is PortArbiter
        l1_new_cycle = l1_ports.new_cycle
        l1_try_take = l1_ports.try_take
        l1_nports = l1_ports.ports
        l1_avail = l1_ports._available
        l1_busy = 0
        l1_sat = 0
        have_lvc = lvc_ports is not None
        if have_lvc:
            lvc_nports = lvc_ports.ports
            lvc_avail = lvc_ports._available
        else:
            lvc_nports = 0
            lvc_avail = 0
        lvc_busy = 0
        lvc_sat = 0

        fus = self.fus
        fus_try_take = fus.try_take
        n_ialu = fus.ialu
        n_falu = fus.falu
        ialu_left = fus._ialu_left
        falu_left = fus._falu_left

        steer = self.partitioner.steer

        now = self.now
        seq = self._seq
        committed_total = self._committed
        n_stall_rob_full = self._n_stall_rob_full
        n_stall_lsq_full = self._n_stall_lsq_full
        n_stall_lvaq_full = self._n_stall_lvaq_full
        n_stall_fu = self._n_stall_fu
        n_stall_store_port = self._n_stall_store_port
        n_stall_lsq_port = self._n_stall_lsq_port
        n_stall_lvaq_port = self._n_stall_lvaq_port
        n_lsq_loads = self._n_lsq_loads
        n_lsq_stores = self._n_lsq_stores
        n_lsq_forwards = self._n_lsq_forwards
        n_lvaq_loads = self._n_lvaq_loads
        n_lvaq_stores = self._n_lvaq_stores
        n_lvaq_forwards = self._n_lvaq_forwards
        n_lvaq_fast_forwards = self._n_lvaq_fast_forwards
        n_lvaq_load_combined = self._n_lvaq_load_combined
        n_lvaq_store_combined = self._n_lvaq_store_combined
        n_classify_mispredictions = self._n_classify_mispredictions

        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while committed_total < total:
                now += 1
                if now > limit:
                    self.now = now
                    self._committed = committed_total
                    # The report reads queue state through the normal
                    # methods; push the locally-tracked cursors back first.
                    lsq.unserviced_loads = lsq_unserviced
                    lvaq.unserviced_loads = lvaq_unserviced
                    lsq._us_head = lsq_us_head
                    lvaq._us_head = lvaq_us_head
                    lvaq._un_head = lvaq_un_head
                    lsq._load_head = lsq_load_head
                    lvaq._load_head = lvaq_load_head
                    lsq._ns_head = lsq_ns_head
                    lvaq._ns_head = lvaq_ns_head
                    lsq.base = lsq_base
                    lvaq.base = lvaq_base
                    raise SimulationError(
                        self._livelock_report(limit, total, index))

                # ---- new cycle: refill port and pipelined-ALU budgets --
                if l1_simple:
                    if l1_avail == 0:
                        l1_sat += 1
                    l1_avail = l1_nports
                else:
                    l1_new_cycle()
                if have_lvc:
                    if lvc_avail == 0:
                        lvc_sat += 1
                    lvc_avail = lvc_nports
                ialu_left = n_ialu
                falu_left = n_falu

                # ---- commit -------------------------------------------
                if rob_count:
                    entry = rob_entries[0]
                    if entry.state == 2:
                        budget = width
                        combine_side: Optional[bool] = None
                        combine_line = -1
                        combine_left = 0
                        retired_lsq = False
                        retired_lvaq = False
                        while True:
                            qe = entry.mem
                            if qe is not None:
                                if qe.use_lvc:
                                    retired_lvaq = True
                                else:
                                    retired_lsq = True
                                if qe.is_store:
                                    use_lvc = qe.use_lvc
                                    if (combine_window
                                            and use_lvc
                                            and combine_side == use_lvc
                                            and combine_line == qe.line
                                            and combine_left > 0):
                                        combine_left -= 1
                                        n_lvaq_store_combined += 1
                                    else:
                                        if use_lvc:
                                            if not have_lvc or lvc_avail == 0:
                                                n_stall_store_port += 1
                                                break
                                            lvc_avail -= 1
                                            lvc_busy += 1
                                        elif l1_simple:
                                            if l1_avail == 0:
                                                n_stall_store_port += 1
                                                break
                                            l1_avail -= 1
                                            l1_busy += 1
                                        elif not l1_try_take(
                                                1, line=qe.line,
                                                is_store=True):
                                            n_stall_store_port += 1
                                            break
                                        combine_side = use_lvc
                                        combine_line = qe.line
                                        combine_left = combining - 1
                                    addr = qe.word << 2
                                    if use_lvc:
                                        line_no = addr >> lvc_shift
                                        if lvc_pending:
                                            t = lvc_pending.get(line_no)
                                            pend = (t is not None
                                                    and t > now)
                                        else:
                                            pend = False
                                        if pend:
                                            ready_lvc(addr, True, now)
                                        else:
                                            ways = lvc_sets[
                                                line_no & lvc_smask]
                                            if line_no in ways:
                                                n_lvc_fast += 1
                                                if ways[0] != line_no:
                                                    ways.remove(line_no)
                                                    ways.insert(0, line_no)
                                                lvc_dirty.add(line_no)
                                            else:
                                                ready_lvc(addr, True, now)
                                    else:
                                        line_no = addr >> l1_shift
                                        if l1_pending:
                                            t = l1_pending.get(line_no)
                                            pend = (t is not None
                                                    and t > now)
                                        else:
                                            pend = False
                                        if pend:
                                            ready_l1(addr, True, now)
                                        else:
                                            ways = l1_sets[
                                                line_no & l1_smask]
                                            if line_no in ways:
                                                n_l1_fast += 1
                                                if ways[0] != line_no:
                                                    ways.remove(line_no)
                                                    ways.insert(0, line_no)
                                                l1_dirty.add(line_no)
                                            else:
                                                ready_l1(addr, True, now)
                            rob_popleft()
                            rob_count -= 1
                            entry.state = 3
                            dst = entry.inst.dst
                            # producer[] is only ever written for dst > 0
                            # (dispatch), so 0 cannot match.
                            if dst > 0 and producer[dst] is entry:
                                producer[dst] = None
                            consumers = entry.consumers
                            if consumers:
                                consumers.clear()
                            if not entry.in_issuable:
                                free_entries.append(entry)
                            committed_total += 1
                            budget -= 1
                            if budget == 0 or rob_count == 0:
                                break
                            entry = rob_entries[0]
                            if entry.state != 2:
                                break
                        # A retire pass with nothing committed at a queue
                        # head is a no-op, so a flag set by a store that
                        # then stalled on its port is harmless.  Both
                        # blocks are MemQueue.retire_committed inlined:
                        # drop the committed prefix, unhook each dropped
                        # store from its word/frame bucket, and advance
                        # the non-sp-store cursor past retired positions.
                        if retired_lsq:
                            q_entries = lsq_entries
                            q_n = len(q_entries)
                            drop = 0
                            while (drop < q_n
                                    and q_entries[drop].rob.state == 3):
                                drop += 1
                            if drop:
                                for i2 in range(drop):
                                    qe2 = q_entries[i2]
                                    if not qe2.is_store:
                                        continue
                                    word = qe2.word
                                    if word >= 0:
                                        b2 = lsq_words.get(word)
                                        if b2 is not None:
                                            try:
                                                b2.remove(qe2)
                                            except ValueError:
                                                pass
                                            if not b2:
                                                del lsq_words[word]
                                    if (qe2.sp_based
                                            and qe2.frame_key is not None):
                                        b2 = lsq_sp.get(qe2.frame_key)
                                        if b2 is not None:
                                            if b2 and b2[0] is qe2:
                                                del b2[0]
                                            else:
                                                try:
                                                    b2.remove(qe2)
                                                except ValueError:
                                                    pass
                                            if not b2:
                                                del lsq_sp[qe2.frame_key]
                                del q_entries[:drop]
                                lsq_base += drop
                                ns2 = lsq_ns
                                h2 = lsq_ns_head
                                m2 = len(ns2)
                                while h2 < m2 and ns2[h2].pos < lsq_base:
                                    h2 += 1
                                if h2 >= 64:
                                    del ns2[:h2]
                                    h2 = 0
                                lsq_ns_head = h2
                        if retired_lvaq:
                            q_entries = lvaq_entries
                            q_n = len(q_entries)
                            drop = 0
                            while (drop < q_n
                                    and q_entries[drop].rob.state == 3):
                                drop += 1
                            if drop:
                                for i2 in range(drop):
                                    qe2 = q_entries[i2]
                                    if not qe2.is_store:
                                        continue
                                    word = qe2.word
                                    if word >= 0:
                                        b2 = lvaq_words.get(word)
                                        if b2 is not None:
                                            try:
                                                b2.remove(qe2)
                                            except ValueError:
                                                pass
                                            if not b2:
                                                del lvaq_words[word]
                                    if (qe2.sp_based
                                            and qe2.frame_key is not None):
                                        b2 = lvaq_sp.get(qe2.frame_key)
                                        if b2 is not None:
                                            if b2 and b2[0] is qe2:
                                                del b2[0]
                                            else:
                                                try:
                                                    b2.remove(qe2)
                                                except ValueError:
                                                    pass
                                            if not b2:
                                                del lvaq_sp[qe2.frame_key]
                                del q_entries[:drop]
                                lvaq_base += drop
                                ns2 = lvaq_ns
                                h2 = lvaq_ns_head
                                m2 = len(ns2)
                                while h2 < m2 and ns2[h2].pos < lvaq_base:
                                    h2 += 1
                                if h2 >= 64:
                                    del ns2[:h2]
                                    h2 = 0
                                lvaq_ns_head = h2

                # ---- writeback ----------------------------------------
                if store_done:
                    # Stores issued last cycle: address and data captured,
                    # ready to commit.  They never produce a register, so
                    # no consumer wakeup — a dedicated lane skips the
                    # calendar ring entirely.
                    for entry in store_done:
                        entry.state = 2
                    store_done.clear()
                slot = now & _MASK
                completing = ring[slot]
                if overflow:
                    extra = overflow.pop(now, None)
                    if extra is not None:
                        if completing is None:
                            ring[slot] = completing = extra
                        else:
                            completing.extend(extra)
                if completing:
                    for entry in completing:
                        entry.state = 2
                        consumers = entry.consumers
                        if not consumers:
                            continue
                        produced = entry.inst.dst
                        for consumer in consumers:
                            pending = consumer.pending - 1
                            consumer.pending = pending
                            qe = consumer.mem
                            if (qe is not None and qe.is_store
                                    and qe.addr_known_time < 0):
                                srcs = consumer.inst.srcs
                                if srcs and srcs[0] == produced:
                                    # STA split: the store's address
                                    # computes as soon as its base register
                                    # arrives, off the issue path.
                                    inst = consumer.inst
                                    qe.addr_known_time = now + 1
                                    word = qe.word = inst.addr >> 2
                                    qe.line = inst.addr >> 5
                                    if qe.use_lvc:
                                        b2 = lvaq_words.get(word)
                                        if b2 is None:
                                            lvaq_words[word] = [qe]
                                        else:
                                            b2.append(qe)
                                    else:
                                        b2 = lsq_words.get(word)
                                        if b2 is None:
                                            lsq_words[word] = [qe]
                                        else:
                                            b2.append(qe)
                            if pending == 0 and consumer.state == 0:
                                if consumer.earliest < now:
                                    consumer.earliest = now
                                if not consumer.in_issuable:
                                    consumer.in_issuable = True
                                    heappush(woken,
                                             (consumer.seq, consumer))
                        consumers.clear()
                    # Leave the drained bucket in its slot for reuse;
                    # events exactly one ring period out go to the
                    # overflow dict, so the slot cannot alias this cycle.
                    completing.clear()

                # ---- memory: LVAQ (fast forwarding + combining) -------
                if decoupled and lvaq_unserviced:
                    # Inline oldest_unknown_store_seq: advance the
                    # incremental cursor past known-address stores,
                    # compacting the consumed prefix past the threshold.
                    ulst = lvaq_unknown
                    uh = lvaq_us_head
                    un = len(ulst)
                    while uh < un and ulst[uh].addr_known_time >= 0:
                        uh += 1
                    if uh >= 64:
                        del ulst[:uh]
                        un -= uh
                        uh = 0
                    lvaq_us_head = uh
                    unknown_seq = ulst[uh].rob.seq if uh < un else inf_seq
                    if fast_fwd:
                        ulst = lvaq_un_nonsp
                        uh = lvaq_un_head
                        un = len(ulst)
                        while uh < un and ulst[uh].addr_known_time >= 0:
                            uh += 1
                        if uh >= 64:
                            del ulst[:uh]
                            un -= uh
                            uh = 0
                        lvaq_un_head = uh
                        nonsp_unknown_seq = (ulst[uh].rob.seq if uh < un
                                             else inf_seq)
                    else:
                        nonsp_unknown_seq = unknown_seq
                    ports_exhausted = not have_lvc or lvc_avail == 0
                    next_slot = (now + 1) & _MASK
                    # Inline pending_loads: skip the serviced prefix.
                    loads = lvaq_loads_list
                    li = lvaq_load_head
                    n_loads = len(loads)
                    while li < n_loads and loads[li].serviced:
                        li += 1
                    if li >= 64:
                        del loads[:li]
                        n_loads -= li
                        li = 0
                    lvaq_load_head = li
                    entries = lvaq_entries
                    qbase = lvaq_base
                    qlen = len(entries)
                    serviced = 0
                    while li < n_loads:
                        qe = loads[li]
                        li += 1
                        if qe.serviced:
                            continue
                        entry = qe.rob
                        state = entry.state
                        if state == 2:
                            continue

                        # --- fast data forwarding (sp-relative pairs) --
                        blocking_seq = unknown_seq
                        if fast_fwd and qe.sp_based:
                            # Inline fast_forward_source_fast: the scan's
                            # outcome is decided by whichever is younger —
                            # the youngest same-key sp store or the
                            # youngest *blocking* non-sp store (unknown
                            # address, or known and aliasing).
                            fkey = qe.frame_key
                            source = None
                            if fkey is None:
                                conclusive = False
                            else:
                                lpos = qe.pos
                                source_pos = -1
                                bucket = lvaq_sp_get(fkey)
                                if bucket:
                                    for i2 in range(len(bucket) - 1, -1, -1):
                                        sentry = bucket[i2]
                                        if sentry.pos < lpos:
                                            source = sentry
                                            source_pos = sentry.pos
                                            break
                                conclusive = True
                                ns = lvaq_ns
                                lword = qe.word
                                for i2 in range(len(ns) - 1,
                                                lvaq_ns_head - 1, -1):
                                    sentry = ns[i2]
                                    p = sentry.pos
                                    if p >= lpos:
                                        continue
                                    if p < source_pos:
                                        break
                                    if (sentry.addr_known_time < 0
                                            or sentry.word == lword):
                                        source = None
                                        conclusive = False
                                        break
                            if source is not None and state == 0:
                                src_rob = source.rob
                                if (src_rob.pending == 0
                                        and src_rob.earliest <= now):
                                    # The match resolves before address
                                    # generation, but the transfer still
                                    # occupies an LVC port (the queue
                                    # datapath is the cache's): the gain
                                    # is latency and disambiguation, not
                                    # bandwidth.
                                    if ports_exhausted or lvc_avail == 0:
                                        n_stall_lvaq_port += 1
                                        ports_exhausted = True
                                        continue
                                    lvc_avail -= 1
                                    lvc_busy += 1
                                    qe.serviced = True
                                    serviced += 1
                                    entry.state = 1
                                    bucket = ring[next_slot]
                                    if bucket is None:
                                        ring[next_slot] = [entry]
                                    else:
                                        bucket.append(entry)
                                    n_lvaq_fast_forwards += 1
                                    continue
                                # Matching store's data not produced yet.
                                continue
                            if conclusive:
                                # Offsets proved independence from every
                                # earlier sp-relative store: only non-sp
                                # stores can block.
                                blocking_seq = nonsp_unknown_seq

                        # --- conventional path -------------------------
                        akt = qe.addr_known_time
                        if akt < 0 or akt > now:
                            continue
                        if entry.seq > blocking_seq:
                            continue  # earlier unknown-address store
                        if qe.penalty and now < akt + qe.penalty:
                            continue  # misprediction recovery
                        # A disambiguated load that cannot get a port
                        # stalls identically whether it would forward or
                        # access (both paths charge the same counter), so
                        # the forward probe can be skipped outright.
                        if ports_exhausted or lvc_avail == 0:
                            n_stall_lvaq_port += 1
                            ports_exhausted = True
                            continue
                        # Inline forward_source_fast, existence only: any
                        # indexed same-word store older than the load.
                        bucket = lvaq_words_get(qe.word)
                        fwd = False
                        if bucket:
                            lpos = qe.pos
                            for sentry in bucket:
                                if sentry.pos < lpos:
                                    fwd = True
                                    break
                        if fwd:
                            # Store-to-load forwarding still occupies a
                            # cache port: sim-outorder acquires the port
                            # before probing the store queue, and the
                            # paper's simulator derives from it.  (The
                            # fast forwarding path above is the exception
                            # — it resolves before address generation,
                            # off the cache pipeline entirely.)
                            lvc_avail -= 1
                            lvc_busy += 1
                            qe.serviced = True
                            serviced += 1
                            bucket = ring[next_slot]
                            if bucket is None:
                                ring[next_slot] = [entry]
                            else:
                                bucket.append(entry)
                            n_lvaq_forwards += 1
                            continue
                        lvc_avail -= 1
                        lvc_busy += 1
                        addr = qe.word << 2
                        line_no = addr >> lvc_shift
                        if lvc_pending:
                            t = lvc_pending.get(line_no)
                            pend = t is not None and t > now
                        else:
                            pend = False
                        if pend:
                            ready = ready_lvc(addr, False, now)
                        else:
                            ways = lvc_sets[line_no & lvc_smask]
                            if line_no in ways:
                                n_lvc_fast += 1
                                if ways[0] != line_no:
                                    ways.remove(line_no)
                                    ways.insert(0, line_no)
                                ready = now + lvc_hitlat
                            else:
                                ready = ready_lvc(addr, False, now)
                        qe.serviced = True
                        serviced += 1
                        d = ready - now
                        in_ring = 1 <= d < _RING
                        if in_ring:
                            slot2 = ready & _MASK
                            bucket = ring[slot2]
                            if bucket is None:
                                bucket = ring[slot2] = []
                            bucket.append(entry)
                        else:
                            bucket = overflow.get(ready)
                            if bucket is None:
                                bucket = overflow[ready] = []
                            bucket.append(entry)
                        # --- access combining: absorb following same-
                        # line refs into this port transaction ----------
                        if combine_window:
                            j = qe.pos - qbase + 1
                            jn = j + combining - 1
                            if jn > qlen:
                                jn = qlen
                            line = qe.line
                            while j < jn:
                                cand = entries[j]
                                j += 1
                                cakt = cand.addr_known_time
                                if (cand.is_store or cand.serviced
                                        or cakt < 0 or cakt > now
                                        or cand.line != line
                                        or cand.rob.seq > unknown_seq
                                        or cand.penalty
                                        or cand.rob.state == 2):
                                    continue
                                cbucket = lvaq_words_get(cand.word)
                                if cbucket:
                                    cpos = cand.pos
                                    fwd = False
                                    for sentry in cbucket:
                                        if sentry.pos < cpos:
                                            fwd = True
                                            break
                                    if fwd:
                                        continue
                                cand.serviced = True
                                serviced += 1
                                bucket.append(cand.rob)
                                n_lvaq_load_combined += 1
                    if serviced:
                        lvaq_unserviced -= serviced

                # ---- memory: LSQ --------------------------------------
                if lsq_unserviced:
                    # Inline oldest_unknown_store_seq (see LVAQ note).
                    ulst = lsq_unknown
                    uh = lsq_us_head
                    un = len(ulst)
                    while uh < un and ulst[uh].addr_known_time >= 0:
                        uh += 1
                    if uh >= 64:
                        del ulst[:uh]
                        un -= uh
                        uh = 0
                    lsq_us_head = uh
                    unknown_seq = ulst[uh].rob.seq if uh < un else inf_seq
                    if l1_simple:
                        ports_exhausted = l1_avail == 0
                    else:
                        ports_exhausted = l1_ports.available == 0
                    next_slot = (now + 1) & _MASK
                    # Inline pending_loads: skip the serviced prefix.
                    loads = lsq_loads_list
                    li = lsq_load_head
                    n_loads = len(loads)
                    while li < n_loads and loads[li].serviced:
                        li += 1
                    if li >= 64:
                        del loads[:li]
                        n_loads -= li
                        li = 0
                    lsq_load_head = li
                    serviced = 0
                    while li < n_loads:
                        qe = loads[li]
                        li += 1
                        if qe.serviced:
                            continue
                        entry = qe.rob
                        if entry.state == 2:
                            continue
                        akt = qe.addr_known_time
                        if akt < 0 or akt > now:
                            continue
                        if entry.seq > unknown_seq:
                            continue  # earlier unknown-address store
                        if qe.penalty and now < akt + qe.penalty:
                            continue  # misprediction recovery
                        # Port-exhaustion hoist (see LVAQ note): a stalled
                        # load charges the same counter on the forward and
                        # access paths, so skip the forward probe.
                        if ports_exhausted or (l1_simple and l1_avail == 0):
                            n_stall_lsq_port += 1
                            ports_exhausted = True
                            continue
                        bucket = lsq_words_get(qe.word)
                        fwd = False
                        if bucket:
                            lpos = qe.pos
                            for sentry in bucket:
                                if sentry.pos < lpos:
                                    fwd = True
                                    break
                        if fwd:
                            # Forwarding occupies a port (see LVAQ note).
                            if l1_simple:
                                l1_avail -= 1
                                l1_busy += 1
                            elif not l1_try_take(
                                    1, line=qe.line, is_store=False):
                                n_stall_lsq_port += 1
                                ports_exhausted = True
                                continue
                            qe.serviced = True
                            serviced += 1
                            bucket = ring[next_slot]
                            if bucket is None:
                                ring[next_slot] = [entry]
                            else:
                                bucket.append(entry)
                            n_lsq_forwards += 1
                            continue
                        if l1_simple:
                            l1_avail -= 1
                            l1_busy += 1
                        elif not l1_try_take(
                                1, line=qe.line, is_store=False):
                            n_stall_lsq_port += 1
                            ports_exhausted = True
                            continue
                        addr = qe.word << 2
                        line_no = addr >> l1_shift
                        if l1_pending:
                            t = l1_pending.get(line_no)
                            pend = t is not None and t > now
                        else:
                            pend = False
                        if pend:
                            ready = ready_l1(addr, False, now)
                        else:
                            ways = l1_sets[line_no & l1_smask]
                            if line_no in ways:
                                n_l1_fast += 1
                                if ways[0] != line_no:
                                    ways.remove(line_no)
                                    ways.insert(0, line_no)
                                ready = now + l1_hitlat
                            else:
                                ready = ready_l1(addr, False, now)
                        qe.serviced = True
                        serviced += 1
                        d = ready - now
                        if 1 <= d < _RING:
                            slot2 = ready & _MASK
                            bucket = ring[slot2]
                            if bucket is None:
                                ring[slot2] = [entry]
                            else:
                                bucket.append(entry)
                        else:
                            bucket = overflow.get(ready)
                            if bucket is None:
                                overflow[ready] = [entry]
                            else:
                                bucket.append(entry)
                    if serviced:
                        lsq_unserviced -= serviced

                # ---- issue --------------------------------------------
                if sleep:
                    slept = sleep_pop(now, None)
                    if slept is not None:
                        for entry in slept:
                            heappush(woken, (entry.seq, entry))
                if not woken and ready_fifo:
                    # Common case: the heap lane is empty, so the FIFO
                    # lane alone is the exact oldest-first order — drain
                    # it without the per-entry lane merge.  Deferred
                    # entries go to the heap lane *after* the loop, so
                    # the lane stays empty throughout.
                    budget = width
                    deferred = None
                    while budget and ready_fifo:
                        entry = ready_fifo[0]
                        if entry.state != 0:
                            fifo_popleft()
                            entry.in_issuable = False
                            continue
                        if entry.earliest > now:
                            fifo_popleft()
                            e2 = entry.earliest
                            b2 = sleep_get(e2)
                            if b2 is None:
                                sleep[e2] = [entry]
                            else:
                                b2.append(entry)
                            continue
                        inst = entry.inst
                        fu = inst.fu
                        kind = fu_kind[fu]
                        if kind == 0:
                            if ialu_left:
                                ialu_left -= 1
                                ok = True
                            else:
                                ok = False
                        elif kind == 1:
                            if falu_left:
                                falu_left -= 1
                                ok = True
                            else:
                                ok = False
                        else:
                            ok = fus_try_take(fu, now)
                        if not ok:
                            fifo_popleft()
                            n_stall_fu += 1
                            if deferred is None:
                                deferred = [entry]
                            else:
                                deferred.append(entry)
                            continue
                        fifo_popleft()
                        budget -= 1
                        entry.state = 1
                        entry.in_issuable = False
                        qe = entry.mem
                        if qe is not None:
                            if qe.addr_known_time < 0:
                                qe.addr_known_time = now + 1
                                word = qe.word = inst.addr >> 2
                                qe.line = inst.addr >> 5
                                if qe.is_store:
                                    if qe.use_lvc:
                                        b2 = lvaq_words.get(word)
                                        if b2 is None:
                                            lvaq_words[word] = [qe]
                                        else:
                                            b2.append(qe)
                                    else:
                                        b2 = lsq_words.get(word)
                                        if b2 is None:
                                            lsq_words[word] = [qe]
                                        else:
                                            b2.append(qe)
                            if qe.is_store:
                                store_done_append(entry)
                        else:
                            when = now + latency[fu]
                            slot2 = when & _MASK
                            bucket = ring[slot2]
                            if bucket is None:
                                ring[slot2] = [entry]
                            else:
                                bucket.append(entry)
                    if deferred:
                        for entry in deferred:
                            heappush(woken, (entry.seq, entry))
                elif ready_fifo or woken:
                    budget = width
                    deferred = None
                    while budget:
                        # Merge the two seq-ordered lanes: oldest first.
                        if ready_fifo:
                            entry = ready_fifo[0]
                            if woken and woken[0][0] < entry.seq:
                                entry = woken[0][1]
                                from_fifo = False
                            else:
                                from_fifo = True
                        elif woken:
                            entry = woken[0][1]
                            from_fifo = False
                        else:
                            break
                        if entry.state != 0:
                            # Already handled (e.g. fast-forwarded load):
                            # drop lazily.
                            if from_fifo:
                                fifo_popleft()
                            else:
                                heappop(woken)
                            entry.in_issuable = False
                            continue
                        if entry.earliest > now:
                            if from_fifo:
                                fifo_popleft()
                            else:
                                heappop(woken)
                            e2 = entry.earliest
                            b2 = sleep_get(e2)
                            if b2 is None:
                                sleep[e2] = [entry]
                            else:
                                b2.append(entry)
                            continue
                        inst = entry.inst
                        fu = inst.fu
                        kind = fu_kind[fu]
                        if kind == 0:
                            if ialu_left:
                                ialu_left -= 1
                                ok = True
                            else:
                                ok = False
                        elif kind == 1:
                            if falu_left:
                                falu_left -= 1
                                ok = True
                            else:
                                ok = False
                        else:
                            ok = fus_try_take(fu, now)
                        if not ok:
                            if from_fifo:
                                fifo_popleft()
                            else:
                                heappop(woken)
                            n_stall_fu += 1
                            if deferred is None:
                                deferred = [entry]
                            else:
                                deferred.append(entry)
                            continue
                        if from_fifo:
                            fifo_popleft()
                        else:
                            heappop(woken)
                        budget -= 1
                        entry.state = 1
                        entry.in_issuable = False
                        qe = entry.mem
                        if qe is not None:
                            # Address generation: address known next cycle
                            # (stores may already have resolved theirs).
                            if qe.addr_known_time < 0:
                                qe.addr_known_time = now + 1
                                word = qe.word = inst.addr >> 2
                                qe.line = inst.addr >> 5
                                if qe.is_store:
                                    if qe.use_lvc:
                                        b2 = lvaq_words.get(word)
                                        if b2 is None:
                                            lvaq_words[word] = [qe]
                                        else:
                                            b2.append(qe)
                                    else:
                                        b2 = lsq_words.get(word)
                                        if b2 is None:
                                            lsq_words[word] = [qe]
                                        else:
                                            b2.append(qe)
                            if qe.is_store:
                                # Address and data both captured: ready
                                # to commit next cycle.
                                store_done_append(entry)
                        else:
                            when = now + latency[fu]
                            slot2 = when & _MASK
                            bucket = ring[slot2]
                            if bucket is None:
                                ring[slot2] = [entry]
                            else:
                                bucket.append(entry)
                    if deferred:
                        # Deferred entries re-enter through the heap lane
                        # regardless of origin; the merge restores order.
                        for entry in deferred:
                            heappush(woken, (entry.seq, entry))

                # ---- dispatch -----------------------------------------
                if index < total:
                    earliest = now + 1
                    slots = width
                    while slots:
                        slots -= 1
                        if rob_count >= rob_size:
                            n_stall_rob_full += 1
                            break
                        inst = insts[index]
                        fu = inst.fu
                        is_mem = fu == load_fu or fu == store_fu
                        to_lvaq = False
                        mispredicted = False
                        if is_mem:
                            if decoupled:
                                hint = inst.local_hint
                                if hint is not None:
                                    to_lvaq = hint
                                else:
                                    to_lvaq, mispredicted = steer(inst)
                            if to_lvaq:
                                if len(lvaq_entries) >= lvaq_size:
                                    n_stall_lvaq_full += 1
                                    break
                            elif len(lsq_entries) >= lsq_size:
                                n_stall_lsq_full += 1
                                break
                        if free_entries:
                            entry = free_entries.pop()
                            entry.seq = seq
                            entry.inst = inst
                            entry.state = 0
                            entry.mem = None
                        else:
                            entry = new_rob_entry(seq, inst)
                        seq += 1
                        # Source-operand scoreboard check, unrolled for the
                        # 0/1/2-operand cases (every ISA instruction; the
                        # loop tail keeps arbitrary tuples exact).
                        # reg <= 0 is $zero / absent: always ready.
                        pending = 0
                        srcs = inst.srcs
                        n_srcs = len(srcs)
                        if n_srcs:
                            reg = srcs[0]
                            if reg > 0:
                                prod = producer[reg]
                                if prod is not None and prod.state != 2:
                                    prod.consumers.append(entry)
                                    pending = 1
                            if n_srcs > 1:
                                reg = srcs[1]
                                if reg > 0:
                                    prod = producer[reg]
                                    if (prod is not None
                                            and prod.state != 2):
                                        prod.consumers.append(entry)
                                        pending += 1
                                if n_srcs > 2:
                                    for reg in srcs[2:]:
                                        if reg <= 0:
                                            continue
                                        prod = producer[reg]
                                        if (prod is not None
                                                and prod.state != 2):
                                            prod.consumers.append(entry)
                                            pending += 1
                        entry.pending = pending
                        entry.earliest = earliest
                        dst = inst.dst
                        if dst > 0:
                            producer[dst] = entry
                        rob_append(entry)  # size checked above
                        rob_count += 1
                        if is_mem:
                            sp_based = inst.sp_based
                            is_store = fu == store_fu
                            # MemQueueEntry.__init__ spelled out (the
                            # constructor frame is measurable at this call
                            # rate).
                            qe = mem_entry_new(new_mem_entry)
                            qe.rob = entry
                            qe.is_store = is_store
                            qe.word = -1
                            qe.line = -1
                            qe.addr_known_time = -1
                            qe.dispatch_time = now
                            qe.serviced = False
                            qe.sp_based = sp_based
                            qe.frame_key = ((inst.frame_id, inst.offset)
                                            if sp_based else None)
                            qe.use_lvc = to_lvaq
                            qe.penalty = (mispredict_penalty
                                          if mispredicted else 0)
                            entry.mem = qe
                            # Inline MemQueue.append (fullness was already
                            # checked by the stall tests above).
                            if to_lvaq:
                                qe.pos = lvaq_base + len(lvaq_entries)
                                lvaq_entries.append(qe)
                                if is_store:
                                    lvaq_unknown.append(qe)
                                    if sp_based:
                                        lvaq_sp_set(qe.frame_key,
                                                    []).append(qe)
                                    else:
                                        lvaq_un_nonsp.append(qe)
                                        lvaq_ns.append(qe)
                                else:
                                    lvaq_loads_list.append(qe)
                                    lvaq_unserviced += 1
                            else:
                                qe.pos = lsq_base + len(lsq_entries)
                                lsq_entries.append(qe)
                                if is_store:
                                    lsq_unknown.append(qe)
                                    if sp_based:
                                        lsq_sp_set(qe.frame_key,
                                                   []).append(qe)
                                    else:
                                        lsq_un_nonsp.append(qe)
                                        lsq_ns.append(qe)
                                else:
                                    lsq_loads_list.append(qe)
                                    lsq_unserviced += 1
                            if is_store:
                                # STA/STD split (as in sim-outorder and
                                # the R10000 address queue): the store's
                                # address computes as soon as its base
                                # register is available — it never waits
                                # for the store *data*, so it stops
                                # blocking younger loads' disambiguation
                                # almost immediately.
                                srcs = inst.srcs
                                base_reg = srcs[0] if srcs else 0
                                prod = (producer[base_reg]
                                        if base_reg > 0 else None)
                                if prod is None or prod.state == 2:
                                    qe.addr_known_time = earliest
                                    word = qe.word = inst.addr >> 2
                                    qe.line = inst.addr >> 5
                                    if to_lvaq:
                                        b2 = lvaq_words.get(word)
                                        if b2 is None:
                                            lvaq_words[word] = [qe]
                                        else:
                                            b2.append(qe)
                                    else:
                                        b2 = lsq_words.get(word)
                                        if b2 is None:
                                            lsq_words[word] = [qe]
                                        else:
                                            b2.append(qe)
                                if to_lvaq:
                                    n_lvaq_stores += 1
                                else:
                                    n_lsq_stores += 1
                            elif to_lvaq:
                                n_lvaq_loads += 1
                            else:
                                n_lsq_loads += 1
                            if mispredicted:
                                n_classify_mispredictions += 1
                        if pending == 0:
                            entry.in_issuable = True
                            fifo_append(entry)
                        index += 1
                        if index >= total:
                            break

                # ---- cycle skip: when nothing can happen until the
                # next scheduled completion, jump there.  Safe only when
                # every stage is provably a no-op for the skipped cycles;
                # see docs/perf.md for the invariant and the stall
                # accounting.
                if (not ready_fifo
                        and not woken
                        and not sleep
                        and not store_done
                        and (index >= total or rob_count >= rob_size)
                        and lsq_unserviced == 0
                        and lvaq_unserviced == 0
                        and committed_total < total
                        and rob_count
                        and rob_entries[0].state != 2):
                    target = None
                    for k in range(1, _RING):
                        if ring[(now + k) & _MASK]:
                            target = now + k
                            break
                    if overflow:
                        for t in overflow:
                            if t > now and (target is None or t < target):
                                target = t
                    cap = limit + 1
                    if target is None or target > cap:
                        target = cap
                    if target > now + 1:
                        if index < total:
                            # The reference charges one rob-full dispatch
                            # stall per skipped cycle.
                            n_stall_rob_full += target - now - 1
                        now = target - 1
        finally:
            if gc_was_enabled:
                gc.enable()
            # Write locally-tracked state back to its objects so the
            # post-run machine looks exactly as if every stage had run
            # through the normal method calls.
            self.now = now
            self._seq = seq
            self._committed = committed_total
            if l1_simple:
                l1_ports._available = l1_avail
                l1_ports.busy_transactions += l1_busy
                l1_ports.cycles_saturated += l1_sat
            if have_lvc:
                lvc_ports._available = lvc_avail
                lvc_ports.busy_transactions += lvc_busy
                lvc_ports.cycles_saturated += lvc_sat
            fus._ialu_left = ialu_left
            fus._falu_left = falu_left
            lsq.unserviced_loads = lsq_unserviced
            lvaq.unserviced_loads = lvaq_unserviced
            lsq._us_head = lsq_us_head
            lvaq._us_head = lvaq_us_head
            lvaq._un_head = lvaq_un_head
            lsq._load_head = lsq_load_head
            lvaq._load_head = lvaq_load_head
            lsq._ns_head = lsq_ns_head
            lvaq._ns_head = lvaq_ns_head
            lsq.base = lsq_base
            lvaq.base = lvaq_base
            # Fast-path cache hits bumped accesses+hits locally; fold them
            # into the shared counter dict (additive, order-independent).
            if n_l1_fast:
                counts[l1_ka] = counts_get(l1_ka, 0) + n_l1_fast
                counts[l1_kh] = counts_get(l1_kh, 0) + n_l1_fast
            if n_lvc_fast:
                counts[lvc_ka] = counts_get(lvc_ka, 0) + n_lvc_fast
                counts[lvc_kh] = counts_get(lvc_kh, 0) + n_lvc_fast
            self._n_stall_rob_full = n_stall_rob_full
            self._n_stall_lsq_full = n_stall_lsq_full
            self._n_stall_lvaq_full = n_stall_lvaq_full
            self._n_stall_fu = n_stall_fu
            self._n_stall_store_port = n_stall_store_port
            self._n_stall_lsq_port = n_stall_lsq_port
            self._n_stall_lvaq_port = n_stall_lvaq_port
            self._n_lsq_loads = n_lsq_loads
            self._n_lsq_stores = n_lsq_stores
            self._n_lsq_forwards = n_lsq_forwards
            self._n_lvaq_loads = n_lvaq_loads
            self._n_lvaq_stores = n_lvaq_stores
            self._n_lvaq_forwards = n_lvaq_forwards
            self._n_lvaq_fast_forwards = n_lvaq_fast_forwards
            self._n_lvaq_load_combined = n_lvaq_load_combined
            self._n_lvaq_store_combined = n_lvaq_store_combined
            self._n_classify_mispredictions = n_classify_mispredictions
        counters = self.counters
        for name, value in (
            ("stall.rob_full", n_stall_rob_full),
            ("stall.lsq_full", n_stall_lsq_full),
            ("stall.lvaq_full", n_stall_lvaq_full),
            ("stall.fu", n_stall_fu),
            ("stall.store_port", n_stall_store_port),
            ("stall.lsq_port", n_stall_lsq_port),
            ("stall.lvaq_port", n_stall_lvaq_port),
            ("lsq.loads", n_lsq_loads),
            ("lsq.stores", n_lsq_stores),
            ("lsq.forwards", n_lsq_forwards),
            ("lvaq.loads", n_lvaq_loads),
            ("lvaq.stores", n_lvaq_stores),
            ("lvaq.forwards", n_lvaq_forwards),
            ("lvaq.fast_forwards", n_lvaq_fast_forwards),
            ("lvaq.load_combined", n_lvaq_load_combined),
            ("lvaq.store_combined", n_lvaq_store_combined),
            ("classify.mispredictions", n_classify_mispredictions),
        ):
            if value:
                counters.add(name, value)
        counters.set("cycles", now)
        counters.set("instructions", total)
        return SimResult(self.config.notation(), workload_name,
                         now, total, self.counters)

    def _livelock_report(self, limit: int, total: int, index: int) -> str:
        """Diagnosable cycle-limit message (satellite of ISSUE 2)."""
        rob_entries = self._rob_entries
        head = rob_entries[0] if rob_entries else None
        pending_events = sum(
            len(b) for b in self._ring if b
        ) + sum(len(b) for b in self._overflow.values())
        lsq, lvaq = self.lsq, self.lvaq
        return (
            f"cycle limit exceeded ({limit}) at "
            f"{self._committed}/{total} committed; "
            f"dispatch index {index}; "
            f"rob {len(rob_entries)}/{self._rob_size} head={head!r}; "
            f"lsq {len(lsq.entries)}/{lsq.size} "
            f"(unserviced_loads={lsq.unserviced_loads}, "
            f"oldest_unknown_store_seq={lsq.oldest_unknown_store_seq()}); "
            f"lvaq {len(lvaq.entries)}/{lvaq.size} "
            f"(unserviced_loads={lvaq.unserviced_loads}, "
            f"oldest_unknown_store_seq={lvaq.oldest_unknown_store_seq()}); "
            f"issuable={len(self._ready_fifo) + len(self._issuable)}; "
            f"scheduled_events={pending_events}"
        )

"""The cycle-stepped out-of-order processor model.

This is the reproduction of the paper's simulator: a 16-issue RUU/ROB
machine (derived conceptually from SimpleScalar's sim-outorder) with a
conventional LSQ + L1 path and — when configured — the decoupled
LVAQ + LVC path with fast data forwarding and access combining.  The
frontend and the first-level port arbiters are pluggable policies
(``perfect``/``gshare``, ``ideal``/``finite``/…); the defaults model the
paper's machine (perfect front end, ideal per-cycle port budgets —
Section 3.1).

Stage order within a cycle (processed so results flow forward):

1. **commit** — retire completed instructions in order; stores write their
   cache (consuming a port) at commit.
2. **writeback** — completions scheduled for this cycle wake dependents.
3. **memory** — loads with known addresses access their cache or forward
   from an earlier store in their queue; fast forwarding matches
   sp-relative pairs before address generation; access combining merges
   same-line LVAQ references into one port transaction.
4. **issue** — ready instructions grab issue slots and functional units
   (memory ops issue their address generation here).
5. **dispatch** — decode up to ``issue_width`` instructions from the
   committed stream into the ROB and the memory queues, steering each
   memory reference to the LSQ or LVAQ (stream partitioning), gated by
   the frontend policy.

Because the simulated stream is the committed dynamic stream, frontend
effects (branch mispredicts, I-cache misses) are timing-independent
given the stream: the ``gshare`` policy pre-computes them once and the
dispatch stage charges the bubbles (see ``repro.core.frontend``).  Under
the default ``perfect`` policy there is no wrong-path work and trace
timing is exactly execution-driven timing.

Implementation notes
--------------------

This is the hot loop of every experiment, so it is written for speed
while staying **bit-identical** — same cycle counts, same counter
values — to the straightforward model it replaced (kept verbatim as
``repro.perf.reference.ReferenceProcessor`` and enforced by the golden
equivalence suite in ``tests/perf``).

The stage logic lives in :mod:`repro.core.stages`: one component per
stage, each a ``bind(state)`` factory closing over the shared
:class:`~repro.core.stages.state.CoreState` and returning ``(tick,
finish)``.  The kernel steps cycles, running each tick behind a guard
that is provably a no-op check (an empty calendar slot cannot wake
anyone, a non-COMPLETED ROB head cannot commit, …), so quiet stages
cost one truth test per cycle.  Two compositions of the same stage
sources exist: the default **fused** kernel splices the tick bodies
into one generated function (:mod:`repro.core.stages.compose`), and
the **portable** kernel (``REPRO_PORTABLE_KERNEL=1``) calls the bound
closures per tick; tests pin them bit-identical.
The performance tricks the components inherit from the fused-loop
ancestor — the 256-slot calendar ring, the two seq-ordered issue lanes,
the ROB free list, simple port arbiters and ALU pools as local integer
budgets, counters as plain ints folded once at the end, the cycle skip
to the next scheduled event, GC paused for the run — are documented in
``docs/perf.md``; the stage interface contracts and state-ownership map
are in ``docs/timing_model.md``.
"""

from __future__ import annotations

import gc
import os
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.isa.opcodes import FuClass, LATENCY_BY_INT
from repro.core.classify import StreamPartitioner
from repro.core.config import MachineConfig
from repro.core.frontend import make_frontend
from repro.core.metrics import SimResult
from repro.core.stages import commit as commit_stage
from repro.core.stages import dispatch as dispatch_stage
from repro.core.stages import issue as issue_stage
from repro.core.stages import memory as memory_stage
from repro.core.stages import writeback as writeback_stage
from repro.core.stages.state import CoreState, MASK, RING
from repro.mem.system import MemorySystem
from repro.pipeline.fu import FuPool
from repro.pipeline.rob import Rob, RobEntry
from repro.stats.counters import CounterSet
from repro.vm.trace import DynInst


class Processor:
    """One simulated machine instance; reusable across runs is NOT supported
    — construct a fresh Processor per workload run."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.counters = CounterSet()
        self.memsys = MemorySystem(config.mem, config.lsq_size,
                                   config.lvaq_size, self.counters)
        # Aliases into the facade, bound once (hot paths and the many
        # existing callers address these directly).
        self.hierarchy = self.memsys.hierarchy
        self.lsq = self.memsys.lsq
        self.lvaq = self.memsys.lvaq
        self.rob = Rob(config.rob_size)
        self.fus = FuPool(config.ialu_units, config.falu_units,
                          config.imultdiv_units, config.fmultdiv_units)
        self.partitioner = StreamPartitioner(
            config.decoupled, config.decouple.predictor
        )
        self.frontend = make_frontend(config.frontend)
        self.now = 0
        # Completion calendar: ring for near events, dict for far ones.
        self._ring: List[Optional[List[RobEntry]]] = [None] * RING
        self._overflow: Dict[int, List[RobEntry]] = {}
        # The issuable set is two seq-ordered lanes merged at issue time:
        # dispatch-ready entries arrive in seq order and ride a plain FIFO
        # (no tuple, no heap op); entries woken later by writeback arrive
        # out of order and go through a (seq, entry) heap.
        self._ready_fifo: "deque[RobEntry]" = deque()
        self._issuable: List[Tuple[int, RobEntry]] = []
        self._producer: List[Optional[RobEntry]] = [None] * 64
        self._seq = 0
        self._committed = 0
        self._rob_entries = self.rob.entries
        self._rob_size = config.rob_size

    # ------------------------------------------------------------------ run

    def run(self, insts: Sequence[DynInst],
            workload_name: str = "<trace>") -> SimResult:
        """Simulate the dynamic stream to completion and return the result.

        Binds the five stage components to a fresh :class:`CoreState`
        and steps cycles to completion through one of three
        composition modes of the *same* stage sources:

        - the **specialized** kernel (default): the fused source with
          this config's scalars constant-folded in and dead policy
          arms deleted, compiled once per machine description
          (:mod:`repro.core.stages.specialize`);
        - the **generic fused** kernel (``REPRO_GENERIC_KERNEL=1``, or
          the fallback when specialization finds nothing to fold): the
          stage tick bodies spliced into a single generated function,
          compiled once per process (:mod:`repro.core.stages.compose`)
          — one frame, no per-tick call overhead;
        - the **portable** kernel (``REPRO_PORTABLE_KERNEL=1``): plain
          closure calls per tick, the shape the stage interface
          contract is written against, kept as the debuggable
          cross-check (``tests/core/test_kernel_compose.py`` and
          ``tests/core/test_kernel_specialize.py`` pin all three
          bit-identical).
        """
        total = len(insts)
        limit = total * 80 + 1000
        state = CoreState(self, insts)
        env_get = os.environ.get
        if env_get("REPRO_PORTABLE_KERNEL", "") not in ("", "0"):
            (now, committed_total, index, shares, exceeded,
             n_skip_rob_full) = self._portable_kernel(state, insts)
        else:
            kernel = None
            if env_get("REPRO_GENERIC_KERNEL", "") in ("", "0"):
                # Default: the per-config specialized kernel (config
                # scalars constant-folded, dead policy arms deleted),
                # compiled once per machine description and kept warm
                # for the life of the process.  Falls back to the
                # generic composed kernel when specialization finds
                # nothing to fold.
                from repro.core.stages.specialize import kernel_for
                kernel = kernel_for(self, state)
            if kernel is None:
                from repro.core.stages.compose import fused_kernel
                kernel = fused_kernel()
            (now, committed_total, index, shares, exceeded,
             n_skip_rob_full) = kernel(self, state)
        if exceeded:
            raise SimulationError(
                self._livelock_report(limit, total, index))
        counters = self.counters
        if n_skip_rob_full:
            shares["stall.rob_full"] = (
                shares.get("stall.rob_full", 0) + n_skip_rob_full)
        for name, value in shares.items():
            if value:
                counters.add(name, value)
        conflict_stalls = self.memsys.conflict_stalls()
        if conflict_stalls:
            counters.add("ports.conflict_stalls", conflict_stalls)
        counters.set("cycles", now)
        counters.set("instructions", total)
        return SimResult(self.config.notation(), workload_name,
                         now, total, self.counters)

    def _portable_kernel(self, state: CoreState,
                         insts: Sequence[DynInst]):
        """The call-composed kernel loop.

        Steps cycles calling each stage's bound tick behind its
        activity guard, with the per-cycle scalars (port budgets, ROB
        occupancy, dispatch index, unserviced-load counts) owned here
        and threaded through tick arguments/returns.  Returns the
        kernel scalars and the merged finish() shares; the caller
        applies them (shared with the fused kernel's epilogue).
        """
        total = len(insts)
        index = 0
        limit = total * 80 + 1000
        commit_tick, commit_finish = commit_stage.bind(state)
        writeback_tick, writeback_finish = writeback_stage.bind(state)
        memory_tick, memory_finish = memory_stage.bind(state)
        issue_tick, issue_finish = issue_stage.bind(state)
        dispatch_tick, dispatch_finish = dispatch_stage.bind(state)

        rob_entries = state.rob_entries
        rob_count = len(rob_entries)
        rob_size = state.rob_size
        ready_fifo = state.ready_fifo
        woken = state.woken
        sleep = state.sleep
        store_done = state.store_done
        ring = state.ring
        overflow = state.overflow

        lsq = self.lsq
        lvaq = self.lvaq
        lsq_unserviced = lsq.unserviced_loads
        lvaq_unserviced = lvaq.unserviced_loads

        # Simple arbiters (the exact PortArbiter type) are pure per-cycle
        # budgets tracked as kernel-local integers and written back at
        # the end; contended policies keep their method calls.
        l1_simple = state.l1_simple
        lvc_simple = state.lvc_simple
        have_lvc = state.have_lvc
        l1_ports = state.l1_ports
        lvc_ports = state.lvc_ports
        l1_new_cycle = l1_ports.new_cycle
        lvc_new_cycle = lvc_ports.new_cycle if have_lvc else None
        l1_nports = l1_ports.ports
        l1_avail = l1_ports._available if l1_simple else 0
        l1_sat = 0
        lvc_nports = lvc_ports.ports if have_lvc else 0
        lvc_avail = lvc_ports._available if lvc_simple else 0
        lvc_sat = 0

        now = self.now
        committed_total = self._committed
        # The cycle skip charges the reference's one-rob-full-stall-per-
        # skipped-cycle here; merged with dispatch's share at the end.
        n_skip_rob_full = 0
        exceeded = False

        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while committed_total < total:
                now += 1
                if now > limit:
                    # Raised after the finally block has written every
                    # stage's state back (the report reads it).
                    exceeded = True
                    break

                # ---- new cycle: refill the port budgets ---------------
                if l1_simple:
                    if l1_avail == 0:
                        l1_sat += 1
                    l1_avail = l1_nports
                else:
                    l1_new_cycle()
                if have_lvc:
                    if lvc_simple:
                        if lvc_avail == 0:
                            lvc_sat += 1
                        lvc_avail = lvc_nports
                    else:
                        lvc_new_cycle()

                # ---- the five stages, each behind its activity guard --
                if rob_count and rob_entries[0].state == 2:
                    (rob_count, committed_total,
                     l1_avail, lvc_avail) = commit_tick(
                        now, rob_count, committed_total,
                        l1_avail, lvc_avail)
                if store_done or overflow or ring[now & MASK]:
                    writeback_tick(now)
                if lsq_unserviced or lvaq_unserviced:
                    (l1_avail, lvc_avail,
                     lsq_unserviced, lvaq_unserviced) = memory_tick(
                        now, l1_avail, lvc_avail,
                        lsq_unserviced, lvaq_unserviced)
                if sleep or ready_fifo or woken:
                    issue_tick(now)
                if index < total:
                    (index, rob_count,
                     lsq_unserviced, lvaq_unserviced) = dispatch_tick(
                        now, index, rob_count,
                        lsq_unserviced, lvaq_unserviced)

                # ---- cycle skip: when nothing can happen until the
                # next scheduled completion, jump there.  Safe only when
                # every stage is provably a no-op for the skipped cycles;
                # see docs/perf.md for the invariant and the stall
                # accounting.
                if (not ready_fifo
                        and not woken
                        and not store_done
                        and (index >= total or rob_count >= rob_size)
                        and lsq_unserviced == 0
                        and lvaq_unserviced == 0
                        and committed_total < total
                        and rob_count
                        and rob_entries[0].state != 2):
                    target = None
                    for k in range(1, RING):
                        if ring[(now + k) & MASK]:
                            target = now + k
                            break
                    if overflow:
                        for t in overflow:
                            if t > now and (target is None
                                            or t < target):
                                target = t
                    # Sleeping entries wake at known cycles too (issue
                    # pops the bucket for each cycle it ticks), so the
                    # skip may jump straight to the earliest of them.
                    if sleep:
                        for t in sleep:
                            if t > now and (target is None
                                            or t < target):
                                target = t
                    cap = limit + 1
                    if target is None or target > cap:
                        target = cap
                    if target > now + 1:
                        if index < total:
                            # The reference charges one rob-full
                            # dispatch stall per skipped cycle.
                            n_skip_rob_full += target - now - 1
                        now = target - 1
        finally:
            if gc_was_enabled:
                gc.enable()
            # Write kernel-owned state back to its objects and run every
            # stage's finish() so the post-run machine looks exactly as
            # if each stage had run through the normal method calls.
            self.now = now
            self._committed = committed_total
            lsq.unserviced_loads = lsq_unserviced
            lvaq.unserviced_loads = lvaq_unserviced
            shares: Dict[str, int] = {}
            for fin in (commit_finish, writeback_finish,
                        memory_finish, dispatch_finish):
                for name, value in fin().items():
                    shares[name] = shares.get(name, 0) + value
            for name, value in issue_finish(now).items():
                shares[name] = shares.get(name, 0) + value
            l1_busy = shares.pop("_l1_busy", 0)
            lvc_busy = shares.pop("_lvc_busy", 0)
            if l1_simple:
                l1_ports._available = l1_avail
                l1_ports.busy_transactions += l1_busy
                l1_ports.cycles_saturated += l1_sat
            if lvc_simple:
                lvc_ports._available = lvc_avail
                lvc_ports.busy_transactions += lvc_busy
                lvc_ports.cycles_saturated += lvc_sat
            # Fast-path cache hits accumulated in stage-local ints; fold
            # them into the shared counter dict (additive,
            # order-independent).
            n_l1_fast = shares.pop("_l1_fast", 0)
            n_lvc_fast = shares.pop("_lvc_fast", 0)
            if n_l1_fast or n_lvc_fast:
                counts = state.counts
                counts_get = counts.get
                if n_l1_fast:
                    k = state.l1_ka
                    counts[k] = counts_get(k, 0) + n_l1_fast
                    k = state.l1_kh
                    counts[k] = counts_get(k, 0) + n_l1_fast
                if n_lvc_fast:
                    k = state.lvc_ka
                    counts[k] = counts_get(k, 0) + n_lvc_fast
                    k = state.lvc_kh
                    counts[k] = counts_get(k, 0) + n_lvc_fast
        return (now, committed_total, index, shares, exceeded,
                n_skip_rob_full)

    def _livelock_report(self, limit: int, total: int, index: int) -> str:
        """Diagnosable cycle-limit message (satellite of ISSUE 2)."""
        rob_entries = self._rob_entries
        head = rob_entries[0] if rob_entries else None
        pending_events = sum(
            len(b) for b in self._ring if b
        ) + sum(len(b) for b in self._overflow.values())
        lsq, lvaq = self.lsq, self.lvaq
        return (
            f"cycle limit exceeded ({limit}) at "
            f"{self._committed}/{total} committed; "
            f"dispatch index {index}; "
            f"rob {len(rob_entries)}/{self._rob_size} head={head!r}; "
            f"lsq {len(lsq.entries)}/{lsq.size} "
            f"(unserviced_loads={lsq.unserviced_loads}, "
            f"oldest_unknown_store_seq={lsq.oldest_unknown_store_seq()}); "
            f"lvaq {len(lvaq.entries)}/{lvaq.size} "
            f"(unserviced_loads={lvaq.unserviced_loads}, "
            f"oldest_unknown_store_seq={lvaq.oldest_unknown_store_seq()}); "
            f"issuable={len(self._ready_fifo) + len(self._issuable)}; "
            f"scheduled_events={pending_events}"
        )

"""Memory stage: disambiguated loads access their cache or forward.

Walks each queue's *eligible* loads: a load whose address is known,
which no older unknown-address store in its queue might alias, and
which wins a port either forwards from the youngest older same-word
store or accesses its cache, with the completion scheduled on the
calendar.  Eligibility is event-driven — issue's address generation
buckets each load by the cycle its address becomes known
(``MemQueue._addr_ready``) and the walk drains the bucket for the
current cycle into an age-ordered eligible list, so loads still waiting
on operands or address generation are never rescanned.  The LVAQ side
adds the paper's fast data forwarding (sp-relative (frame, offset)
matching before address generation) and access combining (following
same-line loads absorbed into one port transaction); with fast
forwarding enabled the LVAQ keeps the full pending-load rescan, since
sp-based loads can be serviced before their address is generated.

Interface: ``bind(state) -> (tick, finish)``.

``tick(now, l1_avail, lvc_avail, lsq_unserviced, lvaq_unserviced)``
    services both queues; the kernel skips the call when neither queue
    has an unserviced load.  Returns the four scalars updated.
``finish()``
    writes the stage-owned queue cursors back to the queue objects and
    returns this stage's counter contributions.
"""

from __future__ import annotations

from repro.core.stages.state import MASK, RING, CoreState
from repro.pipeline.memqueue import INF_SEQ


def bind(state: CoreState):
    """Close over the memory working set; returns ``(tick, finish)``."""
    decoupled = state.decoupled
    fast_fwd = state.fast_fwd
    combining = state.combining
    combine_window = combining > 1
    inf_seq = INF_SEQ
    ring = state.ring
    overflow = state.overflow

    lsq = state.lsq
    lvaq = state.lvaq
    lsq_entries = lsq.entries
    lvaq_entries = lvaq.entries
    lsq_loads_list = lsq._loads
    lvaq_loads_list = lvaq._loads
    lsq_unknown = lsq._unknown_stores
    lvaq_unknown = lvaq._unknown_stores
    lvaq_un_nonsp = lvaq._unknown_nonsp_stores
    lvaq_ns = lvaq._nonsp_stores
    lsq_words_get = lsq._stores_by_word.get
    lvaq_words_get = lvaq._stores_by_word.get
    lvaq_sp_get = lvaq._sp_stores.get
    # Event-driven eligibility: issue's address generation buckets each
    # load by its address-known cycle; the walk drains the bucket for
    # ``now`` into an age-ordered eligible list and visits only those.
    # (With fast forwarding the LVAQ keeps the full rescan instead —
    # sp-based loads can be serviced before address generation.)
    lsq_addr_ready_pop = lsq._addr_ready.pop
    lvaq_addr_ready_pop = lvaq._addr_ready.pop
    lsq_eligible = []
    lvaq_eligible = []
    # Stage-owned incremental cursors (written back by ``finish``).
    lsq_us_head = lsq._us_head
    lvaq_us_head = lvaq._us_head
    lvaq_un_head = lvaq._un_head
    lsq_load_head = lsq._load_head
    lvaq_load_head = lvaq._load_head

    hierarchy = state.hierarchy
    ready_l1 = hierarchy.ready_l1
    ready_lvc = hierarchy.ready_lvc
    l1_simple = state.l1_simple
    lvc_simple = state.lvc_simple
    have_lvc = state.have_lvc
    l1_ports = state.l1_ports
    lvc_ports = state.lvc_ports
    l1_try_take = l1_ports.try_take
    lvc_try_take = lvc_ports.try_take if have_lvc else None
    l1_sets = state.l1_sets
    l1_shift = state.l1_shift
    l1_smask = state.l1_smask
    l1_pending = state.l1_pending
    l1_hitlat = state.l1_hitlat
    lvc_sets = state.lvc_sets
    lvc_shift = state.lvc_shift
    lvc_smask = state.lvc_smask
    lvc_pending = state.lvc_pending
    lvc_hitlat = state.lvc_hitlat

    n_stall_lsq_port = 0
    n_stall_lvaq_port = 0
    n_lsq_forwards = 0
    n_lvaq_forwards = 0
    n_lvaq_fast_forwards = 0
    n_lvaq_load_combined = 0
    n_l1_fast = 0
    n_lvc_fast = 0
    l1_busy = 0
    lvc_busy = 0

    # The trailing defaults re-bind the run-constant working set as
    # frame locals: default values are copied into the frame in C at
    # call time, so every use inside the hot loops is a plain local
    # (LOAD_FAST) access instead of a closure (LOAD_DEREF) one.  The
    # kernel never passes them.
    def tick(now, l1_avail, lvc_avail, lsq_unserviced, lvaq_unserviced,
             decoupled=decoupled, fast_fwd=fast_fwd,
             combining=combining, combine_window=combine_window,
             inf_seq=inf_seq, ring=ring, overflow=overflow,
             lsq=lsq, lvaq=lvaq, lvaq_entries=lvaq_entries,
             lsq_loads_list=lsq_loads_list,
             lvaq_loads_list=lvaq_loads_list,
             lsq_unknown=lsq_unknown, lvaq_unknown=lvaq_unknown,
             lvaq_un_nonsp=lvaq_un_nonsp, lvaq_ns=lvaq_ns,
             lsq_words_get=lsq_words_get,
             lvaq_words_get=lvaq_words_get, lvaq_sp_get=lvaq_sp_get,
             lsq_addr_ready_pop=lsq_addr_ready_pop,
             lvaq_addr_ready_pop=lvaq_addr_ready_pop,
             lsq_eligible=lsq_eligible, lvaq_eligible=lvaq_eligible,
             ready_l1=ready_l1, ready_lvc=ready_lvc,
             l1_simple=l1_simple, lvc_simple=lvc_simple,
             have_lvc=have_lvc, l1_ports=l1_ports, lvc_ports=lvc_ports,
             l1_try_take=l1_try_take, lvc_try_take=lvc_try_take,
             l1_sets=l1_sets, l1_shift=l1_shift, l1_smask=l1_smask,
             l1_pending=l1_pending, l1_hitlat=l1_hitlat,
             lvc_sets=lvc_sets, lvc_shift=lvc_shift,
             lvc_smask=lvc_smask, lvc_pending=lvc_pending,
             lvc_hitlat=lvc_hitlat):
        nonlocal n_stall_lsq_port, n_stall_lvaq_port
        nonlocal n_lsq_forwards, n_lvaq_forwards, n_lvaq_fast_forwards
        nonlocal n_lvaq_load_combined, n_l1_fast, n_lvc_fast
        nonlocal l1_busy, lvc_busy
        nonlocal lsq_us_head, lvaq_us_head, lvaq_un_head
        nonlocal lsq_load_head, lvaq_load_head

        # ---- LVAQ (fast forwarding + combining) -------------------
        if decoupled and lvaq_unserviced:
            # Inline oldest_unknown_store_seq: advance the incremental
            # cursor past known-address stores, compacting the consumed
            # prefix past the threshold.
            ulst = lvaq_unknown
            uh = lvaq_us_head
            un = len(ulst)
            while uh < un and ulst[uh].addr_known_time >= 0:
                uh += 1
            if uh >= 64:
                del ulst[:uh]
                un -= uh
                uh = 0
            lvaq_us_head = uh
            unknown_seq = ulst[uh].rob.seq if uh < un else inf_seq
            if lvc_simple:
                ports_exhausted = not have_lvc or lvc_avail == 0
            else:
                ports_exhausted = lvc_ports.available == 0
            next_slot = (now + 1) & MASK
            entries = lvaq_entries
            qbase = lvaq.base
            qlen = len(entries)
            serviced = 0
            if fast_fwd:
                # sp-based loads may be serviced before address
                # generation, so this path keeps the full rescan of
                # pending loads (the loop below).
                ulst = lvaq_un_nonsp
                uh = lvaq_un_head
                un = len(ulst)
                while uh < un and ulst[uh].addr_known_time >= 0:
                    uh += 1
                if uh >= 64:
                    del ulst[:uh]
                    un -= uh
                    uh = 0
                lvaq_un_head = uh
                nonsp_unknown_seq = (ulst[uh].rob.seq if uh < un
                                     else inf_seq)
                # Inline pending_loads: skip the serviced prefix.
                loads = lvaq_loads_list
                li = lvaq_load_head
                n_loads = len(loads)
                while li < n_loads and loads[li].serviced:
                    li += 1
                if li >= 64:
                    del loads[:li]
                    n_loads -= li
                    li = 0
                lvaq_load_head = li
            else:
                # Event-driven walk: visit only loads whose address is
                # known (issue buckets them by address-known cycle);
                # the rescan loop below degenerates to a no-op.
                li = 0
                n_loads = 0
                elig = lvaq_eligible
                arrivals = lvaq_addr_ready_pop(now, None)
                if arrivals is not None:
                    if not elig or arrivals[0].pos > elig[-1].pos:
                        elig.extend(arrivals)
                    else:
                        # Rare: an older load resolved its address
                        # after a younger one did — merge by position.
                        merged = []
                        i3 = 0
                        j3 = 0
                        n3 = len(elig)
                        m3 = len(arrivals)
                        while i3 < n3 and j3 < m3:
                            if elig[i3].pos <= arrivals[j3].pos:
                                merged.append(elig[i3])
                                i3 += 1
                            else:
                                merged.append(arrivals[j3])
                                j3 += 1
                        if i3 < n3:
                            merged.extend(elig[i3:])
                        if j3 < m3:
                            merged.extend(arrivals[j3:])
                        elig[:] = merged
                i3 = 0
                wi = 0
                n_el = len(elig)
                while i3 < n_el:
                    qe = elig[i3]
                    i3 += 1
                    if qe.serviced:
                        continue  # absorbed by combining: drop
                    entry = qe.rob
                    if entry.state == 2:
                        continue
                    if entry.seq > unknown_seq:
                        elig[wi] = qe
                        wi += 1
                        continue  # earlier unknown-address store
                    if qe.penalty and now < qe.addr_known_time + qe.penalty:
                        elig[wi] = qe
                        wi += 1
                        continue  # misprediction recovery
                    if ports_exhausted or (lvc_simple and lvc_avail == 0):
                        n_stall_lvaq_port += 1
                        ports_exhausted = True
                        elig[wi] = qe
                        wi += 1
                        continue
                    bucket = lvaq_words_get(qe.word)
                    fwd = False
                    if bucket:
                        lpos = qe.pos
                        for sentry in bucket:
                            if sentry.pos < lpos:
                                fwd = True
                                break
                    if fwd:
                        # Forwarding occupies a cache port (see the
                        # fast-forwarding path's note below).
                        if lvc_simple:
                            lvc_avail -= 1
                            lvc_busy += 1
                        elif not lvc_try_take(
                                1, line=qe.line, is_store=False):
                            n_stall_lvaq_port += 1
                            ports_exhausted = True
                            elig[wi] = qe
                            wi += 1
                            continue
                        qe.serviced = True
                        serviced += 1
                        bucket = ring[next_slot]
                        if bucket is None:
                            ring[next_slot] = [entry]
                        else:
                            bucket.append(entry)
                        n_lvaq_forwards += 1
                        continue
                    if lvc_simple:
                        lvc_avail -= 1
                        lvc_busy += 1
                    elif not lvc_try_take(
                            1, line=qe.line, is_store=False):
                        n_stall_lvaq_port += 1
                        ports_exhausted = True
                        elig[wi] = qe
                        wi += 1
                        continue
                    addr = qe.word << 2
                    line_no = addr >> lvc_shift
                    if lvc_pending:
                        t = lvc_pending.get(line_no)
                        pend = t is not None and t > now
                    else:
                        pend = False
                    if pend:
                        ready = ready_lvc(addr, False, now)
                    else:
                        ways = lvc_sets[line_no & lvc_smask]
                        if line_no in ways:
                            n_lvc_fast += 1
                            if ways[0] != line_no:
                                ways.remove(line_no)
                                ways.insert(0, line_no)
                            ready = now + lvc_hitlat
                        else:
                            ready = ready_lvc(addr, False, now)
                    qe.serviced = True
                    serviced += 1
                    d = ready - now
                    if 1 <= d < RING:
                        slot2 = ready & MASK
                        bucket = ring[slot2]
                        if bucket is None:
                            bucket = ring[slot2] = []
                        bucket.append(entry)
                    else:
                        bucket = overflow.get(ready)
                        if bucket is None:
                            bucket = overflow[ready] = []
                        bucket.append(entry)
                    # Access combining: absorb following same-line
                    # refs into this port transaction.
                    if combine_window:
                        j = qe.pos - qbase + 1
                        jn = j + combining - 1
                        if jn > qlen:
                            jn = qlen
                        line = qe.line
                        while j < jn:
                            cand = entries[j]
                            j += 1
                            cakt = cand.addr_known_time
                            if (cand.is_store or cand.serviced
                                    or cakt < 0 or cakt > now
                                    or cand.line != line
                                    or cand.rob.seq > unknown_seq
                                    or cand.penalty
                                    or cand.rob.state == 2):
                                continue
                            cbucket = lvaq_words_get(cand.word)
                            if cbucket:
                                cpos = cand.pos
                                fwd = False
                                for sentry in cbucket:
                                    if sentry.pos < cpos:
                                        fwd = True
                                        break
                                if fwd:
                                    continue
                            cand.serviced = True
                            serviced += 1
                            bucket.append(cand.rob)
                            n_lvaq_load_combined += 1
                if wi < n_el:
                    del elig[wi:]
            lvaq_ns_head = lvaq._ns_head
            while li < n_loads:
                qe = loads[li]
                li += 1
                if qe.serviced:
                    continue
                entry = qe.rob
                state_ = entry.state
                if state_ == 2:
                    continue

                # --- fast data forwarding (sp-relative pairs) ------
                blocking_seq = unknown_seq
                if fast_fwd and qe.sp_based:
                    # Inline fast_forward_source_fast: the scan's
                    # outcome is decided by whichever is younger — the
                    # youngest same-key sp store or the youngest
                    # *blocking* non-sp store (unknown address, or
                    # known and aliasing).
                    fkey = qe.frame_key
                    source = None
                    if fkey is None:
                        conclusive = False
                    else:
                        lpos = qe.pos
                        source_pos = -1
                        bucket = lvaq_sp_get(fkey)
                        if bucket:
                            for i2 in range(len(bucket) - 1, -1, -1):
                                sentry = bucket[i2]
                                if sentry.pos < lpos:
                                    source = sentry
                                    source_pos = sentry.pos
                                    break
                        conclusive = True
                        ns = lvaq_ns
                        lword = qe.word
                        for i2 in range(len(ns) - 1,
                                        lvaq_ns_head - 1, -1):
                            sentry = ns[i2]
                            p = sentry.pos
                            if p >= lpos:
                                continue
                            if p < source_pos:
                                break
                            if (sentry.addr_known_time < 0
                                    or sentry.word == lword):
                                source = None
                                conclusive = False
                                break
                    if source is not None and state_ == 0:
                        src_rob = source.rob
                        if (src_rob.pending == 0
                                and src_rob.earliest <= now):
                            # The match resolves before address
                            # generation, but the transfer still
                            # occupies an LVC port (the queue datapath
                            # is the cache's): the gain is latency and
                            # disambiguation, not bandwidth.
                            if ports_exhausted or (lvc_simple
                                                   and lvc_avail == 0):
                                n_stall_lvaq_port += 1
                                ports_exhausted = True
                                continue
                            if lvc_simple:
                                lvc_avail -= 1
                                lvc_busy += 1
                            elif not lvc_try_take(
                                    1,
                                    line=src_rob.inst.addr >> 5,
                                    is_store=False):
                                n_stall_lvaq_port += 1
                                ports_exhausted = True
                                continue
                            qe.serviced = True
                            serviced += 1
                            entry.state = 1
                            bucket = ring[next_slot]
                            if bucket is None:
                                ring[next_slot] = [entry]
                            else:
                                bucket.append(entry)
                            n_lvaq_fast_forwards += 1
                            continue
                        # Matching store's data not produced yet.
                        continue
                    if conclusive:
                        # Offsets proved independence from every
                        # earlier sp-relative store: only non-sp stores
                        # can block.
                        blocking_seq = nonsp_unknown_seq

                # --- conventional path -----------------------------
                akt = qe.addr_known_time
                if akt < 0 or akt > now:
                    continue
                if entry.seq > blocking_seq:
                    continue  # earlier unknown-address store
                if qe.penalty and now < akt + qe.penalty:
                    continue  # misprediction recovery
                # A disambiguated load that cannot get a port stalls
                # identically whether it would forward or access (both
                # paths charge the same counter), so the forward probe
                # can be skipped outright.
                if ports_exhausted or (lvc_simple and lvc_avail == 0):
                    n_stall_lvaq_port += 1
                    ports_exhausted = True
                    continue
                # Inline forward_source_fast, existence only: any
                # indexed same-word store older than the load.
                bucket = lvaq_words_get(qe.word)
                fwd = False
                if bucket:
                    lpos = qe.pos
                    for sentry in bucket:
                        if sentry.pos < lpos:
                            fwd = True
                            break
                if fwd:
                    # Store-to-load forwarding still occupies a cache
                    # port: sim-outorder acquires the port before
                    # probing the store queue, and the paper's
                    # simulator derives from it.  (The fast forwarding
                    # path above is the exception — it resolves before
                    # address generation, off the cache pipeline
                    # entirely.)
                    if lvc_simple:
                        lvc_avail -= 1
                        lvc_busy += 1
                    elif not lvc_try_take(
                            1, line=qe.line, is_store=False):
                        n_stall_lvaq_port += 1
                        ports_exhausted = True
                        continue
                    qe.serviced = True
                    serviced += 1
                    bucket = ring[next_slot]
                    if bucket is None:
                        ring[next_slot] = [entry]
                    else:
                        bucket.append(entry)
                    n_lvaq_forwards += 1
                    continue
                if lvc_simple:
                    lvc_avail -= 1
                    lvc_busy += 1
                elif not lvc_try_take(1, line=qe.line, is_store=False):
                    n_stall_lvaq_port += 1
                    ports_exhausted = True
                    continue
                addr = qe.word << 2
                line_no = addr >> lvc_shift
                if lvc_pending:
                    t = lvc_pending.get(line_no)
                    pend = t is not None and t > now
                else:
                    pend = False
                if pend:
                    ready = ready_lvc(addr, False, now)
                else:
                    ways = lvc_sets[line_no & lvc_smask]
                    if line_no in ways:
                        n_lvc_fast += 1
                        if ways[0] != line_no:
                            ways.remove(line_no)
                            ways.insert(0, line_no)
                        ready = now + lvc_hitlat
                    else:
                        ready = ready_lvc(addr, False, now)
                qe.serviced = True
                serviced += 1
                d = ready - now
                in_ring = 1 <= d < RING
                if in_ring:
                    slot2 = ready & MASK
                    bucket = ring[slot2]
                    if bucket is None:
                        bucket = ring[slot2] = []
                    bucket.append(entry)
                else:
                    bucket = overflow.get(ready)
                    if bucket is None:
                        bucket = overflow[ready] = []
                    bucket.append(entry)
                # --- access combining: absorb following same-line
                # refs into this port transaction ------------------
                if combine_window:
                    j = qe.pos - qbase + 1
                    jn = j + combining - 1
                    if jn > qlen:
                        jn = qlen
                    line = qe.line
                    while j < jn:
                        cand = entries[j]
                        j += 1
                        cakt = cand.addr_known_time
                        if (cand.is_store or cand.serviced
                                or cakt < 0 or cakt > now
                                or cand.line != line
                                or cand.rob.seq > unknown_seq
                                or cand.penalty
                                or cand.rob.state == 2):
                            continue
                        cbucket = lvaq_words_get(cand.word)
                        if cbucket:
                            cpos = cand.pos
                            fwd = False
                            for sentry in cbucket:
                                if sentry.pos < cpos:
                                    fwd = True
                                    break
                            if fwd:
                                continue
                        cand.serviced = True
                        serviced += 1
                        bucket.append(cand.rob)
                        n_lvaq_load_combined += 1
            if serviced:
                lvaq_unserviced -= serviced

        # ---- LSQ --------------------------------------------------
        if lsq_unserviced:
            # Inline oldest_unknown_store_seq (see LVAQ note).
            ulst = lsq_unknown
            uh = lsq_us_head
            un = len(ulst)
            while uh < un and ulst[uh].addr_known_time >= 0:
                uh += 1
            if uh >= 64:
                del ulst[:uh]
                un -= uh
                uh = 0
            lsq_us_head = uh
            unknown_seq = ulst[uh].rob.seq if uh < un else inf_seq
            if l1_simple:
                ports_exhausted = l1_avail == 0
            else:
                ports_exhausted = l1_ports.available == 0
            next_slot = (now + 1) & MASK
            # Event-driven walk (see the LVAQ note): visit only loads
            # whose address-known cycle has arrived.
            elig = lsq_eligible
            arrivals = lsq_addr_ready_pop(now, None)
            if arrivals is not None:
                if not elig or arrivals[0].pos > elig[-1].pos:
                    elig.extend(arrivals)
                else:
                    # Rare: an older load resolved its address after a
                    # younger one did — merge by queue position.
                    merged = []
                    i3 = 0
                    j3 = 0
                    n3 = len(elig)
                    m3 = len(arrivals)
                    while i3 < n3 and j3 < m3:
                        if elig[i3].pos <= arrivals[j3].pos:
                            merged.append(elig[i3])
                            i3 += 1
                        else:
                            merged.append(arrivals[j3])
                            j3 += 1
                    if i3 < n3:
                        merged.extend(elig[i3:])
                    if j3 < m3:
                        merged.extend(arrivals[j3:])
                    elig[:] = merged
            serviced = 0
            i3 = 0
            wi = 0
            n_el = len(elig)
            while i3 < n_el:
                qe = elig[i3]
                i3 += 1
                if qe.serviced:
                    continue
                entry = qe.rob
                if entry.state == 2:
                    continue
                if entry.seq > unknown_seq:
                    elig[wi] = qe
                    wi += 1
                    continue  # earlier unknown-address store
                if qe.penalty and now < qe.addr_known_time + qe.penalty:
                    elig[wi] = qe
                    wi += 1
                    continue  # misprediction recovery
                # Port-exhaustion hoist (see LVAQ note): a stalled load
                # charges the same counter on the forward and access
                # paths, so skip the forward probe.
                if ports_exhausted or (l1_simple and l1_avail == 0):
                    n_stall_lsq_port += 1
                    ports_exhausted = True
                    elig[wi] = qe
                    wi += 1
                    continue
                bucket = lsq_words_get(qe.word)
                fwd = False
                if bucket:
                    lpos = qe.pos
                    for sentry in bucket:
                        if sentry.pos < lpos:
                            fwd = True
                            break
                if fwd:
                    # Forwarding occupies a port (see LVAQ note).
                    if l1_simple:
                        l1_avail -= 1
                        l1_busy += 1
                    elif not l1_try_take(
                            1, line=qe.line, is_store=False):
                        n_stall_lsq_port += 1
                        ports_exhausted = True
                        elig[wi] = qe
                        wi += 1
                        continue
                    qe.serviced = True
                    serviced += 1
                    bucket = ring[next_slot]
                    if bucket is None:
                        ring[next_slot] = [entry]
                    else:
                        bucket.append(entry)
                    n_lsq_forwards += 1
                    continue
                if l1_simple:
                    l1_avail -= 1
                    l1_busy += 1
                elif not l1_try_take(
                        1, line=qe.line, is_store=False):
                    n_stall_lsq_port += 1
                    ports_exhausted = True
                    elig[wi] = qe
                    wi += 1
                    continue
                addr = qe.word << 2
                line_no = addr >> l1_shift
                if l1_pending:
                    t = l1_pending.get(line_no)
                    pend = t is not None and t > now
                else:
                    pend = False
                if pend:
                    ready = ready_l1(addr, False, now)
                else:
                    ways = l1_sets[line_no & l1_smask]
                    if line_no in ways:
                        n_l1_fast += 1
                        if ways[0] != line_no:
                            ways.remove(line_no)
                            ways.insert(0, line_no)
                        ready = now + l1_hitlat
                    else:
                        ready = ready_l1(addr, False, now)
                qe.serviced = True
                serviced += 1
                d = ready - now
                if 1 <= d < RING:
                    slot2 = ready & MASK
                    bucket = ring[slot2]
                    if bucket is None:
                        ring[slot2] = [entry]
                    else:
                        bucket.append(entry)
                else:
                    bucket = overflow.get(ready)
                    if bucket is None:
                        overflow[ready] = [entry]
                    else:
                        bucket.append(entry)
            if wi < n_el:
                del elig[wi:]
            if serviced:
                lsq_unserviced -= serviced

        return l1_avail, lvc_avail, lsq_unserviced, lvaq_unserviced

    def finish():
        lsq._us_head = lsq_us_head
        lvaq._us_head = lvaq_us_head
        lvaq._un_head = lvaq_un_head
        lsq._load_head = lsq_load_head
        lvaq._load_head = lvaq_load_head
        return {
            "stall.lsq_port": n_stall_lsq_port,
            "stall.lvaq_port": n_stall_lvaq_port,
            "lsq.forwards": n_lsq_forwards,
            "lvaq.forwards": n_lvaq_forwards,
            "lvaq.fast_forwards": n_lvaq_fast_forwards,
            "lvaq.load_combined": n_lvaq_load_combined,
            "_l1_fast": n_l1_fast,
            "_lvc_fast": n_lvc_fast,
            "_l1_busy": l1_busy,
            "_lvc_busy": lvc_busy,
        }

    return tick, finish

"""Dispatch stage: decode the committed stream into the window.

Dispatches up to ``issue_width`` instructions per cycle from the dynamic
stream into the ROB, steering each memory reference to the LSQ or LVAQ
(local-hint shortcut, then the stream partitioner), running the
source-operand scoreboard check, and resolving store addresses early
when the base register is already available (STA/STD split).

The frontend policy gates this stage.  The ``perfect`` policy imposes
nothing — the inner tick runs with the fence at end-of-stream, exactly
the seed machine.  The ``gshare`` policy pre-computes, from the
committed stream, the cycle-independent fetch events (predictor
mispredicts and I-cache misses; see ``repro.core.frontend``) as a sparse
ascending list of ``(index, gate_code)`` pairs, and the tick charges the
bubbles: an I-cache miss stalls dispatch *before* the missing
instruction for ``icache_miss_latency`` cycles; a mispredicted branch
redirects the fetch stream *after* dispatching the branch, stalling for
``1 + redirect_penalty`` cycles.  Each stalled cycle the tick charges
one fetch/redirect bubble and leaves the machine state untouched.

Interface: ``bind(state) -> (tick, finish)``.

``tick(now, index, rob_count, lsq_unserviced, lvaq_unserviced)``
    dispatches one cycle's group; the kernel skips the call once the
    stream is exhausted (``index >= total``).  Returns the four scalars
    updated.
``finish()``
    writes the sequence allocator back to the processor and returns this
    stage's counter contributions.
"""

from __future__ import annotations

from repro.core.frontend import GATE_IMISS, GATE_REDIRECT
from repro.core.stages.state import CoreState
from repro.isa.opcodes import FuClass
from repro.pipeline.memqueue import MemQueueEntry
from repro.pipeline.rob import RobEntry

_LOAD = int(FuClass.LOAD)
_STORE = int(FuClass.STORE)


def bind(state: CoreState):
    """Close over the dispatch working set; returns ``(tick, finish)``."""
    processor = state.processor
    insts = state.insts
    total = state.total
    width = state.width
    rob_size = state.rob_size
    decoupled = state.decoupled
    mispredict_penalty = state.mispredict_penalty
    load_fu = _LOAD
    store_fu = _STORE
    new_rob_entry = RobEntry
    new_mem_entry = MemQueueEntry
    mem_entry_new = MemQueueEntry.__new__
    steer = state.steer
    producer = state.producer
    free_entries = state.free_entries
    rob_append = state.rob_entries.append
    fifo_append = state.ready_fifo.append

    lsq = state.lsq
    lvaq = state.lvaq
    lsq_entries = lsq.entries
    lvaq_entries = lvaq.entries
    lsq_size = lsq.size
    lvaq_size = lvaq.size
    lsq_loads_list = lsq._loads
    lvaq_loads_list = lvaq._loads
    lsq_unknown = lsq._unknown_stores
    lvaq_unknown = lvaq._unknown_stores
    lsq_un_nonsp = lsq._unknown_nonsp_stores
    lvaq_un_nonsp = lvaq._unknown_nonsp_stores
    lsq_ns = lsq._nonsp_stores
    lvaq_ns = lvaq._nonsp_stores
    lsq_words = lsq._stores_by_word
    lvaq_words = lvaq._stores_by_word
    lsq_sp_set = lsq._sp_stores.setdefault
    lvaq_sp_set = lvaq._sp_stores.setdefault

    seq = processor._seq

    n_stall_rob_full = 0
    n_stall_lsq_full = 0
    n_stall_lvaq_full = 0
    n_lsq_loads = 0
    n_lsq_stores = 0
    n_lvaq_loads = 0
    n_lvaq_stores = 0
    n_classify_mispredictions = 0

    # Frontend gating state.  The ``perfect`` policy prepares no gate
    # list (``gates is None``) and dispatch runs with the fence at
    # end-of-stream — exactly the seed machine, for one predictable
    # branch per tick.  See the module docstring for the gshare model.
    frontend = processor.frontend
    gates = frontend.prepare(insts)
    fcfg = state.frontend_config
    icache_miss_latency = fcfg.icache_miss_latency
    redirect_penalty = fcfg.redirect_penalty
    n_gates = len(gates) if gates is not None else 0
    fe_ptr = 0
    fe_stall_until = 0
    fe_redirect = False
    n_fetch_bubbles = 0
    n_redirect_bubbles = 0

    # The trailing defaults re-bind the run-constant working set as
    # frame locals: default values are copied into the frame in C at
    # call time, so every use inside the hot loop is a plain local
    # (LOAD_FAST) access instead of a closure (LOAD_DEREF) one.  The
    # kernel never passes them.
    def tick(now, index, rob_count, lsq_unserviced, lvaq_unserviced,
             total=total, insts=insts, width=width, rob_size=rob_size,
             decoupled=decoupled, mispredict_penalty=mispredict_penalty,
             load_fu=load_fu, store_fu=store_fu,
             new_rob_entry=new_rob_entry, new_mem_entry=new_mem_entry,
             mem_entry_new=mem_entry_new, steer=steer, producer=producer,
             free_entries=free_entries, rob_append=rob_append,
             fifo_append=fifo_append, lsq=lsq, lvaq=lvaq,
             lsq_entries=lsq_entries, lvaq_entries=lvaq_entries,
             lsq_size=lsq_size, lvaq_size=lvaq_size,
             lsq_loads_list=lsq_loads_list,
             lvaq_loads_list=lvaq_loads_list,
             lsq_unknown=lsq_unknown, lvaq_unknown=lvaq_unknown,
             lsq_un_nonsp=lsq_un_nonsp, lvaq_un_nonsp=lvaq_un_nonsp,
             lsq_ns=lsq_ns, lvaq_ns=lvaq_ns,
             lsq_words=lsq_words, lvaq_words=lvaq_words,
             lsq_sp_set=lsq_sp_set, lvaq_sp_set=lvaq_sp_set,
             gates=gates, n_gates=n_gates,
             icache_miss_latency=icache_miss_latency,
             redirect_penalty=redirect_penalty):
        nonlocal seq, n_stall_rob_full, n_stall_lsq_full
        nonlocal n_stall_lvaq_full, n_lsq_loads, n_lsq_stores
        nonlocal n_lvaq_loads, n_lvaq_stores, n_classify_mispredictions
        nonlocal fe_ptr, fe_stall_until, fe_redirect
        nonlocal n_fetch_bubbles, n_redirect_bubbles
        # ---- frontend gating ----------------------------------------
        fence = total
        fe_blocked = False
        if gates is not None:
            if now < fe_stall_until:
                # Fetch is quiet: charge one bubble cycle, touch
                # nothing.
                if fe_redirect:
                    n_redirect_bubbles += 1
                else:
                    n_fetch_bubbles += 1
                fe_blocked = True
            elif fe_ptr < n_gates:
                g, code = gates[fe_ptr]
                if code & GATE_IMISS and index == g:
                    # The next instruction missed in the I-cache: the
                    # fetch group behind it stalls until the line
                    # arrives.
                    n_fetch_bubbles += 1
                    fe_stall_until = now + icache_miss_latency
                    fe_redirect = False
                    if code == GATE_IMISS:
                        fe_ptr += 1
                    else:
                        # Keep the redirect half of the gate for the
                        # post-dispatch check.
                        gates[fe_ptr] = (g, GATE_REDIRECT)
                    fe_blocked = True
                else:
                    # Dispatch must stop before an unserved I-cache
                    # miss, and just after a mispredicted branch.
                    fence = g if code & GATE_IMISS else g + 1
        if not fe_blocked:
            # ---- dispatch -----------------------------------------------
            # Queue compaction bases are canonical on the queue objects
            # (commit is their sole writer, earlier in the cycle).
            lsq_base = lsq.base
            lvaq_base = lvaq.base
            earliest = now + 1
            slots = width
            while slots:
                slots -= 1
                if rob_count >= rob_size:
                    n_stall_rob_full += 1
                    break
                inst = insts[index]
                fu = inst.fu
                is_mem = fu == load_fu or fu == store_fu
                to_lvaq = False
                mispredicted = False
                if is_mem:
                    if decoupled:
                        hint = inst.local_hint
                        if hint is not None:
                            to_lvaq = hint
                        else:
                            to_lvaq, mispredicted = steer(inst)
                    if to_lvaq:
                        if len(lvaq_entries) >= lvaq_size:
                            n_stall_lvaq_full += 1
                            break
                    elif len(lsq_entries) >= lsq_size:
                        n_stall_lsq_full += 1
                        break
                if free_entries:
                    entry = free_entries.pop()
                    entry.seq = seq
                    entry.inst = inst
                    entry.state = 0
                    entry.mem = None
                else:
                    entry = new_rob_entry(seq, inst)
                seq += 1
                # Source-operand scoreboard check, unrolled for the
                # 0/1/2-operand cases (every ISA instruction; the loop tail
                # keeps arbitrary tuples exact).  reg <= 0 is $zero /
                # absent: always ready.
                pending = 0
                srcs = inst.srcs
                n_srcs = len(srcs)
                if n_srcs:
                    reg = srcs[0]
                    if reg > 0:
                        prod = producer[reg]
                        if prod is not None and prod.state != 2:
                            prod.consumers.append(entry)
                            pending = 1
                    if n_srcs > 1:
                        reg = srcs[1]
                        if reg > 0:
                            prod = producer[reg]
                            if (prod is not None
                                    and prod.state != 2):
                                prod.consumers.append(entry)
                                pending += 1
                        if n_srcs > 2:
                            for reg in srcs[2:]:
                                if reg <= 0:
                                    continue
                                prod = producer[reg]
                                if (prod is not None
                                        and prod.state != 2):
                                    prod.consumers.append(entry)
                                    pending += 1
                entry.pending = pending
                entry.earliest = earliest
                dst = inst.dst
                if dst > 0:
                    producer[dst] = entry
                rob_append(entry)  # size checked above
                rob_count += 1
                if is_mem:
                    sp_based = inst.sp_based
                    is_store = fu == store_fu
                    # MemQueueEntry.__init__ spelled out (the constructor
                    # frame is measurable at this call rate).
                    qe = mem_entry_new(new_mem_entry)
                    qe.rob = entry
                    qe.is_store = is_store
                    qe.word = -1
                    qe.line = -1
                    qe.addr_known_time = -1
                    qe.dispatch_time = now
                    qe.serviced = False
                    qe.sp_based = sp_based
                    qe.frame_key = ((inst.frame_id, inst.offset)
                                    if sp_based else None)
                    qe.use_lvc = to_lvaq
                    qe.penalty = (mispredict_penalty
                                  if mispredicted else 0)
                    entry.mem = qe
                    # Inline MemQueue.append (fullness was already checked
                    # by the stall tests above).
                    if to_lvaq:
                        qe.pos = lvaq_base + len(lvaq_entries)
                        lvaq_entries.append(qe)
                        if is_store:
                            lvaq_unknown.append(qe)
                            if sp_based:
                                lvaq_sp_set(qe.frame_key,
                                            []).append(qe)
                            else:
                                lvaq_un_nonsp.append(qe)
                                lvaq_ns.append(qe)
                        else:
                            lvaq_loads_list.append(qe)
                            lvaq_unserviced += 1
                    else:
                        qe.pos = lsq_base + len(lsq_entries)
                        lsq_entries.append(qe)
                        if is_store:
                            lsq_unknown.append(qe)
                            if sp_based:
                                lsq_sp_set(qe.frame_key,
                                           []).append(qe)
                            else:
                                lsq_un_nonsp.append(qe)
                                lsq_ns.append(qe)
                        else:
                            lsq_loads_list.append(qe)
                            lsq_unserviced += 1
                    if is_store:
                        # STA/STD split (as in sim-outorder and the R10000
                        # address queue): the store's address computes as
                        # soon as its base register is available — it never
                        # waits for the store *data*, so it stops blocking
                        # younger loads' disambiguation almost immediately.
                        srcs = inst.srcs
                        base_reg = srcs[0] if srcs else 0
                        prod = (producer[base_reg]
                                if base_reg > 0 else None)
                        if prod is None or prod.state == 2:
                            qe.addr_known_time = earliest
                            word = qe.word = inst.addr >> 2
                            qe.line = inst.addr >> 5
                            if to_lvaq:
                                b2 = lvaq_words.get(word)
                                if b2 is None:
                                    lvaq_words[word] = [qe]
                                else:
                                    b2.append(qe)
                            else:
                                b2 = lsq_words.get(word)
                                if b2 is None:
                                    lsq_words[word] = [qe]
                                else:
                                    b2.append(qe)
                        if to_lvaq:
                            n_lvaq_stores += 1
                        else:
                            n_lsq_stores += 1
                    elif to_lvaq:
                        n_lvaq_loads += 1
                    else:
                        n_lsq_loads += 1
                    if mispredicted:
                        n_classify_mispredictions += 1
                if pending == 0:
                    entry.in_issuable = True
                    fifo_append(entry)
                index += 1
                if index >= fence:
                    break
            if gates is not None and fe_ptr < n_gates:
                g, code = gates[fe_ptr]
                if index > g and code & GATE_REDIRECT:
                    # The branch at g dispatched this cycle and was
                    # mispredicted: the machine fetches the wrong
                    # path until the branch resolves and redirects.
                    fe_ptr += 1
                    fe_stall_until = now + 1 + redirect_penalty
                    fe_redirect = True
        return index, rob_count, lsq_unserviced, lvaq_unserviced

    def finish():
        processor._seq = seq
        counters = {
            "stall.rob_full": n_stall_rob_full,
            "stall.lsq_full": n_stall_lsq_full,
            "stall.lvaq_full": n_stall_lvaq_full,
            "lsq.loads": n_lsq_loads,
            "lsq.stores": n_lsq_stores,
            "lvaq.loads": n_lvaq_loads,
            "lvaq.stores": n_lvaq_stores,
            "classify.mispredictions": n_classify_mispredictions,
        }
        if gates is not None:
            counters["frontend.mispredicts"] = frontend.mispredicts
            counters["frontend.icache_misses"] = frontend.icache_misses
            counters["frontend.redirect_bubbles"] = n_redirect_bubbles
            counters["frontend.fetch_bubbles"] = n_fetch_bubbles
        return counters

    return tick, finish

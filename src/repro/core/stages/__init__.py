"""The staged micro-architecture kernel.

One stage component per pipeline stage, each a ``bind(state)`` factory
returning ``(tick, finish)`` closures over the shared
:class:`~repro.core.stages.state.CoreState`.  The kernel loop in
:meth:`repro.core.processor.Processor.run` binds all five per run,
guards each tick with a provably-equivalent activity check, and merges
the finish() counter contributions.  See ``docs/timing_model.md`` for
the component diagram and interface contracts.
"""

from repro.core.stages.state import CoreState, MASK, RING
from repro.core.stages import commit, dispatch, issue, memory, writeback

__all__ = [
    "CoreState",
    "MASK",
    "RING",
    "commit",
    "dispatch",
    "issue",
    "memory",
    "writeback",
]

"""Per-config kernel specialization: constant-fold the bound machine.

The composed kernel (:mod:`repro.core.stages.compose`) is generic over
every :class:`~repro.core.config.MachineConfig`: issue width, ROB and
queue sizes, port policies, the LVAQ on/off switch and the frontend
policy are all read from run-constant locals, and the hot loop branches
on them millions of times per simulation.  All of those values are
pure functions of the config — so for a *bound* machine they are
compile-time constants.

This module folds them in.  It parses the composed source, evaluates
the run-constant prologue bindings against a live ``(processor,
state)`` pair, substitutes the whitelisted config scalars as literals,
and then constant-folds the tree bottom-up — boolean operators with
exact short-circuit semantics, comparisons, arithmetic, conditional
expressions, and ``if`` statements whose test folded to a constant
(dead policy arms are deleted outright: a ``2+0`` machine's kernel
contains no LVAQ walk at all, a ``perfect``-frontend kernel no gate
bookkeeping).  The result is compiled once per machine description and
cached for the life of the process, so `repro.runtime` workers keep
specialized kernels warm across jobs.

Safety rules (violating code falls back to the generic kernel):

- only names in :data:`CONST_NAMES` are folded, and only when the name
  is stored exactly once in the whole kernel and its value is a plain
  ``bool``/``int`` — mutated scalars (``l1_avail``, ``now``, ...) and
  object bindings (``LATENCY_BY_INT``, the queues) are never touched;
- prologue evaluation skips any right-hand side containing a call, so
  effectful bindings (``frontend.prepare``) run exactly once, in the
  kernel itself;
- ``gates`` is folded to ``None`` only from the policy fact that the
  ``perfect`` frontend prepares no gate list;
- boolean folding drops identity operands and truncates at a constant
  short-circuit terminator — exact for truth-value uses, which is the
  only way the stage sources consume the folded names (pinned by the
  cross-kernel equivalence suite).

Cache keying: ``(kernel code salt, canonical describe_machine JSON)``.
The code salt hashes the composed generic source plus this module, so
editing any stage or the folding rules invalidates every entry; the
machine description includes ``CONFIG_SCHEMA_VERSION``, so a schema
bump does too.  ``repro-cc perf --emit-kernel <config>`` dumps the
generated source for inspection.

Bit-identity is enforced the same way as for the generic kernel:
``tests/core/test_kernel_specialize.py`` pins specialized == portable
across the golden workload×config matrix, and the golden harness pins
both to the frozen seed reference.
"""

from __future__ import annotations

import ast
import gc as _gc
import hashlib
import json
from typing import Any, Dict, Optional, Tuple

from repro.core.stages.compose import _STAGES, compose_source


class SpecializeError(RuntimeError):
    """The composed source could not be soundly specialized."""


#: Config-only scalars the folder may substitute.  Everything else —
#: workload-dependent values (``total``), mutated per-cycle scalars,
#: container bindings — stays a name.  A listed name is still skipped
#: unless it is stored exactly once and evaluates to a bool/int.
CONST_NAMES = frozenset({
    # dispatch / template
    "width", "rob_size", "decoupled", "mispredict_penalty",
    "load_fu", "store_fu", "lsq_size", "lvaq_size",
    "icache_miss_latency", "redirect_penalty",
    # memory / commit
    "fast_fwd", "combining", "combine_window", "inf_seq",
    "l1_simple", "lvc_simple", "have_lvc",
    "l1_shift", "l1_smask", "l1_hitlat",
    "lvc_shift", "lvc_smask", "lvc_hitlat",
    "l1_nports", "lvc_nports",
    # issue
    "n_ialu", "n_falu", "lvaq_track",
})

#: Binary/comparison operators safe to fold on int/bool constants.
_BIN_OPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.LShift: lambda a, b: a << b,
    ast.RShift: lambda a, b: a >> b,
    ast.BitAnd: lambda a, b: a & b,
    ast.BitOr: lambda a, b: a | b,
    ast.BitXor: lambda a, b: a ^ b,
}
_CMP_OPS = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
}


def _single_store_names(fn: ast.FunctionDef) -> Dict[str, int]:
    """Count ``Name`` stores (incl. aug-assign and loop targets)."""
    counts: Dict[str, int] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            counts[node.id] = counts.get(node.id, 0) + 1
    return counts


def _prologue_values(fn: ast.FunctionDef, processor, state,
                     genv: Dict[str, Any]) -> Dict[str, Any]:
    """Evaluate the call-free top-level bindings in source order.

    Any right-hand side containing a call is skipped (it may be
    effectful — ``frontend.prepare`` must run exactly once, in the
    kernel); an evaluation error just leaves the name unbound, which
    disables folding for it and anything downstream of it.
    """
    local: Dict[str, Any] = {"self": processor, "state": state}
    for stmt in fn.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)):
            continue
        if any(isinstance(n, ast.Call) for n in ast.walk(stmt.value)):
            continue
        expr = ast.Expression(body=stmt.value)
        ast.fix_missing_locations(expr)
        try:
            value = eval(  # noqa: S307 - our own composed source
                compile(expr, "<specialize-prologue>", "eval"),
                genv, local)
        except Exception:
            continue
        local[stmt.targets[0].id] = value
    return local


class _Folder(ast.NodeTransformer):
    """Substitute ``const_map`` names and fold constants bottom-up."""

    def __init__(self, const_map: Dict[str, Any]):
        self.const_map = const_map

    def _const(self, value, node):
        return ast.copy_location(ast.Constant(value=value), node)

    def visit_Name(self, node: ast.Name):
        if isinstance(node.ctx, ast.Load) and node.id in self.const_map:
            return self._const(self.const_map[node.id], node)
        return node

    def visit_UnaryOp(self, node: ast.UnaryOp):
        self.generic_visit(node)
        v = node.operand
        if isinstance(v, ast.Constant):
            if isinstance(node.op, ast.Not):
                return self._const(not v.value, node)
            if (isinstance(node.op, ast.USub)
                    and isinstance(v.value, (int, float))
                    and not isinstance(v.value, bool)):
                return self._const(-v.value, node)
        return node

    def visit_BinOp(self, node: ast.BinOp):
        self.generic_visit(node)
        op = _BIN_OPS.get(type(node.op))
        if (op is not None
                and isinstance(node.left, ast.Constant)
                and isinstance(node.right, ast.Constant)
                and isinstance(node.left.value, int)
                and isinstance(node.right.value, int)):
            try:
                return self._const(op(node.left.value,
                                      node.right.value), node)
            except Exception:
                pass
        return node

    def visit_Compare(self, node: ast.Compare):
        self.generic_visit(node)
        if len(node.ops) != 1 or not (
                isinstance(node.left, ast.Constant)
                and isinstance(node.comparators[0], ast.Constant)):
            return node
        a = node.left.value
        b = node.comparators[0].value
        op = node.ops[0]
        # Identity comparisons are only folded against the None
        # singleton; identity of equal ints is an implementation detail.
        if isinstance(op, (ast.Is, ast.IsNot)):
            if a is None or b is None:
                same = a is b
                return self._const(
                    same if isinstance(op, ast.Is) else not same, node)
            return node
        fold = _CMP_OPS.get(type(op))
        if fold is not None:
            try:
                return self._const(fold(a, b), node)
            except Exception:
                pass
        return node

    def visit_BoolOp(self, node: ast.BoolOp):
        self.generic_visit(node)
        is_and = isinstance(node.op, ast.And)
        out = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                truthy = bool(value.value)
                if truthy is is_and:
                    # Identity operand (True in `and`, False in `or`):
                    # drop it.  Exact for truth-value consumers.
                    continue
                # Short-circuit terminator: later operands are never
                # evaluated and the result is this constant.
                out.append(value)
                break
            out.append(value)
        if not out:
            return self._const(is_and, node)
        if len(out) == 1:
            return out[0]
        node.values = out
        return node

    def visit_IfExp(self, node: ast.IfExp):
        self.generic_visit(node)
        if isinstance(node.test, ast.Constant):
            return node.body if node.test.value else node.orelse
        return node

    def visit_If(self, node: ast.If):
        self.generic_visit(node)
        if not isinstance(node.test, ast.Constant):
            return node
        chosen = node.body if node.test.value else node.orelse
        if not chosen:
            # Deleting the statement could empty the enclosing block;
            # a Pass is always safe and costs one NOP once.
            return ast.copy_location(ast.Pass(), node)
        return chosen


def _stage_globals() -> Dict[str, Any]:
    """The same exec-globals union the generic fused kernel uses."""
    g: Dict[str, Any] = {}
    for module, _key, _pos in _STAGES:
        g.update(vars(module))
    from repro.core.stages.state import RING
    g["RING"] = RING
    g["gc"] = _gc
    return g


def specialize_source(processor, state) -> str:
    """Build the specialized kernel source for ``processor.config``."""
    source = compose_source()
    tree = ast.parse(source)
    fn = tree.body[0]
    if not isinstance(fn, ast.FunctionDef):  # pragma: no cover
        raise SpecializeError("composed source is not a function")

    genv = _stage_globals()
    values = _prologue_values(fn, processor, state, genv)
    stores = _single_store_names(fn)

    const_map: Dict[str, Any] = {}
    for name in CONST_NAMES:
        if stores.get(name) != 1 or name not in values:
            continue
        value = values[name]
        if isinstance(value, bool) or (isinstance(value, int)
                                       and not isinstance(value, bool)):
            const_map[name] = value
    # Policy fact: the perfect frontend prepares no gate list, so the
    # dispatch gating machinery is dead code.  (Under any other policy
    # `gates` stays a live name.)
    if (processor.config.frontend.policy == "perfect"
            and stores.get("gates") == 1):
        const_map["gates"] = None
    if not const_map:
        raise SpecializeError("no foldable config constants found")

    folded = _Folder(const_map).visit(tree)
    ast.fix_missing_locations(folded)
    header = (f"# specialized kernel: "
              f"{processor.config.notation()} "
              f"[{json.dumps(sorted(const_map))}]\n")
    return header + ast.unparse(folded)


# ---------------------------------------------------------------- cache

#: machine-description key -> (kernel, source) | (None, None) fallback.
_CACHE: Dict[str, Tuple[Optional[Any], Optional[str]]] = {}
#: Compilation counter, exposed for the cache tests.
compile_count = 0

_SALT: Optional[str] = None


def kernel_salt() -> str:
    """Hash of the generic composed source plus the folding rules."""
    global _SALT
    if _SALT is None:
        h = hashlib.sha256()
        h.update(compose_source().encode("utf-8"))
        with open(__file__, "rb") as fh:
            h.update(fh.read())
        _SALT = h.hexdigest()[:16]
    return _SALT


def cache_key(config) -> str:
    """``(code salt, canonical machine description)`` digest."""
    from repro.core.registry import describe_machine
    body = json.dumps(describe_machine(config), sort_keys=True,
                      separators=(",", ":"))
    return kernel_salt() + ":" + hashlib.sha256(
        body.encode("utf-8")).hexdigest()[:24]


def clear_cache() -> None:
    """Drop every cached kernel (tests)."""
    global _SALT
    _CACHE.clear()
    _SALT = None


def kernel_for(processor, state):
    """The specialized kernel for ``processor.config``, or ``None``.

    Compiles at most once per ``(code salt, machine description)`` for
    the life of the process; a config whose source cannot be soundly
    specialized caches a ``None`` fallback so the generic kernel is
    used without retrying the analysis every run.
    """
    global compile_count
    key = cache_key(processor.config)
    hit = _CACHE.get(key)
    if hit is not None:
        return hit[0]
    try:
        src = specialize_source(processor, state)
        code = compile(src, "<repro.core.stages.specialize>", "exec")
        g = _stage_globals()
        exec(code, g)
        kernel = g["_fused_run"]
        compile_count += 1
    except SpecializeError:
        kernel = src = None
    _CACHE[key] = (kernel, src)
    return kernel


def cached_source(config) -> Optional[str]:
    """The generated source for a cached config (inspection/tests)."""
    hit = _CACHE.get(cache_key(config))
    return hit[1] if hit is not None else None


def emit_source(config) -> str:
    """Generate the specialized source for *config* without a run.

    Builds a throwaway processor and empty core state purely to give
    the prologue evaluator live objects; no simulation happens.  Used
    by ``repro-cc perf --emit-kernel`` and the CI smoke step.
    """
    from repro.core.processor import Processor
    from repro.core.stages.state import CoreState
    processor = Processor(config)
    return specialize_source(processor, CoreState(processor, []))

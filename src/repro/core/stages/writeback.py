"""Writeback stage: completions scheduled for this cycle wake dependents.

Drains this cycle's bucket of the 256-slot completion calendar (plus any
overflowed far events and the dedicated issued-store lane), marks the
completing entries COMPLETED, and decrements each consumer's pending
count — waking consumers whose operands just became complete into the
issue stage's heap lane.  The STA split lives here too: a store whose
*base register* just arrived resolves its address immediately, off the
issue path.

Interface: ``bind(state) -> (tick, finish)``.

``tick(now)``
    may be called every cycle; the kernel skips it when the store lane,
    the ring slot and the overflow dict are all empty (provably a no-op).
``finish()``
    returns no counters (the stage keeps none) — present for interface
    symmetry.
"""

from __future__ import annotations

from heapq import heappush

from repro.core.stages.state import MASK, CoreState


def bind(state: CoreState):
    """Close over the writeback working set; returns ``(tick, finish)``."""
    ring = state.ring
    overflow = state.overflow
    store_done = state.store_done
    woken = state.woken
    lsq = state.lsq
    lvaq = state.lvaq
    lsq_words = lsq._stores_by_word
    lvaq_words = lvaq._stores_by_word

    # The trailing defaults re-bind the run-constant working set as
    # frame locals: default values are copied into the frame in C at
    # call time, so every use inside the hot loops is a plain local
    # (LOAD_FAST) access instead of a closure (LOAD_DEREF) one.  The
    # kernel never passes them.
    def tick(now, ring=ring, overflow=overflow, store_done=store_done,
             woken=woken, lsq_words=lsq_words, lvaq_words=lvaq_words):
        if store_done:
            # Stores issued last cycle: address and data captured, ready
            # to commit.  They never produce a register, so no consumer
            # wakeup — a dedicated lane skips the calendar ring entirely.
            for entry in store_done:
                entry.state = 2
            store_done.clear()
        slot = now & MASK
        completing = ring[slot]
        if overflow:
            extra = overflow.pop(now, None)
            if extra is not None:
                if completing is None:
                    ring[slot] = completing = extra
                else:
                    completing.extend(extra)
        if completing:
            for entry in completing:
                entry.state = 2
                consumers = entry.consumers
                if not consumers:
                    continue
                produced = entry.inst.dst
                for consumer in consumers:
                    pending = consumer.pending - 1
                    consumer.pending = pending
                    qe = consumer.mem
                    if (qe is not None and qe.is_store
                            and qe.addr_known_time < 0):
                        srcs = consumer.inst.srcs
                        if srcs and srcs[0] == produced:
                            # STA split: the store's address computes as
                            # soon as its base register arrives, off the
                            # issue path.
                            inst = consumer.inst
                            qe.addr_known_time = now + 1
                            word = qe.word = inst.addr >> 2
                            qe.line = inst.addr >> 5
                            if qe.use_lvc:
                                b2 = lvaq_words.get(word)
                                if b2 is None:
                                    lvaq_words[word] = [qe]
                                else:
                                    b2.append(qe)
                            else:
                                b2 = lsq_words.get(word)
                                if b2 is None:
                                    lsq_words[word] = [qe]
                                else:
                                    b2.append(qe)
                    if pending == 0 and consumer.state == 0:
                        if consumer.earliest < now:
                            consumer.earliest = now
                        if not consumer.in_issuable:
                            consumer.in_issuable = True
                            heappush(woken, (consumer.seq, consumer))
                consumers.clear()
            # Leave the drained bucket in its slot for reuse; events
            # exactly one ring period out go to the overflow dict, so
            # the slot cannot alias this cycle.
            completing.clear()

    def finish():
        return {}

    return tick, finish

"""Issue stage: ready instructions grab issue slots and functional units.

The issuable set is two seq-ordered lanes merged oldest-first — a FIFO
for dispatch-ready entries (dispatch runs in seq order) and a heap for
entries woken out of order by writeback — plus a sleep dict for entries
whose operands are complete but not yet forwardable.  Memory ops perform
address generation here (stores may already have resolved theirs via the
STA split); stores then go to the dedicated store-done lane, everything
else schedules its completion on the calendar.

The pipelined ALU pools refill at the top of the tick rather than once
per cycle: nothing but this stage consumes them, so a skipped tick's
stale budget is unobservable.  ``finish(final_now)`` reconstructs the
exact end-of-run pool state from the last tick cycle.

Interface: ``bind(state) -> (tick, finish)``.

``tick(now)``
    may be called every cycle; the kernel skips it when the sleep dict
    and both lanes are empty (provably a no-op).
``finish(final_now)``
    writes the ALU budgets back to the pool and returns this stage's
    counter contributions.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.core.stages.state import MASK, CoreState
from repro.isa.opcodes import LATENCY_BY_INT
from repro.pipeline.fu import FU_KIND


def bind(state: CoreState):
    """Close over the issue working set; returns ``(tick, finish)``."""
    width = state.width
    fu_kind = FU_KIND
    latency = LATENCY_BY_INT
    ring = state.ring
    ready_fifo = state.ready_fifo
    fifo_popleft = ready_fifo.popleft
    woken = state.woken
    sleep = state.sleep
    sleep_get = sleep.get
    sleep_pop = sleep.pop
    store_done_append = state.store_done.append
    lsq = state.lsq
    lvaq = state.lvaq
    lsq_words = lsq._stores_by_word
    lvaq_words = lvaq._stores_by_word
    agen_ready_lsq = lsq._addr_ready
    agen_ready_lvaq = lvaq._addr_ready
    # The memory stage's event-driven walk consumes the LVAQ bucket only
    # when fast forwarding is off (sp-based loads may be serviced before
    # address generation, so the fast-forwarding walk rescans the queue).
    lvaq_track = not state.fast_fwd

    fus = state.fus
    fus_try_take = fus.try_take
    n_ialu = fus.ialu
    n_falu = fus.falu
    # (ialu_left, falu_left) after the most recent tick, and that tick's
    # cycle; lets finish() reconstruct the end-of-run pool state.
    left_after = (fus._ialu_left, fus._falu_left)
    last_tick = -1

    n_stall_fu = 0

    # The trailing defaults re-bind the run-constant working set as
    # frame locals: default values are copied into the frame in C at
    # call time, so every use inside the hot loops is a plain local
    # (LOAD_FAST) access instead of a closure (LOAD_DEREF) one.  The
    # kernel never passes them.
    def tick(now, width=width, fu_kind=fu_kind, latency=latency,
             ring=ring, ready_fifo=ready_fifo, fifo_popleft=fifo_popleft,
             woken=woken, sleep=sleep, sleep_get=sleep_get,
             sleep_pop=sleep_pop, store_done_append=store_done_append,
             lsq_words=lsq_words, lvaq_words=lvaq_words,
             agen_ready_lsq=agen_ready_lsq,
             agen_ready_lvaq=agen_ready_lvaq, lvaq_track=lvaq_track,
             fus_try_take=fus_try_take, n_ialu=n_ialu, n_falu=n_falu):
        nonlocal left_after, last_tick, n_stall_fu
        # Refill the pipelined ALU budgets (tick-local; saved at the
        # bottom so finish() can reconstruct the end-of-run pool state).
        ialu_left = n_ialu
        falu_left = n_falu
        last_tick = now
        if sleep:
            slept = sleep_pop(now, None)
            if slept is not None:
                for entry in slept:
                    heappush(woken, (entry.seq, entry))
        if not woken and ready_fifo:
            # Common case: the heap lane is empty, so the FIFO lane
            # alone is the exact oldest-first order — drain it without
            # the per-entry lane merge.  Deferred entries go to the
            # heap lane *after* the loop, so the lane stays empty
            # throughout.
            budget = width
            deferred = None
            while budget and ready_fifo:
                entry = ready_fifo[0]
                if entry.state != 0:
                    fifo_popleft()
                    entry.in_issuable = False
                    continue
                if entry.earliest > now:
                    fifo_popleft()
                    e2 = entry.earliest
                    b2 = sleep_get(e2)
                    if b2 is None:
                        sleep[e2] = [entry]
                    else:
                        b2.append(entry)
                    continue
                inst = entry.inst
                fu = inst.fu
                kind = fu_kind[fu]
                if kind == 0:
                    if ialu_left:
                        ialu_left -= 1
                        ok = True
                    else:
                        ok = False
                elif kind == 1:
                    if falu_left:
                        falu_left -= 1
                        ok = True
                    else:
                        ok = False
                else:
                    ok = fus_try_take(fu, now)
                if not ok:
                    fifo_popleft()
                    n_stall_fu += 1
                    if deferred is None:
                        deferred = [entry]
                    else:
                        deferred.append(entry)
                    continue
                fifo_popleft()
                budget -= 1
                entry.state = 1
                entry.in_issuable = False
                qe = entry.mem
                if qe is not None:
                    if qe.addr_known_time < 0:
                        qe.addr_known_time = now + 1
                        word = qe.word = inst.addr >> 2
                        qe.line = inst.addr >> 5
                        if qe.is_store:
                            if qe.use_lvc:
                                b2 = lvaq_words.get(word)
                                if b2 is None:
                                    lvaq_words[word] = [qe]
                                else:
                                    b2.append(qe)
                            else:
                                b2 = lsq_words.get(word)
                                if b2 is None:
                                    lsq_words[word] = [qe]
                                else:
                                    b2.append(qe)
                        else:
                            # Register the load for the memory stage's
                            # event-driven walk at its address-known
                            # cycle.
                            if qe.use_lvc:
                                if lvaq_track:
                                    b2 = agen_ready_lvaq.get(now + 1)
                                    if b2 is None:
                                        agen_ready_lvaq[now + 1] = [qe]
                                    else:
                                        b2.append(qe)
                            else:
                                b2 = agen_ready_lsq.get(now + 1)
                                if b2 is None:
                                    agen_ready_lsq[now + 1] = [qe]
                                else:
                                    b2.append(qe)
                    if qe.is_store:
                        store_done_append(entry)
                else:
                    when = now + latency[fu]
                    slot2 = when & MASK
                    bucket = ring[slot2]
                    if bucket is None:
                        ring[slot2] = [entry]
                    else:
                        bucket.append(entry)
            if deferred:
                for entry in deferred:
                    heappush(woken, (entry.seq, entry))
        elif ready_fifo or woken:
            budget = width
            deferred = None
            while budget:
                # Merge the two seq-ordered lanes: oldest first.
                if ready_fifo:
                    entry = ready_fifo[0]
                    if woken and woken[0][0] < entry.seq:
                        entry = woken[0][1]
                        from_fifo = False
                    else:
                        from_fifo = True
                elif woken:
                    entry = woken[0][1]
                    from_fifo = False
                else:
                    break
                if entry.state != 0:
                    # Already handled (e.g. fast-forwarded load): drop
                    # lazily.
                    if from_fifo:
                        fifo_popleft()
                    else:
                        heappop(woken)
                    entry.in_issuable = False
                    continue
                if entry.earliest > now:
                    if from_fifo:
                        fifo_popleft()
                    else:
                        heappop(woken)
                    e2 = entry.earliest
                    b2 = sleep_get(e2)
                    if b2 is None:
                        sleep[e2] = [entry]
                    else:
                        b2.append(entry)
                    continue
                inst = entry.inst
                fu = inst.fu
                kind = fu_kind[fu]
                if kind == 0:
                    if ialu_left:
                        ialu_left -= 1
                        ok = True
                    else:
                        ok = False
                elif kind == 1:
                    if falu_left:
                        falu_left -= 1
                        ok = True
                    else:
                        ok = False
                else:
                    ok = fus_try_take(fu, now)
                if not ok:
                    if from_fifo:
                        fifo_popleft()
                    else:
                        heappop(woken)
                    n_stall_fu += 1
                    if deferred is None:
                        deferred = [entry]
                    else:
                        deferred.append(entry)
                    continue
                if from_fifo:
                    fifo_popleft()
                else:
                    heappop(woken)
                budget -= 1
                entry.state = 1
                entry.in_issuable = False
                qe = entry.mem
                if qe is not None:
                    # Address generation: address known next cycle
                    # (stores may already have resolved theirs).
                    if qe.addr_known_time < 0:
                        qe.addr_known_time = now + 1
                        word = qe.word = inst.addr >> 2
                        qe.line = inst.addr >> 5
                        if qe.is_store:
                            if qe.use_lvc:
                                b2 = lvaq_words.get(word)
                                if b2 is None:
                                    lvaq_words[word] = [qe]
                                else:
                                    b2.append(qe)
                            else:
                                b2 = lsq_words.get(word)
                                if b2 is None:
                                    lsq_words[word] = [qe]
                                else:
                                    b2.append(qe)
                        else:
                            # Register the load for the memory stage's
                            # event-driven walk at its address-known
                            # cycle.
                            if qe.use_lvc:
                                if lvaq_track:
                                    b2 = agen_ready_lvaq.get(now + 1)
                                    if b2 is None:
                                        agen_ready_lvaq[now + 1] = [qe]
                                    else:
                                        b2.append(qe)
                            else:
                                b2 = agen_ready_lsq.get(now + 1)
                                if b2 is None:
                                    agen_ready_lsq[now + 1] = [qe]
                                else:
                                    b2.append(qe)
                    if qe.is_store:
                        # Address and data both captured: ready to
                        # commit next cycle.
                        store_done_append(entry)
                else:
                    when = now + latency[fu]
                    slot2 = when & MASK
                    bucket = ring[slot2]
                    if bucket is None:
                        ring[slot2] = [entry]
                    else:
                        bucket.append(entry)
            if deferred:
                # Deferred entries re-enter through the heap lane
                # regardless of origin; the merge restores order.
                for entry in deferred:
                    heappush(woken, (entry.seq, entry))
        left_after = (ialu_left, falu_left)

    def finish(final_now):
        # A per-cycle refill would leave full budgets if the final
        # cycle's tick was skipped; replay that exactly.
        if last_tick == final_now:
            fus._ialu_left, fus._falu_left = left_after
        else:
            fus._ialu_left = n_ialu
            fus._falu_left = n_falu
        return {"stall.fu": n_stall_fu}

    return tick, finish

"""Shared per-run state for the staged micro-architecture kernel.

One :class:`CoreState` is built per ``Processor.run`` call.  It gathers
every structure the stage components share — the window (ROB, issue
lanes, completion calendar), the memory system, the functional units,
and the configuration scalars — so each stage's ``bind`` factory reads
its working set from one place and closes over it.

The containers referenced here are *the* canonical objects: stages
mutate them in place (the calendar ring, the issue lanes, the memory
queues' internal index lists), which is what lets five independent
closures cooperate without a message-passing layer.  Scalar per-cycle
state (port budgets, dispatch index, occupancy counts) is owned by the
kernel loop and threaded through tick arguments/returns instead — see
``docs/timing_model.md`` for the full ownership map.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.isa.opcodes import LATENCY_BY_INT
from repro.mem.ports import PortArbiter
from repro.pipeline.rob import RobEntry

#: Calendar ring size; must exceed every fixed execution latency so that
#: only memory events (whose distance is unbounded behind a busy bus) can
#: overflow.  Power of two so the slot index is a mask.
RING = 256
MASK = RING - 1
assert max(LATENCY_BY_INT) < RING


class CoreState:
    """Everything the stage components share for one run."""

    def __init__(self, processor, insts: Sequence):
        config = processor.config
        self.processor = processor
        self.insts = insts
        self.total = len(insts)

        # -- configuration scalars ------------------------------------
        self.width = config.issue_width
        self.rob_size = config.rob_size
        self.decoupled = config.decoupled
        self.fast_fwd = config.decoupled and config.decouple.fast_forwarding
        self.combining = config.decouple.combining
        self.mispredict_penalty = config.decouple.mispredict_penalty

        # -- window structures ----------------------------------------
        self.rob_entries = processor.rob.entries
        self.ready_fifo = processor._ready_fifo
        self.woken = processor._issuable
        self.ring = processor._ring
        self.overflow = processor._overflow
        self.producer = processor._producer
        # Entries whose operands are complete but not yet forwardable
        # (earliest > now) sleep here, keyed by that cycle, instead of
        # churning through the issue lanes every cycle.
        self.sleep: Dict[int, List[RobEntry]] = {}
        # Stores issued this cycle, completing next cycle (writeback).
        self.store_done: List[RobEntry] = []
        # Committed ROB entries recycled by dispatch; an entry still
        # sitting stale in an issue lane (in_issuable) is not recycled.
        self.free_entries: List[RobEntry] = []

        # -- execution resources --------------------------------------
        self.fus = processor.fus
        self.steer = processor.partitioner.steer

        # -- frontend --------------------------------------------------
        self.frontend = processor.frontend
        self.frontend_config = config.frontend

        # -- memory system --------------------------------------------
        self.memsys = processor.memsys
        self.lsq = processor.lsq
        self.lvaq = processor.lvaq
        hierarchy = processor.hierarchy
        self.hierarchy = hierarchy
        l1_ports = hierarchy.l1_ports
        lvc_ports = hierarchy.lvc_ports
        self.l1_ports = l1_ports
        self.lvc_ports = lvc_ports
        # Simple arbiters are pure per-cycle budgets the kernel tracks in
        # local integers; any subclass keeps its method calls.  The exact
        # type check is deliberate.
        self.l1_simple = type(l1_ports) is PortArbiter
        self.have_lvc = lvc_ports is not None
        self.lvc_simple = self.have_lvc and type(lvc_ports) is PortArbiter

        # -- first-level-cache inline fast path -----------------------
        # When the addressed line has no live outstanding fill and the
        # tags hit, an access is a counter bump plus an LRU move; any
        # other case falls back to the full ``ready_*`` path BEFORE any
        # state is touched, so the fallback replays the lookup exactly.
        self.counters = processor.counters
        self.counts = processor.counters._counts
        l1_cache = hierarchy.l1
        self.l1_sets = l1_cache._sets
        self.l1_shift = l1_cache.geom.line_shift
        self.l1_smask = l1_cache.geom.set_mask
        self.l1_dirty = l1_cache._dirty
        self.l1_ka = l1_cache._k_accesses
        self.l1_kh = l1_cache._k_hits
        self.l1_pending = hierarchy.l1_mshr._pending
        self.l1_hitlat = hierarchy.config.l1_hit_latency
        lvc_cache = hierarchy.lvc
        if lvc_cache is not None:
            self.lvc_sets = lvc_cache._sets
            self.lvc_shift = lvc_cache.geom.line_shift
            self.lvc_smask = lvc_cache.geom.set_mask
            self.lvc_dirty = lvc_cache._dirty
            self.lvc_ka = lvc_cache._k_accesses
            self.lvc_kh = lvc_cache._k_hits
            self.lvc_pending = hierarchy.lvc_mshr._pending
            self.lvc_hitlat = hierarchy.config.lvc_hit_latency
        else:
            self.lvc_sets = self.l1_sets
            self.lvc_shift = self.lvc_smask = 0
            self.lvc_dirty = self.l1_dirty
            self.lvc_ka = self.lvc_kh = ""
            self.lvc_pending = self.l1_pending
            self.lvc_hitlat = 0

"""Commit stage: in-order retirement; stores write their cache here.

Retires up to ``issue_width`` completed instructions per cycle from the
ROB head.  A store performs its cache write at commit — consuming a port
(or combining into the previous same-line LVC transaction) — so a store
that cannot get a port stalls the whole commit group
(``stall.store_port``).  Retired memory ops are dropped from their queue
head, and this stage is the sole writer of the queues' ``base`` /
``_ns_head`` compaction state.

Interface: ``bind(state) -> (tick, finish)``.

``tick(now, rob_count, committed_total, l1_avail, lvc_avail)``
    must only be called when the ROB head exists and is COMPLETED;
    returns the four scalars updated.
``finish()``
    returns this stage's counter contributions (prefixed ``_`` for
    shares the processor applies to objects rather than named counters).
"""

from __future__ import annotations

from typing import Optional

from repro.core.stages.state import CoreState


def bind(state: CoreState):
    """Close over the commit working set; returns ``(tick, finish)``."""
    width = state.width
    combining = state.combining
    combine_window = combining > 1
    rob_entries = state.rob_entries
    rob_popleft = rob_entries.popleft
    producer = state.producer
    free_entries = state.free_entries

    lsq = state.lsq
    lvaq = state.lvaq
    lsq_entries = lsq.entries
    lvaq_entries = lvaq.entries
    lsq_ns = lsq._nonsp_stores
    lvaq_ns = lvaq._nonsp_stores
    lsq_words = lsq._stores_by_word
    lvaq_words = lvaq._stores_by_word
    lsq_sp = lsq._sp_stores
    lvaq_sp = lvaq._sp_stores

    hierarchy = state.hierarchy
    ready_l1 = hierarchy.ready_l1
    ready_lvc = hierarchy.ready_lvc
    l1_simple = state.l1_simple
    lvc_simple = state.lvc_simple
    have_lvc = state.have_lvc
    l1_ports = state.l1_ports
    lvc_ports = state.lvc_ports
    l1_try_take = l1_ports.try_take
    lvc_try_take = lvc_ports.try_take if have_lvc else None
    l1_sets = state.l1_sets
    l1_shift = state.l1_shift
    l1_smask = state.l1_smask
    l1_dirty = state.l1_dirty
    l1_pending = state.l1_pending
    lvc_sets = state.lvc_sets
    lvc_shift = state.lvc_shift
    lvc_smask = state.lvc_smask
    lvc_dirty = state.lvc_dirty
    lvc_pending = state.lvc_pending

    n_stall_store_port = 0
    n_lvaq_store_combined = 0
    cm_l1_fast = 0
    cm_lvc_fast = 0
    cm_l1_busy = 0
    cm_lvc_busy = 0

    # The trailing defaults re-bind the run-constant working set as
    # frame locals: default values are copied into the frame in C at
    # call time, so every use inside the hot loop is a plain local
    # (LOAD_FAST) access instead of a closure (LOAD_DEREF) one.  The
    # kernel never passes them.
    def tick(now, rob_count, committed_total, l1_avail, lvc_avail,
             width=width, combining=combining,
             combine_window=combine_window, rob_entries=rob_entries,
             rob_popleft=rob_popleft, producer=producer,
             free_entries=free_entries, lsq=lsq, lvaq=lvaq,
             lsq_entries=lsq_entries, lvaq_entries=lvaq_entries,
             lsq_ns=lsq_ns, lvaq_ns=lvaq_ns,
             lsq_words=lsq_words, lvaq_words=lvaq_words,
             lsq_sp=lsq_sp, lvaq_sp=lvaq_sp,
             ready_l1=ready_l1, ready_lvc=ready_lvc,
             l1_simple=l1_simple, lvc_simple=lvc_simple,
             have_lvc=have_lvc, l1_try_take=l1_try_take,
             lvc_try_take=lvc_try_take, l1_sets=l1_sets,
             l1_shift=l1_shift, l1_smask=l1_smask, l1_dirty=l1_dirty,
             l1_pending=l1_pending, lvc_sets=lvc_sets,
             lvc_shift=lvc_shift, lvc_smask=lvc_smask,
             lvc_dirty=lvc_dirty, lvc_pending=lvc_pending):
        nonlocal n_stall_store_port, n_lvaq_store_combined
        nonlocal cm_l1_fast, cm_lvc_fast, cm_l1_busy, cm_lvc_busy
        entry = rob_entries[0]
        budget = width
        combine_side: Optional[bool] = None
        combine_line = -1
        combine_left = 0
        retired_lsq = False
        retired_lvaq = False
        while True:
            qe = entry.mem
            if qe is not None:
                if qe.use_lvc:
                    retired_lvaq = True
                else:
                    retired_lsq = True
                if qe.is_store:
                    use_lvc = qe.use_lvc
                    if (combine_window
                            and use_lvc
                            and combine_side == use_lvc
                            and combine_line == qe.line
                            and combine_left > 0):
                        combine_left -= 1
                        n_lvaq_store_combined += 1
                    else:
                        if use_lvc:
                            if lvc_simple:
                                if lvc_avail == 0:
                                    n_stall_store_port += 1
                                    break
                                lvc_avail -= 1
                                cm_lvc_busy += 1
                            elif not have_lvc or not lvc_try_take(
                                    1, line=qe.line, is_store=True):
                                n_stall_store_port += 1
                                break
                        elif l1_simple:
                            if l1_avail == 0:
                                n_stall_store_port += 1
                                break
                            l1_avail -= 1
                            cm_l1_busy += 1
                        elif not l1_try_take(
                                1, line=qe.line, is_store=True):
                            n_stall_store_port += 1
                            break
                        combine_side = use_lvc
                        combine_line = qe.line
                        combine_left = combining - 1
                    addr = qe.word << 2
                    if use_lvc:
                        line_no = addr >> lvc_shift
                        if lvc_pending:
                            t = lvc_pending.get(line_no)
                            pend = t is not None and t > now
                        else:
                            pend = False
                        if pend:
                            ready_lvc(addr, True, now)
                        else:
                            ways = lvc_sets[line_no & lvc_smask]
                            if line_no in ways:
                                cm_lvc_fast += 1
                                if ways[0] != line_no:
                                    ways.remove(line_no)
                                    ways.insert(0, line_no)
                                lvc_dirty.add(line_no)
                            else:
                                ready_lvc(addr, True, now)
                    else:
                        line_no = addr >> l1_shift
                        if l1_pending:
                            t = l1_pending.get(line_no)
                            pend = t is not None and t > now
                        else:
                            pend = False
                        if pend:
                            ready_l1(addr, True, now)
                        else:
                            ways = l1_sets[line_no & l1_smask]
                            if line_no in ways:
                                cm_l1_fast += 1
                                if ways[0] != line_no:
                                    ways.remove(line_no)
                                    ways.insert(0, line_no)
                                l1_dirty.add(line_no)
                            else:
                                ready_l1(addr, True, now)
            rob_popleft()
            rob_count -= 1
            entry.state = 3
            dst = entry.inst.dst
            # producer[] is only ever written for dst > 0 (dispatch),
            # so 0 cannot match.
            if dst > 0 and producer[dst] is entry:
                producer[dst] = None
            consumers = entry.consumers
            if consumers:
                consumers.clear()
            if not entry.in_issuable:
                free_entries.append(entry)
            committed_total += 1
            budget -= 1
            if budget == 0 or rob_count == 0:
                break
            entry = rob_entries[0]
            if entry.state != 2:
                break
        # A retire pass with nothing committed at a queue head is a
        # no-op, so a flag set by a store that then stalled on its port
        # is harmless.  Both blocks are MemQueue.retire_committed
        # inlined: drop the committed prefix, unhook each dropped store
        # from its word/frame bucket, and advance the non-sp-store
        # cursor past retired positions.  This stage is the only writer
        # of ``base`` / ``_ns_head``, kept canonical on the queues.
        if retired_lsq:
            q_entries = lsq_entries
            q_n = len(q_entries)
            drop = 0
            while drop < q_n and q_entries[drop].rob.state == 3:
                drop += 1
            if drop:
                for i2 in range(drop):
                    qe2 = q_entries[i2]
                    if not qe2.is_store:
                        continue
                    word = qe2.word
                    if word >= 0:
                        b2 = lsq_words.get(word)
                        if b2 is not None:
                            try:
                                b2.remove(qe2)
                            except ValueError:
                                pass
                            if not b2:
                                del lsq_words[word]
                    if qe2.sp_based and qe2.frame_key is not None:
                        b2 = lsq_sp.get(qe2.frame_key)
                        if b2 is not None:
                            if b2 and b2[0] is qe2:
                                del b2[0]
                            else:
                                try:
                                    b2.remove(qe2)
                                except ValueError:
                                    pass
                            if not b2:
                                del lsq_sp[qe2.frame_key]
                del q_entries[:drop]
                lsq_base = lsq.base + drop
                lsq.base = lsq_base
                ns2 = lsq_ns
                h2 = lsq._ns_head
                m2 = len(ns2)
                while h2 < m2 and ns2[h2].pos < lsq_base:
                    h2 += 1
                if h2 >= 64:
                    del ns2[:h2]
                    h2 = 0
                lsq._ns_head = h2
        if retired_lvaq:
            q_entries = lvaq_entries
            q_n = len(q_entries)
            drop = 0
            while drop < q_n and q_entries[drop].rob.state == 3:
                drop += 1
            if drop:
                for i2 in range(drop):
                    qe2 = q_entries[i2]
                    if not qe2.is_store:
                        continue
                    word = qe2.word
                    if word >= 0:
                        b2 = lvaq_words.get(word)
                        if b2 is not None:
                            try:
                                b2.remove(qe2)
                            except ValueError:
                                pass
                            if not b2:
                                del lvaq_words[word]
                    if qe2.sp_based and qe2.frame_key is not None:
                        b2 = lvaq_sp.get(qe2.frame_key)
                        if b2 is not None:
                            if b2 and b2[0] is qe2:
                                del b2[0]
                            else:
                                try:
                                    b2.remove(qe2)
                                except ValueError:
                                    pass
                            if not b2:
                                del lvaq_sp[qe2.frame_key]
                del q_entries[:drop]
                lvaq_base = lvaq.base + drop
                lvaq.base = lvaq_base
                ns2 = lvaq_ns
                h2 = lvaq._ns_head
                m2 = len(ns2)
                while h2 < m2 and ns2[h2].pos < lvaq_base:
                    h2 += 1
                if h2 >= 64:
                    del ns2[:h2]
                    h2 = 0
                lvaq._ns_head = h2
        return rob_count, committed_total, l1_avail, lvc_avail

    def finish():
        return {
            "stall.store_port": n_stall_store_port,
            "lvaq.store_combined": n_lvaq_store_combined,
            "_l1_fast": cm_l1_fast,
            "_lvc_fast": cm_lvc_fast,
            "_l1_busy": cm_l1_busy,
            "_lvc_busy": cm_lvc_busy,
        }

    return tick, finish

"""Bind-time composition: splice the stage ticks into one fused kernel.

The stage modules are the single source of truth for the timing model —
each owns its prologue (the working-set bindings at the top of
``bind``), its per-cycle ``tick`` body, and its ``finish`` accounting.
The portable kernel in :meth:`Processor._portable_kernel` composes them
by closure calls: correct, debuggable, and the shape the interface
contract is written against.  But at ~3 tick calls per simulated cycle,
CPython's call machinery (frame setup, default re-binding, return-tuple
packing, and the interpreter-state churn of crossing function
boundaries) costs 15-20% of the whole simulation — measured against the
fused-loop ancestor this refactor decomposed.

This module recovers that loss without giving up the decomposition: it
extracts each stage's prologue and tick body *from the stage source*
(``ast`` + source-line slicing, so the modules stay ordinary readable
Python) and splices them into one generated run function — every stage
guard and body inline in a single frame, exactly the shape of the
fused ancestor — compiled once per process and shared by every
``Processor.run``.  The golden equivalence suite pins the fused kernel
to the seed reference bit-identically, and
``tests/core/test_kernel_compose.py`` pins it to the portable kernel
across policies, so the two composition modes cannot drift apart.

Splicing rules the stage modules must follow (enforced here, loudly):

- prologue statements are single-target assignments; a name bound by
  two stages must be bound by the *same source text* (the composer
  dedupes by text and raises on conflict);
- every tick default is an identity re-binding (``name=name``) of a
  prologue name, so the spliced body resolves to the prologue binding;
- tick positional parameters are exactly the kernel's per-cycle scalars
  (same names, so splicing needs no renaming);
- a tick body has no ``return`` except an optional trailing
  ``return <scalars>`` (stripped: the scalars are already kernel
  locals);
- ``finish`` ends with a single trailing ``return <shares-dict>``.
"""

from __future__ import annotations

import ast
import gc as _gc
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.stages import commit as commit_stage
from repro.core.stages import dispatch as dispatch_stage
from repro.core.stages import issue as issue_stage
from repro.core.stages import memory as memory_stage
from repro.core.stages import writeback as writeback_stage

#: (module, stage key, expected tick positional parameters).  Order is
#: the in-cycle stage order; prologues are emitted in the same order, so
#: a deduped shared binding is always defined before later stages use it.
_STAGES = (
    (commit_stage, "commit",
     ("now", "rob_count", "committed_total", "l1_avail", "lvc_avail")),
    (writeback_stage, "writeback", ("now",)),
    (memory_stage, "memory",
     ("now", "l1_avail", "lvc_avail", "lsq_unserviced", "lvaq_unserviced")),
    (issue_stage, "issue", ("now",)),
    (dispatch_stage, "dispatch",
     ("now", "index", "rob_count", "lsq_unserviced", "lvaq_unserviced")),
)

#: finish() parameters the composer knows how to supply.
_FINISH_ARGS = {"final_now": "now"}


class ComposeError(RuntimeError):
    """A stage module violated the splicing rules."""


def _block(lines: List[str], first: ast.stmt, last: ast.stmt,
           from_indent: int, to_indent: int) -> str:
    """Source text of ``first..last`` re-indented for the splice site."""
    raw = lines[first.lineno - 1:last.end_lineno]
    shift = to_indent - from_indent
    out = []
    for ln in raw:
        if not ln.strip():
            out.append("")
        elif shift >= 0:
            out.append(" " * shift + ln)
        else:
            out.append(ln[-shift:])
    return "\n".join(out)


def _stage_parts(module, key: str, positional: Tuple[str, ...],
                 lines_cache: Dict[str, List[str]]):
    """Extract (prologue stmts, tick body, finish body) from a stage."""
    path = module.__file__
    with open(path, "r", encoding="utf-8") as fh:
        src = fh.read()
    lines = src.split("\n")
    lines_cache[key] = lines
    tree = ast.parse(src)
    bind = next(n for n in tree.body
                if isinstance(n, ast.FunctionDef) and n.name == "bind")

    prologue: List[Tuple[str, str]] = []  # (target, dedented text)
    tick: Optional[ast.FunctionDef] = None
    finish: Optional[ast.FunctionDef] = None
    for stmt in bind.body:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value,
                                                     ast.Constant):
            continue  # docstring
        if isinstance(stmt, ast.FunctionDef):
            if stmt.name == "tick":
                tick = stmt
            elif stmt.name == "finish":
                finish = stmt
            continue
        if isinstance(stmt, ast.Return):
            continue  # `return tick, finish`
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)):
            raise ComposeError(
                f"{key}: prologue statement at line {stmt.lineno} is not "
                f"a single-name assignment")
        text = _block(lines, stmt, stmt, 4, 4)
        prologue.append((stmt.targets[0].id, text))
    if tick is None or finish is None:
        raise ComposeError(f"{key}: bind() must define tick and finish")

    # --- tick: check the interface, then slice the body --------------
    args = tick.args
    if args.posonlyargs or args.kwonlyargs or args.vararg or args.kwarg:
        raise ComposeError(f"{key}: tick must use plain parameters")
    names = [a.arg for a in args.args]
    n_pos = len(names) - len(args.defaults)
    if tuple(names[:n_pos]) != positional:
        raise ComposeError(
            f"{key}: tick positional parameters {names[:n_pos]} != "
            f"expected {list(positional)}")
    for name, default in zip(names[n_pos:], args.defaults):
        if not (isinstance(default, ast.Name) and default.id == name):
            raise ComposeError(
                f"{key}: tick default {name}={ast.unparse(default)} is "
                f"not an identity re-binding")

    body = [s for s in tick.body if not isinstance(s, ast.Nonlocal)]
    if body and isinstance(body[-1], ast.Return):
        ret = body.pop()
        value = ret.value
        elts = (value.elts if isinstance(value, ast.Tuple) else [value])
        for e in elts:
            if not (isinstance(e, ast.Name)
                    and e.id in positional):
                raise ComposeError(
                    f"{key}: tick trailing return must only name "
                    f"positional scalars, got {ast.unparse(ret)}")
    for node in ast.walk(ast.Module(body=body, type_ignores=[])):
        if isinstance(node, (ast.Return, ast.FunctionDef, ast.Lambda)):
            raise ComposeError(
                f"{key}: tick body may not contain nested returns, "
                f"defs or lambdas (line {node.lineno})")
    if not body:
        raise ComposeError(f"{key}: tick body is empty")
    tick_text = (body[0], body[-1])

    # --- finish: statements plus the trailing shares dict ------------
    fargs = [a.arg for a in finish.args.args]
    for a in fargs:
        if a not in _FINISH_ARGS:
            raise ComposeError(f"{key}: finish parameter {a} unsupported")
    fbody = list(finish.body)
    if not (fbody and isinstance(fbody[-1], ast.Return)
            and fbody[-1].value is not None):
        raise ComposeError(f"{key}: finish must end with `return <dict>`")
    fret = fbody.pop()
    for node in ast.walk(ast.Module(body=fbody, type_ignores=[])):
        if isinstance(node, ast.Return):
            raise ComposeError(f"{key}: finish has a mid-body return")
    return prologue, tick_text, (fargs, fbody, fret)


# The kernel skeleton.  ``{...}`` slots receive the spliced stage text;
# everything else mirrors Processor._portable_kernel line for line (the
# cross-kernel equivalence test keeps them honest).
_KERNEL_TEMPLATE = """\
def _fused_run(self, state):
    insts = state.insts
{prologues}
    # ---- kernel-owned scalars ----------------------------------------
    index = 0
    limit = total * 80 + 1000
    rob_count = len(rob_entries)
    lsq_unserviced = lsq.unserviced_loads
    lvaq_unserviced = lvaq.unserviced_loads
    l1_new_cycle = l1_ports.new_cycle
    lvc_new_cycle = lvc_ports.new_cycle if have_lvc else None
    l1_nports = l1_ports.ports
    l1_avail = l1_ports._available if l1_simple else 0
    l1_sat = 0
    lvc_nports = lvc_ports.ports if have_lvc else 0
    lvc_avail = lvc_ports._available if lvc_simple else 0
    lvc_sat = 0
    now = self.now
    committed_total = self._committed
    n_skip_rob_full = 0
    exceeded = False
    _gc_was_enabled = gc.isenabled()
    if _gc_was_enabled:
        gc.disable()
    try:
        while committed_total < total:
            now += 1
            if now > limit:
                exceeded = True
                break
            # ---- new cycle: refill the port budgets ---------------
            if l1_simple:
                if l1_avail == 0:
                    l1_sat += 1
                l1_avail = l1_nports
            else:
                l1_new_cycle()
            if have_lvc:
                if lvc_simple:
                    if lvc_avail == 0:
                        lvc_sat += 1
                    lvc_avail = lvc_nports
                else:
                    lvc_new_cycle()
            # ---- commit -------------------------------------------
            if rob_count and rob_entries[0].state == 2:
{commit}
            # ---- writeback ----------------------------------------
            if store_done or overflow or ring[now & MASK]:
{writeback}
            # ---- memory -------------------------------------------
            if lsq_unserviced or lvaq_unserviced:
{memory}
            # ---- issue --------------------------------------------
            if sleep or ready_fifo or woken:
{issue}
            # ---- dispatch -----------------------------------------
            if index < total:
{dispatch}
            # ---- cycle skip ---------------------------------------
            if (not ready_fifo
                    and not woken
                    and not store_done
                    and (index >= total or rob_count >= rob_size)
                    and lsq_unserviced == 0
                    and lvaq_unserviced == 0
                    and committed_total < total
                    and rob_count
                    and rob_entries[0].state != 2):
                target = None
                for k in range(1, RING):
                    if ring[(now + k) & MASK]:
                        target = now + k
                        break
                if overflow:
                    for t in overflow:
                        if t > now and (target is None
                                        or t < target):
                            target = t
                # Sleeping entries wake at known cycles too (issue pops
                # the bucket for each cycle it ticks), so the skip may
                # jump straight to the earliest of them.
                if sleep:
                    for t in sleep:
                        if t > now and (target is None
                                        or t < target):
                            target = t
                cap = limit + 1
                if target is None or target > cap:
                    target = cap
                if target > now + 1:
                    if index < total:
                        n_skip_rob_full += target - now - 1
                    now = target - 1
    finally:
        if _gc_was_enabled:
            gc.enable()
        self.now = now
        self._committed = committed_total
        lsq.unserviced_loads = lsq_unserviced
        lvaq.unserviced_loads = lvaq_unserviced
{finishes}
        _shares = {{}}
        for _fin in ({fin_names}):
            for _k, _v in _fin.items():
                _shares[_k] = _shares.get(_k, 0) + _v
        _l1_busy = _shares.pop("_l1_busy", 0)
        _lvc_busy = _shares.pop("_lvc_busy", 0)
        if l1_simple:
            l1_ports._available = l1_avail
            l1_ports.busy_transactions += _l1_busy
            l1_ports.cycles_saturated += l1_sat
        if lvc_simple:
            lvc_ports._available = lvc_avail
            lvc_ports.busy_transactions += _lvc_busy
            lvc_ports.cycles_saturated += lvc_sat
        _n_l1_fast = _shares.pop("_l1_fast", 0)
        _n_lvc_fast = _shares.pop("_lvc_fast", 0)
        if _n_l1_fast or _n_lvc_fast:
            _counts = state.counts
            _counts_get = _counts.get
            if _n_l1_fast:
                _k = state.l1_ka
                _counts[_k] = _counts_get(_k, 0) + _n_l1_fast
                _k = state.l1_kh
                _counts[_k] = _counts_get(_k, 0) + _n_l1_fast
            if _n_lvc_fast:
                _k = state.lvc_ka
                _counts[_k] = _counts_get(_k, 0) + _n_lvc_fast
                _k = state.lvc_kh
                _counts[_k] = _counts_get(_k, 0) + _n_lvc_fast
    return (now, committed_total, index, _shares, exceeded,
            n_skip_rob_full)
"""


def compose_source() -> str:
    """Build the fused kernel source from the five stage modules."""
    lines_cache: Dict[str, List[str]] = {}
    prologue_lines: List[str] = []
    seen: Dict[str, str] = {}
    splices: Dict[str, str] = {}
    finish_parts: List[str] = []
    fin_names: List[str] = []

    for module, key, positional in _STAGES:
        prologue, (t_first, t_last), (fargs, fbody, fret) = _stage_parts(
            module, key, positional, lines_cache)
        for target, text in prologue:
            prior = seen.get(target)
            if prior is None:
                seen[target] = text
                prologue_lines.append(text)
            elif prior.strip() != text.strip():
                raise ComposeError(
                    f"{key}: prologue rebinds {target!r} with different "
                    f"source: {text.strip()!r} vs {prior.strip()!r}")
        splices[key] = _block(lines_cache[key], t_first, t_last, 8, 16)

        fin = f"_fin_{key}"
        fin_names.append(fin)
        part = []
        for a in fargs:
            part.append(f"        {a} = {_FINISH_ARGS[a]}")
        if fbody:
            part.append(_block(lines_cache[key], fbody[0], fbody[-1],
                               8, 8))
        part.append(f"        {fin} = {ast.unparse(fret.value)}")
        finish_parts.append("\n".join(part))

    return _KERNEL_TEMPLATE.format(
        prologues="\n".join(prologue_lines),
        commit=splices["commit"],
        writeback=splices["writeback"],
        memory=splices["memory"],
        issue=splices["issue"],
        dispatch=splices["dispatch"],
        finishes="\n".join(finish_parts),
        fin_names=", ".join(fin_names),
    )


_KERNEL = None
_SOURCE: Optional[str] = None


def fused_kernel():
    """The composed run function, compiled once per process."""
    global _KERNEL, _SOURCE
    if _KERNEL is None:
        _SOURCE = compose_source()
        # The exec globals are the union of the stage modules' globals,
        # so every module-level name a spliced body uses (heappush,
        # MASK, LATENCY_BY_INT, GATE_IMISS, RobEntry, ...) resolves to
        # the very same objects the portable ticks close over — in-place
        # patches (e.g. the golden harness's latency perturbation) stay
        # visible to both kernels.
        g: Dict[str, object] = {}
        for module, _key, _pos in _STAGES:
            g.update(vars(module))
        from repro.core.stages.state import RING
        g["RING"] = RING
        g["gc"] = _gc
        code = compile(_SOURCE, "<repro.core.stages.compose>", "exec")
        exec(code, g)
        _KERNEL = g["_fused_run"]
    return _KERNEL

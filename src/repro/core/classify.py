"""Memory-stream partitioning (paper Section 2.2.3).

Most references carry a compile-time classification bit (``local_hint`` on
the dynamic instruction).  The small ambiguous remainder — e.g. loads
through pointers that may target a caller's frame — is classified at
dispatch by a 1-bit **access-region predictor**: one bit per static
instruction remembering the region its previous dynamic instance touched.
The paper reports this hybrid classifies ~99.9% of references correctly.

A misprediction means the op was steered into the wrong queue; the recovery
(kill and re-insert, like a branch-misprediction repair) is modelled as a
fixed penalty added before the access may touch its (correct) cache.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.vm.trace import DynInst


class RegionPredictor:
    """1-bit last-region predictor indexed by static instruction address."""

    __slots__ = ("_table", "predictions", "mispredictions")

    def __init__(self) -> None:
        self._table: Dict[int, bool] = {}
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, pc: int) -> bool:
        """Predicted region for the instruction at *pc* (True = local)."""
        return self._table.get(pc, False)

    def update(self, pc: int, actual_local: bool) -> None:
        """Train the table with the resolved region."""
        self._table[pc] = actual_local

    @property
    def accuracy(self) -> float:
        """Fraction of predictions that were correct."""
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


class StreamPartitioner:
    """Steers each memory reference to the LSQ or the LVAQ at dispatch."""

    def __init__(self, decoupled: bool, use_predictor: bool = True):
        self.decoupled = decoupled
        self.use_predictor = use_predictor
        self.predictor = RegionPredictor()

    def steer(self, inst: DynInst) -> Tuple[bool, bool]:
        """Classify one reference.

        Returns ``(to_lvaq, mispredicted)``.  With decoupling disabled,
        everything goes to the LSQ.  The hardware never sees ``is_local``
        directly; ambiguous references consult the predictor, which is then
        trained with the resolved region — a misprediction reports True so
        the pipeline can charge the recovery penalty.
        """
        if not self.decoupled:
            return False, False
        hint = inst.local_hint
        if hint is not None:
            return hint, False
        if not self.use_predictor:
            # No predictor: ambiguous references conservatively use the LSQ.
            return False, False
        predictor = self.predictor
        predictor.predictions += 1
        predicted = predictor.predict(inst.pc)
        actual = inst.is_local
        predictor.update(inst.pc, actual)
        if predicted != actual:
            predictor.mispredictions += 1
            return actual, True
        return predicted, False

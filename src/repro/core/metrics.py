"""Simulation results and derived metrics."""

from __future__ import annotations

from typing import Dict

from repro.stats.counters import CounterSet


class SimResult:
    """Everything a timing-simulation run measured."""

    def __init__(self, config_name: str, workload_name: str,
                 cycles: int, instructions: int, counters: CounterSet):
        self.config_name = config_name
        self.workload_name = workload_name
        self.cycles = cycles
        self.instructions = instructions
        self.counters = counters

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def speedup_over(self, other: "SimResult") -> float:
        """IPC ratio of this run over *other* (same workload assumed)."""
        if other.ipc == 0:
            return 0.0
        return self.ipc / other.ipc

    # -- common derived rates -------------------------------------------------

    @property
    def l1_miss_rate(self) -> float:
        """L1 data-cache miss rate."""
        return self.counters.rate("l1.misses", "l1.accesses")

    @property
    def lvc_miss_rate(self) -> float:
        """LVC miss rate (0.0 when the config has no LVC)."""
        return self.counters.rate("lvc.misses", "lvc.accesses")

    @property
    def l2_traffic(self) -> int:
        """Transactions on the L1/L2 bus."""
        return self.counters.get("bus.transactions")

    @property
    def lvaq_forward_rate(self) -> float:
        """Fraction of LVAQ loads satisfied by (any) in-queue forwarding."""
        loads = self.counters.get("lvaq.loads")
        if not loads:
            return 0.0
        forwarded = (self.counters.get("lvaq.forwards")
                     + self.counters.get("lvaq.fast_forwards"))
        return forwarded / loads

    def summary(self) -> Dict[str, float]:
        """A compact dictionary for reports and benchmarks."""
        return {
            "config": self.config_name,
            "workload": self.workload_name,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "l1_miss_rate": self.l1_miss_rate,
            "lvc_miss_rate": self.lvc_miss_rate,
            "l2_traffic": self.l2_traffic,
        }

    def __repr__(self) -> str:
        return (
            f"SimResult({self.workload_name!r} on {self.config_name}, "
            f"IPC={self.ipc:.3f})"
        )

"""The paper's contribution: the data-decoupled processor model."""

from repro.core.config import DecoupleConfig, MachineConfig
from repro.core.classify import RegionPredictor, StreamPartitioner
from repro.core.frontend import FrontendConfig
from repro.core.metrics import SimResult
from repro.core.processor import Processor

__all__ = [
    "DecoupleConfig",
    "FrontendConfig",
    "MachineConfig",
    "RegionPredictor",
    "StreamPartitioner",
    "SimResult",
    "Processor",
]

"""repro.trace — trace capture, replay, and multi-programmed mixes.

The subsystem decouples the functional frontend from the timing kernel:

* :mod:`repro.trace.format` — the versioned struct-of-arrays on-disk
  trace format (encode/decode/read/write/info);
* :mod:`repro.trace.capture` — content-addressed capture store keyed by
  a frontend-only code salt;
* :mod:`repro.trace.replay` — trace-driven simulation, bit-identical to
  execution-driven runs;
* :mod:`repro.trace.mix` — N captured traces co-scheduled on independent
  cores sharing the L2 and the memory bus.
"""

from repro.trace.capture import (
    TraceJob,
    TraceStore,
    capture_salt,
    capture_trace,
)
from repro.trace.format import (
    TRACE_FORMAT_VERSION,
    decode_trace,
    encode_trace,
    read_trace,
    trace_info,
    write_trace,
)
from repro.trace.mix import INTERFERENCE_COUNTERS, MixResult, run_mix_jobs
from repro.trace.replay import check_replay_equivalence, load_trace, replay

__all__ = [
    "INTERFERENCE_COUNTERS",
    "MixResult",
    "run_mix_jobs",
    "TRACE_FORMAT_VERSION",
    "TraceJob",
    "TraceStore",
    "capture_salt",
    "capture_trace",
    "check_replay_equivalence",
    "decode_trace",
    "encode_trace",
    "load_trace",
    "read_trace",
    "replay",
    "trace_info",
    "write_trace",
]

"""Trace capture: run the functional frontend once, serialize forever.

A :class:`TraceJob` names everything that determines a committed dynamic
stream — the workload (or inline source), its scale/seed, and the
compile-relevant options — exactly the frontend half of a
:class:`repro.runtime.job.SimJob` (the machine configuration is absent:
the committed stream does not depend on it).  Captured traces live in
the same content-addressed store layout as simulation results::

    <cache_dir>/v1/<capture_salt>/<key[:2]>/<key>.trace   (+ .json meta)

under their **own code-salt entry**: :func:`capture_salt` hashes only
the sources that can change a committed stream (lang/vm/isa/asm/
workloads — see ``TRACE_SALT_SOURCES``) plus the trace-format version,
so editing the timing kernel keeps captured traces valid while editing
the compiler or VM — or bumping the format — invalidates them all.

Next to each ``.trace`` the store keeps a derived ``.pdt`` sidecar
(:mod:`repro.trace.predecode`): the pre-decoded struct-of-arrays tables
the replay fast path indexes instead of re-parsing the trace.  Sidecars
are content-addressed to the trace's payload hash and re-derived on
demand, so they are pure cache — deleting one costs a rebuild, never
correctness.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Tuple

from repro.errors import TraceError
from repro.runtime.cache import ResultCache, default_cache_dir
from repro.runtime.registry import JobKind, register_kind
from repro.runtime.signature import (
    TRACE_SALT_SOURCES,
    canonical_json,
    digest,
    source_salt,
)
from repro.trace.format import TRACE_FORMAT_VERSION, write_trace
from repro.vm.trace import Trace

_CAPTURE_SALT: Dict[str, str] = {}


def capture_salt() -> str:
    """The code-salt entry captured traces are stored under.

    ``trace<version>-<hash>``: the format version is spelled out in the
    directory name (debuggability), and the hash covers the frontend
    sources.  ``REPRO_CACHE_SALT`` composes rather than replaces — the
    override still gets a distinct trace entry, so pinned-salt test
    caches can never confuse a pickled SimResult with a trace file.
    """
    override = os.environ.get("REPRO_CACHE_SALT")
    if override:
        return f"trace{TRACE_FORMAT_VERSION}-{override}"
    cached = _CAPTURE_SALT.get("salt")
    if cached is None:
        cached = (f"trace{TRACE_FORMAT_VERSION}-"
                  f"{source_salt(TRACE_SALT_SOURCES)}")
        _CAPTURE_SALT["salt"] = cached
    return cached


class TraceJob:
    """Spec of one capture: the frontend half of a ``SimJob``.

    Field-compatible with the attributes
    :func:`repro.runtime.worker.trace_for_job` reads, so the same worker
    code builds traces for capture and for execution-driven simulation.
    """

    __slots__ = ("workload", "scale", "seed", "source_text", "optimize",
                 "opt_level", "max_instructions", "_key")

    kind = "trace"

    def __init__(
        self,
        workload: str,
        scale: float = 1.0,
        seed: int = 1,
        source_text: Optional[str] = None,
        optimize: bool = True,
        opt_level: Optional[int] = None,
        max_instructions: Optional[int] = None,
    ):
        self.workload = workload
        self.scale = scale
        self.seed = seed
        self.source_text = source_text
        self.optimize = optimize
        self.opt_level = opt_level
        self.max_instructions = max_instructions
        self._key: Optional[str] = None

    def describe(self) -> Dict[str, Any]:
        """Everything that can affect the captured stream (JSON-able)."""
        body: Dict[str, Any] = {
            "kind": "trace-capture",
            "format_version": TRACE_FORMAT_VERSION,
            "workload": self.workload,
            "scale": self.scale,
            "seed": self.seed,
        }
        if self.source_text is not None:
            body["source"] = {
                "sha256": digest(self.source_text),
                "optimize": self.optimize,
                "opt_level": self.opt_level,
                "max_instructions": self.max_instructions,
            }
        return body

    @property
    def key(self) -> str:
        """Content-addressed identity of the capture."""
        if self._key is None:
            self._key = digest(canonical_json(self.describe()))
        return self._key

    def label(self) -> str:
        """Short human-readable tag for progress lines."""
        return f"capture {self.workload}"

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__
                if name != "_key"}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)
        self._key = None

    def __repr__(self) -> str:
        return (f"TraceJob({self.workload!r}, scale={self.scale}, "
                f"seed={self.seed})")


class TraceStore:
    """Content-addressed trace files in the ResultCache directory tree.

    Reuses the cache's ``v1/<salt>/<key[:2]>`` fan-out and atomic-write
    discipline, but stores the raw trace format (``.trace``) instead of
    pickles — traces are their own serialization, checksummed and
    versioned by :mod:`repro.trace.format`.
    """

    SUFFIX = ".trace"
    PREDECODE_SUFFIX = ".pdt"

    def __init__(self, root: Optional[str] = None,
                 salt: Optional[str] = None):
        self.root = root if root else default_cache_dir()
        self.salt = salt if salt else capture_salt()
        self.dir = os.path.join(self.root, "v1", self.salt)

    def path(self, key: str) -> str:
        """Where the trace for *key* lives (whether or not it exists)."""
        return os.path.join(self.dir, key[:2], key + self.SUFFIX)

    def predecoded_path(self, key: str) -> str:
        """Where the pre-decoded sidecar for *key* lives."""
        return os.path.join(self.dir, key[:2],
                            key + self.PREDECODE_SUFFIX)

    def lookup(self, key: str) -> Optional[str]:
        """The stored trace path for *key*, or None."""
        path = self.path(key)
        return path if os.path.exists(path) else None

    def put(self, key: str, trace: Trace,
            meta: Optional[Dict[str, Any]] = None) -> str:
        """Serialize *trace* under *key*; returns the stored path."""
        path = self.path(key)
        write_trace(trace, path, meta=meta)
        if meta is not None:
            ResultCache._write_atomic(
                os.path.join(os.path.dirname(path), key + ".json"),
                (canonical_json(meta) + "\n").encode("utf-8"))
        return path

    def ensure_predecoded(self, key: str) -> Optional[str]:
        """Derive (or find) the sidecar for *key*'s stored trace.

        Returns the sidecar path, or None when no trace is stored.  An
        existing sidecar is trusted only if its ``source_sha256``
        matches the stored trace's payload hash — a re-captured trace
        invalidates its stale sidecar automatically.
        """
        from repro.trace.format import read_trace_header
        from repro.trace import predecode as _pd

        trace_path = self.lookup(key)
        if trace_path is None:
            return None
        source_sha = read_trace_header(trace_path).get("payload_sha256")
        sidecar = self.predecoded_path(key)
        if os.path.exists(sidecar):
            try:
                existing = _pd.read_predecoded(sidecar, verify=False)
                if existing.source_sha256 == source_sha:
                    return sidecar
            except TraceError:
                pass  # corrupt or stale — rewrite below
        with open(trace_path, "rb") as handle:
            data = handle.read()
        _pd.write_predecoded(
            _pd.predecode_trace(data, origin=trace_path), sidecar)
        return sidecar

    def __repr__(self) -> str:
        return f"TraceStore({self.dir!r})"


def build_capture(job: TraceJob) -> Trace:
    """Run the functional frontend for *job* and return the fresh trace.

    Named workloads go through the builder **uncached** — capture is the
    one consumer that must pay the honest build cost (the benchmark
    compares it against replay), and in-process memo hits would let a
    mutated cached trace leak into a file.
    """
    if job.source_text is not None:
        from repro.runtime.worker import _trace_from_source

        trace = _trace_from_source(job)
        trace.name = job.workload
        return trace
    from repro.workloads.builder import build_trace_uncached
    from repro.workloads.spec import get_spec

    if job.workload.startswith("mini."):
        return build_trace_uncached(job.workload, seed=job.seed)
    length = max(10_000, int(get_spec(job.workload).default_length
                             * job.scale))
    return build_trace_uncached(job.workload, length=length, seed=job.seed)


def capture_trace(job: TraceJob, cache_dir: Optional[str] = None,
                  force: bool = False) -> Tuple[str, bool]:
    """Capture (or find) the trace for *job*; returns ``(path, cached)``.

    ``cached`` is True when the store already held the capture and the
    functional frontend did not run.
    """
    store = TraceStore(cache_dir)
    if not force:
        existing = store.lookup(job.key)
        if existing is not None:
            store.ensure_predecoded(job.key)
            return existing, True
    trace = build_capture(job)
    if not len(trace):
        raise TraceError(f"capture of {job.workload!r} produced an "
                         f"empty trace")
    path = store.put(job.key, trace, meta=job.describe())
    store.ensure_predecoded(job.key)
    return path, False


class CaptureResult:
    """What one executed capture job reports (the trace stays on disk)."""

    __slots__ = ("path", "cached")

    def __init__(self, path: str, cached: bool):
        self.path = path
        self.cached = cached

    def __repr__(self) -> str:
        return f"CaptureResult({self.path!r}, cached={self.cached})"


def execute_trace_job(job: TraceJob) -> CaptureResult:
    """The ``trace`` kind's executor (top-level; pool-picklable).

    Captures into the standard :class:`TraceStore` location; the result
    is a small pointer record — the trace itself is owned by the trace
    store, which is why this kind opts out of the result store
    (``cacheable=False``): double-pickling a multi-megabyte trace next
    to its canonical ``.trace`` file would only waste disk.
    """
    path, cached = capture_trace(job)
    return CaptureResult(path, cached)


def trace_job_from_payload(payload: Dict[str, Any]) -> TraceJob:
    """The ``trace`` kind's submission decoder."""
    workload = payload.get("workload")
    if not isinstance(workload, str) or not workload:
        raise TraceError("trace job payload needs a 'workload' name")
    return TraceJob(
        workload,
        scale=float(payload.get("scale", 1.0)),
        seed=int(payload.get("seed", 1)),
        source_text=payload.get("source_text"),
        optimize=bool(payload.get("optimize", True)),
        opt_level=payload.get("opt_level"),
        max_instructions=payload.get("max_instructions"),
    )


def encode_capture_result(result: CaptureResult) -> Dict[str, Any]:
    """The ``trace`` kind's JSON rendering."""
    return {"path": result.path, "cached": result.cached}


register_kind(JobKind(
    "trace", TraceJob, CaptureResult, execute_trace_job,
    decode_spec=trace_job_from_payload,
    encode_result=encode_capture_result,
    cacheable=False,
))

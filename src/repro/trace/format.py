"""The versioned struct-of-arrays on-disk trace format.

A trace file is a serialized committed dynamic instruction stream — the
complete input of a timing simulation — laid out as flat per-field
tables rather than per-instruction records, so replay decodes it with a
handful of bulk ``array`` loads instead of a parser (see ``docs/trace.md``
for the byte-level layout).

Layout::

    8 bytes   magic  b"RPROTRC1"
    4 bytes   header length (u32, little-endian)
    N bytes   header: canonical JSON (sorted keys, no whitespace)
    M bytes   payload: the section tables, back to back

The header carries the format version, workload identity, the section
table (name, array typecode, element count, byte offset/length within
the payload), the trace-level statistics (:class:`~repro.vm.trace
.TraceStats`, including the frame-size histogram), optional capture
metadata, and the SHA-256 of the payload.  Every multi-byte section is
little-endian on disk regardless of host order.

Sections (one table per :class:`~repro.vm.trace.DynInst` field, plus
two derived tables):

========== ==== =======================================================
name       type contents
========== ==== =======================================================
fu         B    functional-unit class (``FuClass`` value)
dst        b    destination register, ``-1`` = none
nsrc       B    source-operand count (indexes the flat ``srcs`` table)
srcs       b    all source registers, concatenated in stream order
addr       I    effective byte address (memory ops; else 0)
size       B    access width in bytes (memory ops; else 0)
flags      B    bit0 ``is_local``, bit1 ``sp_based``,
                bits2-3 ``local_hint`` (0=None, 1=False, 2=True)
frame      I    activation-record id of the access
offset     i    static offset from the frame base
pc         I    static instruction index
branch     B    taken-branch bitmap, one bit per instruction
gate_index I    frontend gate list: instruction index per gate
gate_code  B    frontend gate list: gate code per gate
========== ==== =======================================================

``branch`` and the gate pair are **derived** tables: branch outcomes
fall out of the committed stream (a branch was taken iff the next
committed instruction is not its static successor), and the gate list
is what a default-geometry gshare frontend computes over the stream
(:meth:`repro.core.frontend.GshareFrontend.prepare`).  Replay does not
consume them — the frontend recomputes gates at bind time from the same
pure function, which is what keeps replay bit-identical under *any*
frontend configuration — but they make the trace self-describing for
offline analysis and ``repro-cc trace info``.

Every decode error raises :class:`repro.errors.TraceError`; a corrupt,
truncated, or version-skewed file can never silently misreplay.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import sys
import tempfile
from array import array
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import TraceError
from repro.stats.histogram import Histogram
from repro.vm.trace import DynInst, Trace, TraceStats

#: Bump on any incompatible change to the layout or field semantics.
#: Participates in the capture code salt (``repro.trace.capture``) and in
#: the config schema description (``repro.core.registry``), so stale
#: cached traces can never be replayed against a newer decoder.
TRACE_FORMAT_VERSION = 1

MAGIC = b"RPROTRC1"

_HEADER_LEN = struct.Struct("<I")
_LITTLE = sys.byteorder == "little"

#: (section name, array typecode) in on-disk order.
SECTIONS: Tuple[Tuple[str, str], ...] = (
    ("fu", "B"),
    ("dst", "b"),
    ("nsrc", "B"),
    ("srcs", "b"),
    ("addr", "I"),
    ("size", "B"),
    ("flags", "B"),
    ("frame", "I"),
    ("offset", "i"),
    ("pc", "I"),
    ("branch", "B"),
    ("gate_index", "I"),
    ("gate_code", "B"),
)

#: ``local_hint`` tri-state by flag bits 2-3.
_HINT_BY_CODE = (None, False, True)
_CODE_BY_HINT = {None: 0, False: 1, True: 2}

from repro.isa.opcodes import FuClass  # noqa: E402 - after stdlib block

_BRANCH = int(FuClass.BRANCH)


def _canonical_json(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _stats_header(stats: TraceStats) -> Dict[str, Any]:
    return {
        "instructions": stats.instructions,
        "loads": stats.loads,
        "stores": stats.stores,
        "local_loads": stats.local_loads,
        "local_stores": stats.local_stores,
        "sp_based_refs": stats.sp_based_refs,
        "ambiguous_refs": stats.ambiguous_refs,
        "calls": stats.calls,
        "max_call_depth": stats.max_call_depth,
        "frame_sizes": [[value, count]
                        for value, count in stats.frame_sizes.items()],
    }


def _stats_from_header(body: Dict[str, Any]) -> TraceStats:
    stats = TraceStats()
    for field in ("instructions", "loads", "stores", "local_loads",
                  "local_stores", "sp_based_refs", "ambiguous_refs",
                  "calls", "max_call_depth"):
        setattr(stats, field, int(body.get(field, 0)))
    histogram = Histogram()
    for value, count in body.get("frame_sizes", ()):
        histogram.add(int(value), int(count))
    stats.frame_sizes = histogram
    return stats


def _default_gates(insts) -> List[Tuple[int, int]]:
    """The gate list a default-geometry gshare frontend derives."""
    from repro.core.frontend import FrontendConfig, GshareFrontend

    return GshareFrontend(FrontendConfig(policy="gshare")).prepare(insts)


def encode_trace(trace: Trace,
                 meta: Optional[Dict[str, Any]] = None) -> bytes:
    """Serialize *trace* to the on-disk format; deterministic bytes.

    The same trace always encodes to the same bytes (canonical JSON
    header, no timestamps), so capture is content-addressable and the
    determinism test can compare files byte for byte.
    """
    insts = trace.insts
    n = len(insts)
    fu = array("B")
    dst = array("b")
    nsrc = array("B")
    srcs = array("b")
    addr = array("I")
    size = array("B")
    flags = array("B")
    frame = array("I")
    offset = array("i")
    pc = array("I")
    branch = bytearray((n + 7) >> 3)
    try:
        for i in range(n):
            inst = insts[i]
            fu.append(inst.fu)
            dst.append(inst.dst)
            sources = inst.srcs
            nsrc.append(len(sources))
            srcs.extend(sources)
            addr.append(inst.addr)
            size.append(inst.size)
            flags.append((1 if inst.is_local else 0)
                         | (2 if inst.sp_based else 0)
                         | (_CODE_BY_HINT[inst.local_hint] << 2))
            frame.append(inst.frame_id)
            offset.append(inst.offset)
            pc.append(inst.pc)
            if (inst.fu == _BRANCH and i + 1 < n
                    and insts[i + 1].pc != inst.pc + 1):
                branch[i >> 3] |= 1 << (i & 7)
    except (OverflowError, KeyError) as exc:
        raise TraceError(
            f"instruction {i} does not fit the trace format: {exc}"
        ) from None
    gates = _default_gates(insts)
    gate_index = array("I", (g for g, _code in gates))
    gate_code = array("B", (code for _g, code in gates))

    tables = {
        "fu": fu, "dst": dst, "nsrc": nsrc, "srcs": srcs, "addr": addr,
        "size": size, "flags": flags, "frame": frame, "offset": offset,
        "pc": pc, "branch": branch, "gate_index": gate_index,
        "gate_code": gate_code,
    }
    sections: List[Dict[str, Any]] = []
    chunks: List[bytes] = []
    position = 0
    for name, typecode in SECTIONS:
        table = tables[name]
        if isinstance(table, bytearray):
            raw = bytes(table)
            count = n  # bit-per-instruction table
        else:
            if not _LITTLE:
                table = array(typecode, table)
                table.byteswap()
            raw = table.tobytes()
            count = len(tables[name])
        sections.append({
            "name": name,
            "typecode": typecode,
            "count": count,
            "offset": position,
            "bytes": len(raw),
        })
        chunks.append(raw)
        position += len(raw)
    payload = b"".join(chunks)

    header: Dict[str, Any] = {
        "format": "repro.trace",
        "version": TRACE_FORMAT_VERSION,
        "workload": trace.name,
        "instructions": n,
        "byte_order": "little",
        "sections": sections,
        "stats": _stats_header(trace.stats),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    if meta:
        header["meta"] = meta
    header_bytes = _canonical_json(header).encode("utf-8")
    return (MAGIC + _HEADER_LEN.pack(len(header_bytes))
            + header_bytes + payload)


def _parse_header(data: bytes, origin: str) -> Tuple[Dict[str, Any], int]:
    """Validate magic/length/JSON/version; returns (header, payload off)."""
    if len(data) < len(MAGIC) + _HEADER_LEN.size:
        raise TraceError(f"{origin}: truncated trace (no header)")
    if data[:len(MAGIC)] != MAGIC:
        raise TraceError(f"{origin}: not a repro trace (bad magic)")
    (header_len,) = _HEADER_LEN.unpack_from(data, len(MAGIC))
    offset = len(MAGIC) + _HEADER_LEN.size + header_len
    if len(data) < offset:
        raise TraceError(f"{origin}: truncated trace header "
                         f"({header_len} bytes declared)")
    try:
        header = json.loads(
            data[len(MAGIC) + _HEADER_LEN.size:offset].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceError(f"{origin}: corrupt trace header: {exc}") from None
    version = header.get("version")
    if version != TRACE_FORMAT_VERSION:
        raise TraceError(
            f"{origin}: trace format version {version!r} is not the "
            f"version this build reads ({TRACE_FORMAT_VERSION}); "
            f"re-capture the trace")
    return header, offset


def _sections_by_name(header: Dict[str, Any], payload_len: int,
                      origin: str) -> Dict[str, Dict[str, Any]]:
    by_name: Dict[str, Dict[str, Any]] = {}
    for section in header.get("sections", ()):
        by_name[section["name"]] = section
        end = section["offset"] + section["bytes"]
        if end > payload_len:
            raise TraceError(
                f"{origin}: truncated trace payload — section "
                f"{section['name']!r} needs {end} bytes, "
                f"{payload_len} present")
    for name, _typecode in SECTIONS:
        if name not in by_name:
            raise TraceError(f"{origin}: trace is missing section {name!r}")
    return by_name


def _load_section(payload: bytes, section: Dict[str, Any]) -> array:
    table = array(section["typecode"])
    table.frombytes(
        payload[section["offset"]:section["offset"] + section["bytes"]])
    if not _LITTLE:
        table.byteswap()
    return table


def decode_trace(data: bytes, origin: str = "<bytes>",
                 verify: bool = True) -> Trace:
    """Deserialize one trace; raises :class:`TraceError` on any defect."""
    header, offset = _parse_header(data, origin)
    payload = memoryview(data)[offset:]
    by_name = _sections_by_name(header, len(payload), origin)
    if verify:
        got = hashlib.sha256(payload).hexdigest()
        want = header.get("payload_sha256")
        if got != want:
            raise TraceError(
                f"{origin}: trace payload checksum mismatch "
                f"(header {want}, payload {got}) — corrupt file")

    n = header["instructions"]
    fu = _load_section(payload, by_name["fu"])
    dst = _load_section(payload, by_name["dst"])
    nsrc = _load_section(payload, by_name["nsrc"])
    srcs = _load_section(payload, by_name["srcs"])
    addr = _load_section(payload, by_name["addr"])
    size = _load_section(payload, by_name["size"])
    flags = _load_section(payload, by_name["flags"])
    frame = _load_section(payload, by_name["frame"])
    offs = _load_section(payload, by_name["offset"])
    pc = _load_section(payload, by_name["pc"])
    for name, table in (("fu", fu), ("dst", dst), ("nsrc", nsrc),
                        ("addr", addr), ("size", size), ("flags", flags),
                        ("frame", frame), ("offset", offs), ("pc", pc)):
        if len(table) != n:
            raise TraceError(
                f"{origin}: section {name!r} holds {len(table)} entries "
                f"for {n} instructions")

    insts: List[DynInst] = [None] * n  # type: ignore[list-item]
    new = DynInst.__new__
    cls = DynInst
    hints = _HINT_BY_CODE
    position = 0
    try:
        for i in range(n):
            inst = new(cls)
            inst.fu = fu[i]
            inst.dst = dst[i]
            count = nsrc[i]
            if count:
                inst.srcs = tuple(srcs[position:position + count])
                position += count
            else:
                inst.srcs = ()
            inst.addr = addr[i]
            inst.size = size[i]
            bits = flags[i]
            inst.local_hint = hints[(bits >> 2) & 3]
            inst.is_local = bool(bits & 1)
            inst.sp_based = bool(bits & 2)
            inst.frame_id = frame[i]
            inst.offset = offs[i]
            inst.pc = pc[i]
            insts[i] = inst
    except IndexError:
        raise TraceError(
            f"{origin}: flat srcs table exhausted at instruction {i} "
            f"— inconsistent nsrc section") from None
    if position != len(srcs):
        raise TraceError(
            f"{origin}: srcs table has {len(srcs)} entries, "
            f"instructions consumed {position}")

    trace = Trace(header.get("workload", "<trace>"))
    trace.insts = insts
    trace.stats = _stats_from_header(header.get("stats", {}))
    return trace


def read_trace(path: str, verify: bool = True) -> Trace:
    """Load one trace file (see :func:`decode_trace` for error behavior)."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise TraceError(f"cannot read trace {path!r}: {exc}") from None
    return decode_trace(data, origin=path, verify=verify)


def read_trace_header(path: str) -> Dict[str, Any]:
    """Parsed header of a trace file without reading the payload.

    The cheap identity probe: ``payload_sha256`` from the returned
    header is what derived artifacts (the predecode sidecar) are
    content-addressed to.
    """
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(len(MAGIC) + _HEADER_LEN.size)
            if len(prefix) < len(MAGIC) + _HEADER_LEN.size:
                raise TraceError(f"{path}: truncated trace (no header)")
            if prefix[:len(MAGIC)] != MAGIC:
                raise TraceError(f"{path}: not a repro trace (bad magic)")
            (header_len,) = _HEADER_LEN.unpack_from(prefix, len(MAGIC))
            header_bytes = handle.read(header_len)
    except OSError as exc:
        raise TraceError(f"cannot read trace {path!r}: {exc}") from None
    header, _offset = _parse_header(prefix + header_bytes, origin=path)
    return header


def write_trace(trace: Trace, path: str,
                meta: Optional[Dict[str, Any]] = None) -> str:
    """Serialize *trace* to *path* atomically; returns the path."""
    payload = encode_trace(trace, meta=meta)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-trace-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return path


def trace_info(path: str) -> Dict[str, Any]:
    """Header summary of a trace file without decoding the payload.

    Used by ``repro-cc trace info``: format version, workload, lengths,
    section table, statistics, capture metadata, and the payload hash.
    The declared payload length is checked against the file size, so a
    truncated file is reported here too.
    """
    try:
        file_size = os.path.getsize(path)
        with open(path, "rb") as handle:
            prefix = handle.read(len(MAGIC) + _HEADER_LEN.size)
            if len(prefix) < len(MAGIC) + _HEADER_LEN.size:
                raise TraceError(f"{path}: truncated trace (no header)")
            if prefix[:len(MAGIC)] != MAGIC:
                raise TraceError(f"{path}: not a repro trace (bad magic)")
            (header_len,) = _HEADER_LEN.unpack_from(prefix, len(MAGIC))
            header_bytes = handle.read(header_len)
    except OSError as exc:
        raise TraceError(f"cannot read trace {path!r}: {exc}") from None
    header, offset = _parse_header(
        prefix + header_bytes, origin=path)
    payload_len = file_size - offset
    by_name = _sections_by_name(header, payload_len, path)
    declared = max(s["offset"] + s["bytes"] for s in by_name.values())
    return {
        "path": path,
        "file_bytes": file_size,
        "format": header.get("format"),
        "version": header.get("version"),
        "workload": header.get("workload"),
        "instructions": header.get("instructions"),
        "byte_order": header.get("byte_order"),
        "payload_bytes": declared,
        "payload_sha256": header.get("payload_sha256"),
        "sections": header.get("sections"),
        "stats": header.get("stats"),
        "meta": header.get("meta"),
    }

"""Pre-decoded struct-of-arrays sidecar for trace replay.

A predecoded sidecar is a **derived** artifact of one captured trace:
every per-instruction quantity replay needs, fully materialized as flat
little-endian tables so the per-instruction work of feeding the kernel
is pure array indexing — no parsing, no per-field bit twiddling, no
dict lookups:

========= ==== ========================================================
name      type contents
========= ==== ========================================================
fu        B    functional-unit class (``FuClass`` value)
dst       b    destination register, ``-1`` = none
src_off   I    prefix sums into ``srcs``: operands of instruction ``i``
               are ``srcs[src_off[i]:src_off[i + 1]]`` (n+1 entries)
srcs      b    all source registers, concatenated in stream order
lat       B    functional-unit latency (``LATENCY_BY_INT[fu]``)
addr      I    effective byte address (memory ops; else 0)
word      I    ``addr >> 2`` — the forwarding/combining word number
line      I    ``addr >> 5`` — the cache line number
size      B    access width in bytes (memory ops; else 0)
flags     B    bit0 ``is_local``, bit1 ``sp_based``,
               bits2-3 ``local_hint`` (0=None, 1=False, 2=True)
frame     I    activation-record id of the access (region table)
offset    i    static offset from the frame base (region table)
pc        I    static instruction index
========= ==== ========================================================

``src_off``, ``lat``, ``word`` and ``line`` are the derived tables the
raw trace format does not carry; the rest are copied so a sidecar is
self-contained.  The on-disk layout mirrors the trace format: magic,
canonical-JSON header (sorted keys, no whitespace — deterministic
bytes), then the section tables back to back, checksummed with the
payload's SHA-256.  The header records ``source_sha256`` — the payload
hash of the trace the sidecar was derived from — which makes sidecars
content-addressed to their source: a re-captured trace can never be
replayed through a stale sidecar.

Every defect — bad magic, truncated payload, checksum mismatch, version
skew, source mismatch — raises :class:`repro.errors.TraceError`.

Materialization (:func:`materialized_insts`) builds the
:class:`~repro.vm.trace.DynInst` list the kernel consumes and memoizes
it per process keyed by ``source_sha256``, so a benchmark repeat or a
config sweep over one workload pays the object construction once.  The
memoized list is shared: the kernel treats the committed stream as
read-only (the golden harness already relies on this).
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import sys
import tempfile
from array import array
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import TraceError
from repro.isa.opcodes import LATENCY_BY_INT
from repro.vm.trace import DynInst

#: Bump on any incompatible change to the sidecar layout or semantics.
PREDECODE_VERSION = 1

MAGIC = b"RPROPDT1"

_HEADER_LEN = struct.Struct("<I")
_LITTLE = sys.byteorder == "little"

#: (section name, array typecode) in on-disk order.
SECTIONS: Tuple[Tuple[str, str], ...] = (
    ("fu", "B"),
    ("dst", "b"),
    ("src_off", "I"),
    ("srcs", "b"),
    ("lat", "B"),
    ("addr", "I"),
    ("word", "I"),
    ("line", "I"),
    ("size", "B"),
    ("flags", "B"),
    ("frame", "I"),
    ("offset", "i"),
    ("pc", "I"),
)

#: ``local_hint`` tri-state by flag bits 2-3 (same coding as the trace).
_HINT_BY_CODE = (None, False, True)


def _canonical_json(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class PredecodedTrace:
    """One sidecar held in memory: the flat tables plus identity."""

    __slots__ = ("workload", "source_sha256", "n", "tables")

    def __init__(self, workload: str, source_sha256: str, n: int,
                 tables: Dict[str, array]):
        self.workload = workload
        self.source_sha256 = source_sha256
        self.n = n
        self.tables = tables

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (f"PredecodedTrace({self.workload!r}, n={self.n}, "
                f"source={self.source_sha256[:12]})")


#: Per-process count of decode work done: sidecar-table derivations plus
#: ``DynInst`` materializations that missed the memo.  A warm repeat of
#: identical replay work leaves this flat — the runtime's warm-state
#: accounting (:func:`repro.runtime.worker.warm_snapshot`) reads it.
decode_count = 0


def predecode_trace(data: bytes, origin: str = "<bytes>",
                    verify: bool = True) -> PredecodedTrace:
    """Derive the sidecar tables from one *encoded* trace.

    Works straight off the raw section tables — the intermediate
    ``DynInst`` list is never built.
    """
    global decode_count
    decode_count += 1

    from repro.trace import format as tf

    header, offset = tf._parse_header(data, origin)
    payload = memoryview(data)[offset:]
    by_name = tf._sections_by_name(header, len(payload), origin)
    if verify:
        got = hashlib.sha256(payload).hexdigest()
        want = header.get("payload_sha256")
        if got != want:
            raise TraceError(
                f"{origin}: trace payload checksum mismatch "
                f"(header {want}, payload {got}) — corrupt file")
    source_sha = header.get("payload_sha256")
    if not source_sha:
        raise TraceError(f"{origin}: trace header lacks payload_sha256")

    n = header["instructions"]
    fu = tf._load_section(payload, by_name["fu"])
    nsrc = tf._load_section(payload, by_name["nsrc"])
    addr = tf._load_section(payload, by_name["addr"])
    if len(fu) != n or len(nsrc) != n or len(addr) != n:
        raise TraceError(f"{origin}: section length mismatch "
                         f"({n} instructions declared)")

    src_off = array("I", bytes(4 * (n + 1)))
    position = 0
    for i in range(n):
        src_off[i] = position
        position += nsrc[i]
    src_off[n] = position
    srcs = tf._load_section(payload, by_name["srcs"])
    if position != len(srcs):
        raise TraceError(
            f"{origin}: srcs table has {len(srcs)} entries, "
            f"nsrc sums to {position}")
    try:
        lat = array("B", (LATENCY_BY_INT[f] for f in fu))
    except (IndexError, OverflowError) as exc:
        raise TraceError(
            f"{origin}: unknown functional-unit class: {exc}") from None
    word = array("I", (a >> 2 for a in addr))
    line = array("I", (a >> 5 for a in addr))

    tables: Dict[str, array] = {
        "fu": fu,
        "dst": tf._load_section(payload, by_name["dst"]),
        "src_off": src_off,
        "srcs": srcs,
        "lat": lat,
        "addr": addr,
        "word": word,
        "line": line,
        "size": tf._load_section(payload, by_name["size"]),
        "flags": tf._load_section(payload, by_name["flags"]),
        "frame": tf._load_section(payload, by_name["frame"]),
        "offset": tf._load_section(payload, by_name["offset"]),
        "pc": tf._load_section(payload, by_name["pc"]),
    }
    for name, _typecode in SECTIONS:
        expected = position if name == "srcs" else (
            n + 1 if name == "src_off" else n)
        if len(tables[name]) != expected:
            raise TraceError(
                f"{origin}: derived section {name!r} holds "
                f"{len(tables[name])} entries, expected {expected}")
    return PredecodedTrace(header.get("workload", "<trace>"),
                           source_sha, n, tables)


def encode_predecoded(pdt: PredecodedTrace) -> bytes:
    """Serialize one sidecar; deterministic bytes (canonical header)."""
    sections: List[Dict[str, Any]] = []
    chunks: List[bytes] = []
    position = 0
    for name, typecode in SECTIONS:
        table = pdt.tables[name]
        if not _LITTLE:
            table = array(typecode, table)
            table.byteswap()
        raw = table.tobytes()
        sections.append({
            "name": name,
            "typecode": typecode,
            "count": len(pdt.tables[name]),
            "offset": position,
            "bytes": len(raw),
        })
        chunks.append(raw)
        position += len(raw)
    payload = b"".join(chunks)
    header = {
        "format": "repro.trace.predecode",
        "version": PREDECODE_VERSION,
        "workload": pdt.workload,
        "instructions": pdt.n,
        "byte_order": "little",
        "source_sha256": pdt.source_sha256,
        "sections": sections,
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    header_bytes = _canonical_json(header).encode("utf-8")
    return (MAGIC + _HEADER_LEN.pack(len(header_bytes))
            + header_bytes + payload)


def decode_predecoded(data: bytes, origin: str = "<bytes>",
                      verify: bool = True) -> PredecodedTrace:
    """Deserialize one sidecar; raises ``TraceError`` on any defect."""
    if len(data) < len(MAGIC) + _HEADER_LEN.size:
        raise TraceError(f"{origin}: truncated sidecar (no header)")
    if data[:len(MAGIC)] != MAGIC:
        raise TraceError(f"{origin}: not a predecoded sidecar (bad magic)")
    (header_len,) = _HEADER_LEN.unpack_from(data, len(MAGIC))
    offset = len(MAGIC) + _HEADER_LEN.size + header_len
    if len(data) < offset:
        raise TraceError(f"{origin}: truncated sidecar header "
                         f"({header_len} bytes declared)")
    try:
        header = json.loads(
            data[len(MAGIC) + _HEADER_LEN.size:offset].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceError(
            f"{origin}: corrupt sidecar header: {exc}") from None
    version = header.get("version")
    if version != PREDECODE_VERSION:
        raise TraceError(
            f"{origin}: sidecar version {version!r} is not the version "
            f"this build reads ({PREDECODE_VERSION}); re-derive it")
    source_sha = header.get("source_sha256")
    if not source_sha:
        raise TraceError(f"{origin}: sidecar lacks source_sha256")
    payload = memoryview(data)[offset:]
    if verify:
        got = hashlib.sha256(payload).hexdigest()
        want = header.get("payload_sha256")
        if got != want:
            raise TraceError(
                f"{origin}: sidecar payload checksum mismatch "
                f"(header {want}, payload {got}) — corrupt file")
    by_name: Dict[str, Dict[str, Any]] = {}
    for section in header.get("sections", ()):
        by_name[section["name"]] = section
        end = section["offset"] + section["bytes"]
        if end > len(payload):
            raise TraceError(
                f"{origin}: truncated sidecar payload — section "
                f"{section['name']!r} needs {end} bytes, "
                f"{len(payload)} present")
    n = header["instructions"]
    tables: Dict[str, array] = {}
    for name, typecode in SECTIONS:
        section = by_name.get(name)
        if section is None:
            raise TraceError(
                f"{origin}: sidecar is missing section {name!r}")
        table = array(typecode)
        table.frombytes(
            payload[section["offset"]:section["offset"]
                    + section["bytes"]])
        if not _LITTLE:
            table.byteswap()
        tables[name] = table
    if len(tables["src_off"]) != n + 1:
        raise TraceError(
            f"{origin}: src_off holds {len(tables['src_off'])} entries "
            f"for {n} instructions")
    for name in ("fu", "dst", "lat", "addr", "word", "line", "size",
                 "flags", "frame", "offset", "pc"):
        if len(tables[name]) != n:
            raise TraceError(
                f"{origin}: section {name!r} holds {len(tables[name])} "
                f"entries for {n} instructions")
    if len(tables["srcs"]) != tables["src_off"][n]:
        raise TraceError(
            f"{origin}: srcs table has {len(tables['srcs'])} entries, "
            f"src_off declares {tables['src_off'][n]}")
    return PredecodedTrace(header.get("workload", "<trace>"),
                           source_sha, n, tables)


def read_predecoded(path: str, verify: bool = True) -> PredecodedTrace:
    """Load one sidecar file (``TraceError`` on any defect)."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise TraceError(
            f"cannot read sidecar {path!r}: {exc}") from None
    return decode_predecoded(data, origin=path, verify=verify)


def write_predecoded(pdt: PredecodedTrace, path: str) -> str:
    """Serialize one sidecar to *path* atomically; returns the path."""
    payload = encode_predecoded(pdt)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-pdt-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return path


# -- materialization ----------------------------------------------------------

#: Materialized streams by source trace hash (bounded; FIFO eviction).
#: Shared read-only with every consumer — see the module docstring.
_MATERIALIZED: "OrderedDict[str, List[DynInst]]" = OrderedDict()
_MATERIALIZED_CAP = 16


def clear_materialized() -> None:
    """Drop the per-process materialization memo (tests)."""
    _MATERIALIZED.clear()


def materialized_cached(source_sha256: str) -> Optional[List[DynInst]]:
    """Memo probe by source trace hash (no sidecar load needed)."""
    cached = _MATERIALIZED.get(source_sha256)
    if cached is not None:
        _MATERIALIZED.move_to_end(source_sha256)
    return cached


def materialized_insts(pdt: PredecodedTrace) -> List[DynInst]:
    """The ``DynInst`` stream for *pdt*, memoized per process.

    Repeated calls for the same source trace (benchmark rounds, config
    sweeps) return the same list object without rebuilding it.
    """
    global decode_count
    cached = _MATERIALIZED.get(pdt.source_sha256)
    if cached is not None:
        _MATERIALIZED.move_to_end(pdt.source_sha256)
        return cached
    decode_count += 1
    insts = _materialize(pdt)
    _MATERIALIZED[pdt.source_sha256] = insts
    while len(_MATERIALIZED) > _MATERIALIZED_CAP:
        _MATERIALIZED.popitem(last=False)
    return insts


def _materialize(pdt: PredecodedTrace) -> List[DynInst]:
    """Build the ``DynInst`` list by pure array indexing."""
    t = pdt.tables
    n = pdt.n
    fu = t["fu"]
    dst = t["dst"]
    src_off = t["src_off"]
    srcs = t["srcs"]
    addr = t["addr"]
    size = t["size"]
    flags = t["flags"]
    frame = t["frame"]
    offs = t["offset"]
    pc = t["pc"]
    hints = _HINT_BY_CODE
    new = DynInst.__new__
    cls = DynInst
    insts: List[DynInst] = [None] * n  # type: ignore[list-item]
    position = 0
    for i in range(n):
        inst = new(cls)
        inst.fu = fu[i]
        inst.dst = dst[i]
        end = src_off[i + 1]
        if end > position:
            inst.srcs = tuple(srcs[position:end])
            position = end
        else:
            inst.srcs = ()
        inst.addr = addr[i]
        inst.size = size[i]
        bits = flags[i]
        inst.local_hint = hints[(bits >> 2) & 3]
        inst.is_local = bool(bits & 1)
        inst.sp_based = bool(bits & 2)
        inst.frame_id = frame[i]
        inst.offset = offs[i]
        inst.pc = pc[i]
        insts[i] = inst
    return insts

"""Trace-driven replay: pre-decoded flat arrays straight into the kernel.

Replay is the hot path the capture layer exists for.  It loads a
serialized committed stream (:mod:`repro.trace.format`), materialises
the :class:`~repro.vm.trace.DynInst` sequence with bulk array loads, and
hands it to the **unmodified** staged timing kernel — no VM, no
compiler, no workload generator on the path.  Because the kernel
consumes only the committed stream (frontend gate lists are a pure
function of it, recomputed at bind time), a replayed run is
**bit-identical** to the execution-driven run it was captured from:
same cycles, same instruction count, same counter dictionary, for every
machine configuration.  :func:`check_replay_equivalence` enforces that
over the golden matrix.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.config import MachineConfig
from repro.core.metrics import SimResult
from repro.core.processor import Processor
from repro.trace.format import read_trace
from repro.vm.trace import Trace

TraceSource = Union[str, Trace]


def load_trace(source: TraceSource, verify: bool = True) -> Trace:
    """*source* as an in-memory :class:`Trace` (path → decode)."""
    if isinstance(source, Trace):
        return source
    return read_trace(source, verify=verify)


def replay(source: TraceSource, config: MachineConfig,
           workload: Optional[str] = None,
           verify: bool = True) -> SimResult:
    """Run one timing simulation from a captured trace.

    *source* is a trace file path or an already-loaded :class:`Trace`.
    The result is indistinguishable from
    ``Processor(config).run(...)`` over the execution-driven stream.
    """
    trace = load_trace(source, verify=verify)
    return Processor(config).run(
        trace.insts, workload if workload else trace.name)


def replay_insts(source: TraceSource,
                 verify: bool = True) -> Tuple[List, str]:
    """The committed stream for *source* via the pre-decoded fast path.

    Returns ``(insts, workload name)``.  A trace file path is routed
    through :mod:`repro.trace.predecode`: a ``.pdt`` sidecar next to
    the file is used when present and matching (checksummed, source-
    hash-checked), else the tables are derived in memory from the raw
    trace; either way the ``DynInst`` materialization is memoized per
    process, so repeats and config sweeps over one trace decode it
    once.  The stream is bit-identical to ``load_trace(...).insts``.
    """
    if isinstance(source, Trace):
        return source.insts, source.name
    from repro.errors import TraceError
    from repro.trace import predecode as _pd
    from repro.trace.format import read_trace_header

    header = read_trace_header(source)
    source_sha = header.get("payload_sha256")
    if source_sha:
        cached = _pd.materialized_cached(source_sha)
        if cached is not None:
            return cached, header.get("workload", "<trace>")
    pdt = None
    if source.endswith(".trace"):
        sidecar = source[:-len(".trace")] + ".pdt"
        try:
            with open(sidecar, "rb") as handle:
                pdt = _pd.decode_predecoded(
                    handle.read(), origin=sidecar, verify=verify)
            if pdt.source_sha256 != source_sha:
                pdt = None  # sidecar derived from an older capture
        except (OSError, TraceError):
            pdt = None  # absent, stale, or corrupt — derive below
    if pdt is None:
        with open(source, "rb") as handle:
            data = handle.read()
        pdt = _pd.predecode_trace(data, origin=source, verify=verify)
    return _pd.materialized_insts(pdt), pdt.workload


def replay_fast(source: TraceSource, config: MachineConfig,
                workload: Optional[str] = None,
                verify: bool = True) -> SimResult:
    """:func:`replay` through the pre-decoded fast path.

    Same result bit for bit; the difference is cost shape — sidecar
    tables instead of trace parsing, and a memoized stream shared
    across repeats in this process.
    """
    insts, name = replay_insts(source, verify=verify)
    return Processor(config).run(insts, workload if workload else name)


def check_replay_equivalence(
    workloads: Sequence[str],
    configs: Optional[Iterable[Tuple[str, Dict]]] = None,
    length: int = 20_000,
    seed: int = 1,
) -> List:
    """Round-trip equivalence sweep: serialize → decode → replay → diff.

    For each workload the execution-driven stream is built once, pushed
    through the full encode/decode round trip, and both streams are
    simulated on every golden configuration.  Returns every
    :class:`repro.perf.golden.Mismatch` (empty list = replay is
    bit-identical across the matrix).
    """
    from repro.perf.golden import GOLDEN_CONFIGS, diff_results
    from repro.trace.format import decode_trace, encode_trace
    from repro.workloads.builder import build_trace

    if configs is None:
        configs = GOLDEN_CONFIGS
    configs = tuple(configs)
    mismatches: List = []
    for workload in workloads:
        direct = build_trace(workload, length=length, seed=seed)
        replayed = decode_trace(encode_trace(direct),
                                origin=f"<capture:{workload}>")
        for config_name, kwargs in configs:
            config = MachineConfig.baseline(**kwargs)
            expected = Processor(config).run(direct.insts, workload)
            actual = Processor(config).run(replayed.insts, workload)
            mismatches.extend(
                diff_results(workload, config_name, expected, actual))
    return mismatches

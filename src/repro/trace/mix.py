"""Multi-programmed mix results and their runtime plumbing.

:class:`MixResult` packages what :func:`repro.core.multicore.run_mix`
produces — one :class:`~repro.core.metrics.SimResult` slice per program
plus the ``mix.*`` interference counters — into a single cacheable
value, and :func:`run_mix_jobs` runs a batch of
:class:`~repro.runtime.job.MixJob` specs through the regular
:class:`~repro.runtime.engine.JobEngine` (dedup, cache, pool, retries)
with a mix-typed result cache.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.metrics import SimResult
from repro.runtime.job import MixJob

#: The interference counters a mix run can attribute to each program.
INTERFERENCE_COUNTERS = (
    "mix.bus_conflicts",
    "mix.bus_conflict_stalls",
    "mix.l2_evictions_caused",
    "mix.l2_evictions_suffered",
)


class MixResult:
    """One mix run: per-program result slices sharing a global clock."""

    __slots__ = ("config_name", "programs")

    def __init__(self, config_name: str, programs: Sequence[SimResult]):
        self.config_name = config_name
        self.programs = list(programs)

    @property
    def cycles(self) -> int:
        """Global cycles: when the last program finished."""
        return max(p.cycles for p in self.programs)

    @property
    def instructions(self) -> int:
        """Total committed instructions across every program."""
        return sum(p.instructions for p in self.programs)

    def slice(self, workload: str) -> SimResult:
        """The per-program result for *workload* (first match)."""
        for program in self.programs:
            if program.workload_name == workload:
                return program
        raise KeyError(workload)

    def interference(self) -> Dict[str, Dict[str, int]]:
        """workload -> its ``mix.*`` counters (absent counters as 0)."""
        return {
            p.workload_name: {
                name: p.counters.get(name)
                for name in INTERFERENCE_COUNTERS
            }
            for p in self.programs
        }

    def summary(self) -> Dict[str, object]:
        """Flat report dict (manifest/CLI friendly)."""
        return {
            "config": self.config_name,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "programs": [
                {
                    "workload": p.workload_name,
                    "cycles": p.cycles,
                    "instructions": p.instructions,
                    "ipc": p.ipc,
                    **{name: p.counters.get(name)
                       for name in INTERFERENCE_COUNTERS},
                }
                for p in self.programs
            ],
        }

    def __repr__(self) -> str:
        names = "+".join(p.workload_name for p in self.programs)
        return f"MixResult({names} on {self.config_name}, {self.cycles} cycles)"


def mix_cache(cache_dir: Optional[str] = None):
    """The result store mixes share with every other kind, or None.

    Mix results share the simulation code salt (any simulator change
    invalidates them) but deserialize as :class:`MixResult`; the ``mix``
    kind's registered ``result_type`` keeps families from cross-hitting.
    """
    from repro.runtime.store import runtime_store

    return runtime_store(cache_dir)


def run_mix_jobs(jobs: Iterable[MixJob], engine_jobs: int = 1,
                 cache_dir: Optional[str] = None,
                 timeout: Optional[float] = None
                 ) -> List[Tuple[MixJob, MixResult]]:
    """Run *jobs* through the engine; returns (job, result) in order.

    Raises :class:`repro.errors.SimulationError` if any mix failed.
    """
    from repro.errors import SimulationError
    from repro.runtime.engine import JobEngine
    from repro.runtime.worker import execute_mix_job

    jobs = list(jobs)
    engine = JobEngine(jobs=engine_jobs, cache=mix_cache(cache_dir),
                       timeout=timeout)
    report = engine.run(jobs, execute=execute_mix_job)
    failed = report.failed
    if failed:
        first = failed[0]
        raise SimulationError(
            f"{len(failed)} mix job(s) failed; first: "
            f"{first.job.label()}: {first.error}")
    by_key = report.results()
    return [(job, by_key[job.key]) for job in jobs]

"""Textual disassembly of instructions and programs."""

from __future__ import annotations

from typing import List

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Fmt, LATENCY_BY_INT, Opcode
from repro.isa.registers import reg_name


def _target(ins: Instruction) -> str:
    if ins.label is not None:
        return ins.label
    return str(ins.imm)


def disassemble(ins: Instruction) -> str:
    """Render one instruction as assembly text."""
    op, fmt = ins.op, ins.op.fmt
    m = op.mnemonic
    if fmt is Fmt.NONE:
        return m
    if fmt is Fmt.RRR:
        return f"{m} {reg_name(ins.rd)}, {reg_name(ins.rs)}, {reg_name(ins.rt)}"
    if fmt is Fmt.RRI:
        return f"{m} {reg_name(ins.rd)}, {reg_name(ins.rs)}, {ins.imm}"
    if fmt is Fmt.RI:
        if op is Opcode.LA and ins.label is not None:
            return f"{m} {reg_name(ins.rd)}, {ins.label}"
        return f"{m} {reg_name(ins.rd)}, {ins.imm}"
    if fmt is Fmt.RR:
        return f"{m} {reg_name(ins.rd)}, {reg_name(ins.rs)}"
    if fmt is Fmt.MEM:
        value = ins.rd if op.is_load else ins.rt
        text = f"{m} {reg_name(value)}, {ins.imm}({reg_name(ins.rs)})"
        if ins.local is True:
            text += "  # local"
        elif ins.local is False:
            text += "  # nonlocal"
        else:
            text += "  # ambiguous"
        return text
    if fmt is Fmt.BR2:
        return f"{m} {reg_name(ins.rs)}, {reg_name(ins.rt)}, {_target(ins)}"
    if fmt is Fmt.BR1:
        return f"{m} {reg_name(ins.rs)}, {_target(ins)}"
    if fmt is Fmt.J:
        return f"{m} {_target(ins)}"
    if fmt is Fmt.JR:
        return f"{m} {reg_name(ins.rs)}"
    if fmt is Fmt.SYS:
        return f"{m} {ins.imm}"
    raise AssertionError(f"unhandled format {fmt}")


def disassemble_program(program, annotate_latency: bool = False) -> str:
    """Render a whole :class:`~repro.isa.program.Program` with labels.

    With ``annotate_latency`` each line carries the execution latency the
    timing simulator will charge — read from the same int-indexed
    ``LATENCY_BY_INT`` table the issue stage uses, so the listing can
    never drift from the model.
    """
    by_index = {}
    for name, index in program.labels.items():
        by_index.setdefault(index, []).append(name)
    lines: List[str] = []
    for i, ins in enumerate(program.instructions):
        for name in sorted(by_index.get(i, [])):
            lines.append(f"{name}:")
        text = disassemble(ins)
        if annotate_latency:
            text = f"{text:<40s} ; {LATENCY_BY_INT[int(ins.op.fu)]}c"
        lines.append(f"    {text}")
    return "\n".join(lines)

"""Register file layout and ABI conventions.

The machine has 32 general-purpose registers (GPRs) and 32 floating-point
registers (FPRs), matching the paper's base machine model (Table 1).  To let
the rest of the system track dataflow through a single namespace, registers
are identified by a flat index: GPRs are 0..31 and FPRs are 32..63.
"""

from __future__ import annotations

from enum import IntEnum

NUM_GPRS = 32
NUM_FPRS = 32
FPR_BASE = 32
TOTAL_REGS = NUM_GPRS + NUM_FPRS


class Reg(IntEnum):
    """GPR indices with MIPS o32-style ABI names."""

    ZERO = 0  # hardwired zero
    AT = 1  # assembler temporary
    V0 = 2  # return value
    V1 = 3
    A0 = 4  # argument registers
    A1 = 5
    A2 = 6
    A3 = 7
    T0 = 8  # caller-saved temporaries
    T1 = 9
    T2 = 10
    T3 = 11
    T4 = 12
    T5 = 13
    T6 = 14
    T7 = 15
    S0 = 16  # callee-saved
    S1 = 17
    S2 = 18
    S3 = 19
    S4 = 20
    S5 = 21
    S6 = 22
    S7 = 23
    T8 = 24
    T9 = 25
    K0 = 26  # reserved (unused by our toolchain)
    K1 = 27
    GP = 28  # global pointer
    SP = 29  # stack pointer
    FP = 30  # frame pointer
    RA = 31  # return address


#: GPRs a callee must preserve across a call.
CALLEE_SAVED = (
    Reg.S0, Reg.S1, Reg.S2, Reg.S3, Reg.S4, Reg.S5, Reg.S6, Reg.S7,
    Reg.FP, Reg.RA,
)

#: GPRs a caller must assume are clobbered by a call.
CALLER_SAVED = (
    Reg.V0, Reg.V1, Reg.A0, Reg.A1, Reg.A2, Reg.A3,
    Reg.T0, Reg.T1, Reg.T2, Reg.T3, Reg.T4, Reg.T5, Reg.T6, Reg.T7,
    Reg.T8, Reg.T9,
)

#: GPRs the register allocator may hand out to values.
ALLOCATABLE_GPRS = (
    Reg.T0, Reg.T1, Reg.T2, Reg.T3, Reg.T4, Reg.T5, Reg.T6, Reg.T7,
    Reg.T8, Reg.T9,
    Reg.S0, Reg.S1, Reg.S2, Reg.S3, Reg.S4, Reg.S5, Reg.S6, Reg.S7,
)

#: Argument-passing GPRs, in order.
ARG_GPRS = (Reg.A0, Reg.A1, Reg.A2, Reg.A3)

#: FPR flat indices the allocator may hand out (f4..f18).
ALLOCATABLE_FPRS = tuple(range(FPR_BASE + 4, FPR_BASE + 19))

#: Callee-saved FPR flat indices (f20..f30).
CALLEE_SAVED_FPRS = tuple(range(FPR_BASE + 20, FPR_BASE + 31))

#: FP return-value register (f0) as a flat index.
FV0 = FPR_BASE + 0

#: FP argument registers (f12, f13, f14, f15) as flat indices.
ARG_FPRS = (FPR_BASE + 12, FPR_BASE + 13, FPR_BASE + 14, FPR_BASE + 15)

_GPR_NAMES = {int(r): r.name.lower() for r in Reg}


def fpr(n: int) -> int:
    """Flat register index of FPR *n* (``fpr(0)`` is ``$f0``)."""
    if not 0 <= n < NUM_FPRS:
        raise ValueError(f"FPR number out of range: {n}")
    return FPR_BASE + n


def is_fpr(index: int) -> bool:
    """True when a flat register index names an FPR."""
    return FPR_BASE <= index < TOTAL_REGS


def reg_name(index: int) -> str:
    """Human-readable name of a flat register index."""
    if 0 <= index < NUM_GPRS:
        return f"${_GPR_NAMES[index]}"
    if is_fpr(index):
        return f"$f{index - FPR_BASE}"
    raise ValueError(f"register index out of range: {index}")


def parse_reg(name: str) -> int:
    """Parse ``$sp`` / ``$t0`` / ``$f12`` / ``$r5`` into a flat index."""
    text = name.lstrip("$").lower()
    if text.startswith("f") and text[1:].isdigit():
        return fpr(int(text[1:]))
    if text.startswith("r") and text[1:].isdigit():
        index = int(text[1:])
        if not 0 <= index < NUM_GPRS:
            raise ValueError(f"GPR number out of range: {name}")
        return index
    for r in Reg:
        if r.name.lower() == text:
            return int(r)
    raise ValueError(f"unknown register name: {name}")

"""The static instruction representation.

An :class:`Instruction` is what the compiler and assembler produce and what
the VM executes.  Operand meaning by format:

* ``RRR``: ``rd <- rs op rt``
* ``RRI``: ``rd <- rs op imm``
* ``RI``:  ``rd <- imm`` (LI/LUI/LA)
* ``RR``:  ``rd <- op rs``
* ``MEM`` loads:  ``rd <- mem[rs + imm]``
* ``MEM`` stores: ``mem[rs + imm] <- rt``
* ``BR2``/``BR1``/``J``: ``label`` is the target (resolved to an
  instruction index by the linker and stored in ``imm``)
* ``JR``/``JALR``: target address in ``rs``

Memory instructions carry a ``local`` annotation written by the compiler:
``True`` (provably a stack access), ``False`` (provably not), or ``None``
(ambiguous — e.g. a pointer that may alias a caller's frame).  This is the
compile-time classification bit of the paper's Section 2.2.3.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import IsaError
from repro.isa.opcodes import Fmt, FuClass, Opcode
from repro.isa.registers import Reg

_EMPTY: Tuple[int, ...] = ()


class Instruction:
    """One static machine instruction."""

    __slots__ = ("op", "rd", "rs", "rt", "imm", "label", "local")

    def __init__(
        self,
        op: Opcode,
        rd: Optional[int] = None,
        rs: Optional[int] = None,
        rt: Optional[int] = None,
        imm: Optional[int] = None,
        label: Optional[str] = None,
        local: Optional[bool] = None,
    ):
        self.op = op
        self.rd = rd
        self.rs = rs
        self.rt = rt
        self.imm = imm
        self.label = label
        self.local = local
        self._validate()

    def _validate(self) -> None:
        fmt = self.op.fmt
        need_rd = fmt in (Fmt.RRR, Fmt.RRI, Fmt.RI, Fmt.RR)
        if need_rd and self.rd is None:
            raise IsaError(f"{self.op.mnemonic}: missing destination register")
        if fmt in (Fmt.RRR, Fmt.RRI, Fmt.RR, Fmt.MEM, Fmt.BR2, Fmt.BR1,
                   Fmt.JR) and self.rs is None:
            raise IsaError(f"{self.op.mnemonic}: missing rs operand")
        if fmt in (Fmt.RRR, Fmt.BR2) and self.rt is None:
            raise IsaError(f"{self.op.mnemonic}: missing rt operand")
        if fmt is Fmt.MEM:
            if self.imm is None:
                raise IsaError(f"{self.op.mnemonic}: missing offset")
            if self.op.is_load and self.rd is None:
                raise IsaError(f"{self.op.mnemonic}: missing load destination")
            if self.op.is_store and self.rt is None:
                raise IsaError(f"{self.op.mnemonic}: missing store source")
        if fmt in (Fmt.BR2, Fmt.BR1, Fmt.J) and (
            self.label is None and self.imm is None
        ):
            raise IsaError(f"{self.op.mnemonic}: missing branch target")

    # -- dataflow ----------------------------------------------------------

    @property
    def reads(self) -> Tuple[int, ...]:
        """Flat indices of registers this instruction reads."""
        op, fmt = self.op, self.op.fmt
        if fmt is Fmt.RRR:
            return (self.rs, self.rt)
        if fmt in (Fmt.RRI, Fmt.RR):
            return (self.rs,)
        if fmt is Fmt.MEM:
            if op.is_store:
                return (self.rs, self.rt)
            return (self.rs,)
        if fmt is Fmt.BR2:
            return (self.rs, self.rt)
        if fmt in (Fmt.BR1, Fmt.JR):
            return (self.rs,)
        if fmt is Fmt.SYS:
            return (int(Reg.A0),)
        return _EMPTY

    @property
    def writes(self) -> Tuple[int, ...]:
        """Flat indices of registers this instruction writes."""
        op, fmt = self.op, self.op.fmt
        if fmt in (Fmt.RRR, Fmt.RRI, Fmt.RI, Fmt.RR):
            return (self.rd,)
        if fmt is Fmt.MEM and op.is_load:
            return (self.rd,)
        if op is Opcode.JAL or op is Opcode.JALR:
            return (int(Reg.RA),)
        if fmt is Fmt.SYS:
            return (int(Reg.V0),)
        return _EMPTY

    # -- convenience ---------------------------------------------------------

    @property
    def fu(self) -> FuClass:
        """Functional-unit class (shortcut for ``self.op.fu``)."""
        return self.op.fu

    @property
    def mem_size(self) -> int:
        """Access width in bytes for memory instructions."""
        if self.op in (Opcode.LB, Opcode.SB):
            return 1
        return 4

    def copy(self) -> "Instruction":
        """A detached copy of this instruction."""
        return Instruction(
            self.op, self.rd, self.rs, self.rt, self.imm, self.label, self.local
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return (
            self.op is other.op
            and self.rd == other.rd
            and self.rs == other.rs
            and self.rt == other.rt
            and self.imm == other.imm
            and self.label == other.label
            and self.local == other.local
        )

    def __hash__(self) -> int:
        return hash((self.op, self.rd, self.rs, self.rt, self.imm, self.label))

    def __repr__(self) -> str:
        from repro.isa.disasm import disassemble

        return f"<{disassemble(self)}>"

"""Loadable program images.

A :class:`Program` is the unit handed from the assembler/compiler to the VM:
a list of instructions (the text segment, addressed by index), a symbol
table, and initialised data items laid out in the global data segment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.errors import IsaError
from repro.isa.frames import FrameInfo
from repro.isa.instruction import Instruction
from repro.utils import WORD_BYTES, align_up

#: Base virtual address of the global data segment.
DATA_BASE = 0x10000000

#: Base virtual address of the heap (grown by the sbrk syscall).
HEAP_BASE = 0x20000000

#: Initial stack pointer (stack grows down from here).
STACK_BASE = 0x7FFFF000

#: Default stack region size used for dynamic locality classification.
STACK_LIMIT = 0x7F000000


class DataItem:
    """One initialised object in the data segment."""

    __slots__ = ("name", "values", "element_size")

    def __init__(self, name: str, values: Sequence[Union[int, float]],
                 element_size: int = WORD_BYTES):
        if element_size not in (1, WORD_BYTES):
            raise IsaError(f"unsupported element size: {element_size}")
        self.name = name
        self.values = list(values)
        self.element_size = element_size

    @property
    def size_bytes(self) -> int:
        """Total footprint of this item in bytes (word aligned)."""
        return align_up(len(self.values) * self.element_size, WORD_BYTES)

    def __repr__(self) -> str:
        return (
            f"DataItem({self.name!r}, n={len(self.values)}, "
            f"elem={self.element_size}B)"
        )


class Program:
    """A linked, loadable program image."""

    def __init__(
        self,
        instructions: Sequence[Instruction],
        labels: Optional[Dict[str, int]] = None,
        data: Optional[Sequence[DataItem]] = None,
        entry: str = "main",
        source_name: str = "<anonymous>",
        frames: Optional[Dict[str, FrameInfo]] = None,
    ):
        self.instructions: List[Instruction] = list(instructions)
        self.labels: Dict[str, int] = dict(labels or {})
        self.data: List[DataItem] = list(data or [])
        self.entry = entry
        self.source_name = source_name
        #: Per-function stack-frame metadata recorded by codegen (empty
        #: for hand-assembled programs, which carry no frame contracts).
        self.frames: Dict[str, FrameInfo] = dict(frames or {})
        self._data_addresses: Dict[str, int] = {}
        self._layout_data()

    def _layout_data(self) -> None:
        addr = DATA_BASE
        for item in self.data:
            if item.name in self._data_addresses:
                raise IsaError(f"duplicate data symbol: {item.name}")
            self._data_addresses[item.name] = addr
            addr += item.size_bytes

    @property
    def entry_index(self) -> int:
        """Instruction index of the entry point label."""
        if self.entry not in self.labels:
            raise IsaError(f"entry label {self.entry!r} not defined")
        return self.labels[self.entry]

    def data_address(self, name: str) -> int:
        """Virtual address of a data symbol."""
        try:
            return self._data_addresses[name]
        except KeyError:
            raise IsaError(f"unknown data symbol: {name}") from None

    def has_data(self, name: str) -> bool:
        """True when *name* is a data symbol of this program."""
        return name in self._data_addresses

    def resolve(self) -> None:
        """Resolve every symbolic operand into a concrete immediate.

        Branch/jump labels become instruction indices; ``la`` labels become
        data addresses.  Idempotent.
        """
        for ins in self.instructions:
            if ins.label is None:
                continue
            if ins.label in self.labels:
                ins.imm = self.labels[ins.label]
            elif ins.label in self._data_addresses:
                ins.imm = self._data_addresses[ins.label]
            else:
                raise IsaError(
                    f"unresolved symbol {ins.label!r} in {self.source_name}"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return (
            f"Program({self.source_name!r}, {len(self.instructions)} insts, "
            f"{len(self.data)} data items)"
        )

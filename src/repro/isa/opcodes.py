"""Opcode definitions, functional-unit classes, and execution latencies.

Latencies follow the MIPS R10000 as required by the paper's base machine
model (Table 1): single-cycle integer ALU, 5-cycle integer multiply,
34-cycle integer divide, 2-cycle FP add/multiply, 12-cycle FP divide.
Load latency is determined by the memory hierarchy, not by this table.
"""

from __future__ import annotations

from enum import Enum, IntEnum, auto


class FuClass(IntEnum):
    """Functional-unit class an opcode executes on."""

    NONE = 0  # nop / directives
    IALU = 1
    IMULT = 2
    IDIV = 3
    FADD = 4  # FP add/sub/compare/convert
    FMUL = 5
    FDIV = 6
    LOAD = 7
    STORE = 8
    BRANCH = 9  # conditional branches and jumps
    SYSCALL = 10


class Fmt(Enum):
    """Operand formats, used by the assembler and disassembler."""

    NONE = auto()  # nop
    RRR = auto()  # op rd, rs, rt
    RRI = auto()  # op rd, rs, imm
    RI = auto()  # op rd, imm          (lui/li)
    RR = auto()  # op rd, rs           (moves, converts)
    MEM = auto()  # op rd, imm(rs)      (loads) / op rt, imm(rs) (stores)
    BR2 = auto()  # op rs, rt, label
    BR1 = auto()  # op rs, label
    J = auto()  # op label
    JR = auto()  # op rs
    SYS = auto()  # syscall imm


class Opcode(Enum):
    """Every opcode of the ISA: (mnemonic, functional-unit class, format)."""

    # --- integer ALU ---------------------------------------------------
    ADD = ("add", FuClass.IALU, Fmt.RRR)
    ADDI = ("addi", FuClass.IALU, Fmt.RRI)
    SUB = ("sub", FuClass.IALU, Fmt.RRR)
    AND = ("and", FuClass.IALU, Fmt.RRR)
    ANDI = ("andi", FuClass.IALU, Fmt.RRI)
    OR = ("or", FuClass.IALU, Fmt.RRR)
    ORI = ("ori", FuClass.IALU, Fmt.RRI)
    XOR = ("xor", FuClass.IALU, Fmt.RRR)
    XORI = ("xori", FuClass.IALU, Fmt.RRI)
    NOR = ("nor", FuClass.IALU, Fmt.RRR)
    SLL = ("sll", FuClass.IALU, Fmt.RRI)
    SRL = ("srl", FuClass.IALU, Fmt.RRI)
    SRA = ("sra", FuClass.IALU, Fmt.RRI)
    SLLV = ("sllv", FuClass.IALU, Fmt.RRR)
    SRLV = ("srlv", FuClass.IALU, Fmt.RRR)
    SRAV = ("srav", FuClass.IALU, Fmt.RRR)
    SLT = ("slt", FuClass.IALU, Fmt.RRR)
    SLTI = ("slti", FuClass.IALU, Fmt.RRI)
    SLTU = ("sltu", FuClass.IALU, Fmt.RRR)
    LUI = ("lui", FuClass.IALU, Fmt.RI)
    LI = ("li", FuClass.IALU, Fmt.RI)
    LA = ("la", FuClass.IALU, Fmt.RI)  # load address (label imm)
    MOVE = ("move", FuClass.IALU, Fmt.RR)

    # --- integer multiply / divide -------------------------------------
    MUL = ("mul", FuClass.IMULT, Fmt.RRR)
    DIV = ("div", FuClass.IDIV, Fmt.RRR)
    REM = ("rem", FuClass.IDIV, Fmt.RRR)

    # --- memory ---------------------------------------------------------
    LW = ("lw", FuClass.LOAD, Fmt.MEM)
    LB = ("lb", FuClass.LOAD, Fmt.MEM)
    SW = ("sw", FuClass.STORE, Fmt.MEM)
    SB = ("sb", FuClass.STORE, Fmt.MEM)
    LS = ("l.s", FuClass.LOAD, Fmt.MEM)  # load single FP
    SS = ("s.s", FuClass.STORE, Fmt.MEM)  # store single FP

    # --- floating point --------------------------------------------------
    FADD = ("add.s", FuClass.FADD, Fmt.RRR)
    FSUB = ("sub.s", FuClass.FADD, Fmt.RRR)
    FMUL = ("mul.s", FuClass.FMUL, Fmt.RRR)
    FDIV = ("div.s", FuClass.FDIV, Fmt.RRR)
    FNEG = ("neg.s", FuClass.FADD, Fmt.RR)
    FMOV = ("mov.s", FuClass.FADD, Fmt.RR)
    CVTSW = ("cvt.s.w", FuClass.FADD, Fmt.RR)  # int (GPR) -> float (FPR)
    CVTWS = ("cvt.w.s", FuClass.FADD, Fmt.RR)  # float (FPR) -> int (GPR)
    CLTS = ("c.lt.s", FuClass.FADD, Fmt.RRR)  # rd (GPR) = fs < ft
    CLES = ("c.le.s", FuClass.FADD, Fmt.RRR)
    CEQS = ("c.eq.s", FuClass.FADD, Fmt.RRR)

    # --- control flow -----------------------------------------------------
    BEQ = ("beq", FuClass.BRANCH, Fmt.BR2)
    BNE = ("bne", FuClass.BRANCH, Fmt.BR2)
    BLEZ = ("blez", FuClass.BRANCH, Fmt.BR1)
    BGTZ = ("bgtz", FuClass.BRANCH, Fmt.BR1)
    BLTZ = ("bltz", FuClass.BRANCH, Fmt.BR1)
    BGEZ = ("bgez", FuClass.BRANCH, Fmt.BR1)
    J = ("j", FuClass.BRANCH, Fmt.J)
    JAL = ("jal", FuClass.BRANCH, Fmt.J)
    JR = ("jr", FuClass.BRANCH, Fmt.JR)
    JALR = ("jalr", FuClass.BRANCH, Fmt.JR)

    # --- system -----------------------------------------------------------
    SYSCALL = ("syscall", FuClass.SYSCALL, Fmt.SYS)
    NOP = ("nop", FuClass.NONE, Fmt.NONE)

    def __init__(self, mnemonic: str, fu: FuClass, fmt: Fmt):
        self.mnemonic = mnemonic
        self.fu = fu
        self.fmt = fmt

    @property
    def is_load(self) -> bool:
        """True for memory loads."""
        return self.fu is FuClass.LOAD

    @property
    def is_store(self) -> bool:
        """True for memory stores."""
        return self.fu is FuClass.STORE

    @property
    def is_mem(self) -> bool:
        """True for loads and stores."""
        return self.fu is FuClass.LOAD or self.fu is FuClass.STORE

    @property
    def is_branch(self) -> bool:
        """True for any control-transfer instruction."""
        return self.fu is FuClass.BRANCH


#: Execution latency (cycles) per functional-unit class; loads/stores defer
#: to the memory hierarchy.  Values follow the MIPS R10000.
LATENCY = {
    FuClass.NONE: 1,
    FuClass.IALU: 1,
    FuClass.IMULT: 5,
    FuClass.IDIV: 34,
    FuClass.FADD: 2,
    FuClass.FMUL: 2,
    FuClass.FDIV: 12,
    FuClass.LOAD: 1,  # address generation; cache adds its hit/miss time
    FuClass.STORE: 1,  # address generation; data written at commit
    FuClass.BRANCH: 1,
    FuClass.SYSCALL: 1,
}

#: ``LATENCY`` as a plain list indexed by ``int(FuClass)``.  Hot paths (the
#: processor's issue stage, the FU pools, the disassembler's annotations)
#: index this instead of constructing a ``FuClass`` per lookup — enum
#: construction is ~10x the cost of a list index and the timing simulator
#: performs one per issued instruction.
LATENCY_BY_INT = [LATENCY[fu] for fu in sorted(FuClass, key=int)]

#: Mnemonic -> Opcode lookup used by the assembler.
BY_MNEMONIC = {op.mnemonic: op for op in Opcode}


class Syscall(IntEnum):
    """Syscall numbers understood by the VM (immediate of SYSCALL)."""

    EXIT = 0
    PRINT_INT = 1
    PRINT_CHAR = 2
    SBRK = 3
    PRINT_FLOAT = 4

"""A 32-bit MIPS-like RISC instruction set.

This is the machine language shared by the mini-C compiler (`repro.lang`),
the assembler (`repro.asm`), the functional VM (`repro.vm`) and the timing
simulator (`repro.core` / `repro.pipeline`).
"""

from repro.isa.registers import (
    FPR_BASE,
    NUM_FPRS,
    NUM_GPRS,
    Reg,
    fpr,
    reg_name,
)
from repro.isa.opcodes import FuClass, LATENCY, Opcode
from repro.isa.instruction import Instruction
from repro.isa.program import DataItem, Program
from repro.isa.disasm import disassemble

__all__ = [
    "FPR_BASE",
    "NUM_FPRS",
    "NUM_GPRS",
    "Reg",
    "fpr",
    "reg_name",
    "FuClass",
    "LATENCY",
    "Opcode",
    "Instruction",
    "DataItem",
    "Program",
    "disassemble",
]

"""Machine-readable stack-frame metadata.

Codegen records here exactly what it decided while laying out a frame —
frame size, the slot map, the callee-save area, and the code extent of the
function — so downstream tools (the :mod:`repro.analyze` verifier, future
debuggers/profilers) never have to re-derive the layout from instruction
patterns.  A :class:`FrameInfo` travels inside the :class:`Program` image.

All offsets are byte offsets from the *adjusted* stack pointer (i.e. the
value of ``$sp`` after the prologue's single downward adjustment).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple


class SlotInfo:
    """One stack-frame object: a named local, an array, or a spill slot."""

    __slots__ = ("name", "offset", "words", "is_spill")

    def __init__(self, name: str, offset: int, words: int,
                 is_spill: bool = False):
        self.name = name
        self.offset = offset
        self.words = words
        self.is_spill = is_spill

    @property
    def size_bytes(self) -> int:
        """Byte footprint of the slot."""
        return 4 * self.words

    @property
    def end(self) -> int:
        """One past the last byte of the slot."""
        return self.offset + self.size_bytes

    def describe(self) -> Dict[str, Any]:
        """JSON-serialisable view."""
        return {"name": self.name, "offset": self.offset,
                "words": self.words, "is_spill": self.is_spill}

    def __repr__(self) -> str:
        kind = "spill" if self.is_spill else "local"
        return (f"SlotInfo({self.name!r}, @{self.offset}, "
                f"{self.words}w, {kind})")


class FrameInfo:
    """Everything codegen knows about one function's activation record.

    Attributes:
        name: function name (also its entry label).
        code_start: absolute instruction index of the first instruction.
        code_end: one past the absolute index of the last instruction.
        frame_size: bytes subtracted from ``$sp`` by the prologue (0 for
            frameless leaves).
        slots: named locals, arrays, and spill slots with final offsets.
        save_offsets: flat register index -> byte offset of its save slot
            (callee-saved registers the function actually uses, plus
            ``$ra`` when the function makes calls).
        saves_ra: whether ``$ra`` is part of the save area.
        outgoing_words: words reserved at offset 0 for stack-passed
            arguments of calls this function makes.
        incoming_words: stack-passed arguments this function itself
            receives (they live in the caller's outgoing area, addressed
            at ``frame_size + 4*k``).
    """

    __slots__ = ("name", "code_start", "code_end", "frame_size", "slots",
                 "save_offsets", "saves_ra", "outgoing_words",
                 "incoming_words")

    def __init__(self, name: str, frame_size: int,
                 slots: List[SlotInfo],
                 save_offsets: Dict[int, int],
                 saves_ra: bool,
                 outgoing_words: int,
                 incoming_words: int,
                 code_start: int = -1,
                 code_end: int = -1):
        self.name = name
        self.frame_size = frame_size
        self.slots = slots
        self.save_offsets = save_offsets
        self.saves_ra = saves_ra
        self.outgoing_words = outgoing_words
        self.incoming_words = incoming_words
        self.code_start = code_start
        self.code_end = code_end

    @property
    def outgoing_bytes(self) -> int:
        """Size of the outgoing-argument area at the frame base."""
        return 4 * self.outgoing_words

    def regions(self) -> List[Tuple[str, int, int]]:
        """Every carved-out byte range as ``(kind, start, end)`` tuples.

        Kinds: ``outgoing``, ``slot:<name>``, ``save:<reg>``.  Used by the
        verifier's overlap and bounds checks.
        """
        out: List[Tuple[str, int, int]] = []
        if self.outgoing_words:
            out.append(("outgoing", 0, self.outgoing_bytes))
        for slot in self.slots:
            out.append((f"slot:{slot.name}", slot.offset, slot.end))
        for reg, offset in sorted(self.save_offsets.items()):
            out.append((f"save:{reg}", offset, offset + 4))
        return out

    def describe(self) -> Dict[str, Any]:
        """JSON-serialisable view (stable key order for reports)."""
        return {
            "name": self.name,
            "code_start": self.code_start,
            "code_end": self.code_end,
            "frame_size": self.frame_size,
            "slots": [slot.describe() for slot in self.slots],
            "save_offsets": {str(reg): off
                             for reg, off in sorted(self.save_offsets.items())},
            "saves_ra": self.saves_ra,
            "outgoing_words": self.outgoing_words,
            "incoming_words": self.incoming_words,
        }

    def __repr__(self) -> str:
        return (f"FrameInfo({self.name!r}, {self.frame_size}B, "
                f"{len(self.slots)} slots, "
                f"code [{self.code_start}:{self.code_end}))")

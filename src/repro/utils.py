"""Small shared helpers used across the repro package."""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Iterator, List, Sequence, TypeVar

T = TypeVar("T")

WORD_BYTES = 4
"""Size of a machine word in bytes (32-bit ISA)."""


def is_power_of_two(value: int) -> bool:
    """Return True when *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Return log2 of a power-of-two *value*, raising ValueError otherwise."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def align_down(value: int, alignment: int) -> int:
    """Round *value* down to a multiple of *alignment* (a power of two)."""
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to a multiple of *alignment* (a power of two)."""
    return (value + alignment - 1) & ~(alignment - 1)


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low *bits* of *value* as a two's-complement integer."""
    mask = (1 << bits) - 1
    value &= mask
    sign = 1 << (bits - 1)
    return (value ^ sign) - sign


def to_signed32(value: int) -> int:
    """Wrap *value* into the signed 32-bit range."""
    return sign_extend(value, 32)


def to_unsigned32(value: int) -> int:
    """Wrap *value* into the unsigned 32-bit range."""
    return value & 0xFFFFFFFF


def chunked(items: Sequence[T], size: int) -> Iterator[Sequence[T]]:
    """Yield consecutive slices of *items* of at most *size* elements."""
    if size <= 0:
        raise ValueError("chunk size must be positive")
    for start in range(0, len(items), size):
        yield items[start : start + size]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; returns 0.0 for an empty input."""
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= v
    return product ** (1.0 / len(values))


def stable_hash(*parts: object) -> int:
    """A 31-bit hash of *parts* that is stable across interpreter runs.

    Python's builtin ``hash`` salts strings per process (PYTHONHASHSEED),
    so seeding an RNG from it makes "deterministic" traces differ from run
    to run — and poisons any persistent result cache.  This helper hashes
    the ``repr`` of the parts through SHA-256 instead.
    """
    text = "\x1f".join(repr(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[16:20], "little") & 0x7FFFFFFF


def make_rng(seed: int) -> random.Random:
    """Create a deterministic RNG for workload generation.

    All stochastic behaviour in the package flows through RNGs created here so
    that experiments are reproducible run to run.
    """
    return random.Random(seed)


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one of *items* with the given relative *weights*."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    return rng.choices(items, weights=weights, k=1)[0]


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp *value* into the closed interval [lo, hi]."""
    return max(lo, min(hi, value))


def fmt_ratio(numer: float, denom: float, default: float = 0.0) -> float:
    """Safe division used for rates; returns *default* when denom == 0."""
    return numer / denom if denom else default


def moving_sum(values: Sequence[float], window: int) -> List[float]:
    """Sliding-window sums, used by a few analysis helpers."""
    if window <= 0:
        raise ValueError("window must be positive")
    out: List[float] = []
    acc = 0.0
    for i, v in enumerate(values):
        acc += v
        if i >= window:
            acc -= values[i - window]
        if i >= window - 1:
            out.append(acc)
    return out

"""Sparse word-addressed data memory for the functional VM.

Words hold either signed 32-bit integers or Python floats (the VM does not
reinterpret float bit patterns, so storing floats natively is both simpler
and faster).  Byte accesses are supported on integer-valued words only.
"""

from __future__ import annotations

from typing import Dict, Union

from repro.errors import VmError
from repro.utils import sign_extend, to_signed32

Word = Union[int, float]


class SparseMemory:
    """A dictionary-backed flat memory, zero-initialised."""

    __slots__ = ("_words",)

    def __init__(self) -> None:
        self._words: Dict[int, Word] = {}

    def load_word(self, addr: int) -> Word:
        """Read the aligned word containing *addr*."""
        if addr < 0:
            raise VmError(f"negative address {addr:#x}")
        if addr & 3:
            raise VmError(f"unaligned word load at {addr:#x}")
        return self._words.get(addr, 0)

    def store_word(self, addr: int, value: Word) -> None:
        """Write a word; integers are wrapped to signed 32-bit."""
        if addr < 0:
            raise VmError(f"negative address {addr:#x}")
        if addr & 3:
            raise VmError(f"unaligned word store at {addr:#x}")
        if isinstance(value, float):
            self._words[addr] = value
        else:
            self._words[addr] = to_signed32(value)

    def load_byte(self, addr: int) -> int:
        """Read one byte, sign-extended to an int."""
        word = self._words.get(addr & ~3, 0)
        if isinstance(word, float):
            raise VmError(f"byte load from float-valued word at {addr:#x}")
        shift = (addr & 3) * 8
        return sign_extend((word >> shift) & 0xFF, 8)

    def store_byte(self, addr: int, value: int) -> None:
        """Write one byte into its containing word."""
        base = addr & ~3
        word = self._words.get(base, 0)
        if isinstance(word, float):
            raise VmError(f"byte store into float-valued word at {addr:#x}")
        shift = (addr & 3) * 8
        mask = 0xFF << shift
        raw = (word & 0xFFFFFFFF) & ~mask | ((value & 0xFF) << shift)
        self._words[base] = to_signed32(raw)

    def footprint_words(self) -> int:
        """Number of distinct words ever written."""
        return len(self._words)

    def clear(self) -> None:
        """Reset every word to zero."""
        self._words.clear()

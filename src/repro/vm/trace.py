"""Dynamic instruction records and trace containers.

A :class:`DynInst` is one *committed* dynamic instruction: the interface
between the functional front end (VM or synthetic workload generator) and
the timing simulator.  Because the paper's machine model uses a perfect
I-cache and a perfect (oracle) branch predictor, timing simulation over the
committed stream is exactly equivalent to execution-driven simulation —
there is never any wrong-path work to model.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.isa.opcodes import FuClass
from repro.stats.histogram import Histogram

#: Sentinel register index meaning "no destination".
NO_REG = -1

# ``fu`` is stored as a plain int; comparing against these avoids an
# enum ``__eq__`` per query on the trace-construction path (observe()
# runs once per dynamic instruction).
_LOAD = int(FuClass.LOAD)
_STORE = int(FuClass.STORE)


class DynInst:
    """One dynamic (committed) instruction.

    Attributes:
        fu: functional-unit class (``FuClass`` value, stored as int).
        dst: flat destination register index, or ``NO_REG``.
        srcs: flat source register indices.
        addr: effective byte address (memory ops only, else 0).
        size: access width in bytes (memory ops only, else 0).
        local_hint: compile-time classification presented to the hardware —
            True (local), False (non-local) or None (ambiguous; the
            access-region predictor decides at dispatch).
        is_local: ground truth — whether the address lies in the stack
            region.  Used for predictor verification and statistics.
        sp_based: the access is addressed off ``$sp``/``$fp`` with a static
            offset, so the LVAQ may match it by (frame, offset) *before*
            effective-address computation (fast data forwarding).
        frame_id: unique id of the activation record being accessed.
        offset: static offset from the frame base (fast-forwarding key).
        pc: static instruction index (predictor table index).
    """

    __slots__ = (
        "fu", "dst", "srcs", "addr", "size", "local_hint", "is_local",
        "sp_based", "frame_id", "offset", "pc",
    )

    def __init__(
        self,
        fu: int,
        dst: int = NO_REG,
        srcs: Tuple[int, ...] = (),
        addr: int = 0,
        size: int = 0,
        local_hint: Optional[bool] = None,
        is_local: bool = False,
        sp_based: bool = False,
        frame_id: int = 0,
        offset: int = 0,
        pc: int = 0,
    ):
        self.fu = fu
        self.dst = dst
        self.srcs = srcs
        self.addr = addr
        self.size = size
        self.local_hint = local_hint
        self.is_local = is_local
        self.sp_based = sp_based
        self.frame_id = frame_id
        self.offset = offset
        self.pc = pc

    @property
    def is_load(self) -> bool:
        """True for loads."""
        return self.fu == _LOAD

    @property
    def is_store(self) -> bool:
        """True for stores."""
        return self.fu == _STORE

    @property
    def is_mem(self) -> bool:
        """True for loads and stores."""
        return self.fu == _LOAD or self.fu == _STORE

    def __repr__(self) -> str:
        kind = FuClass(self.fu).name
        if self.is_mem:
            return (
                f"DynInst({kind}, addr={self.addr:#x}, local={self.is_local}, "
                f"hint={self.local_hint}, frame={self.frame_id})"
            )
        return f"DynInst({kind}, dst={self.dst}, srcs={self.srcs})"


class TraceStats:
    """Aggregate statistics over a dynamic instruction stream."""

    def __init__(self) -> None:
        self.instructions = 0
        self.loads = 0
        self.stores = 0
        self.local_loads = 0
        self.local_stores = 0
        self.sp_based_refs = 0
        self.ambiguous_refs = 0
        self.calls = 0
        self.frame_sizes = Histogram()
        self.max_call_depth = 0

    def observe(self, inst: DynInst) -> None:
        """Fold one dynamic instruction into the statistics."""
        self.instructions += 1
        fu = inst.fu
        if fu == _LOAD:
            self.loads += 1
            if inst.is_local:
                self.local_loads += 1
        elif fu == _STORE:
            self.stores += 1
            if inst.is_local:
                self.local_stores += 1
        else:
            return
        if inst.sp_based:
            self.sp_based_refs += 1
        if inst.local_hint is None:
            self.ambiguous_refs += 1

    @property
    def mem_refs(self) -> int:
        """Total loads + stores."""
        return self.loads + self.stores

    @property
    def local_refs(self) -> int:
        """Loads + stores whose address is in the stack region."""
        return self.local_loads + self.local_stores

    @property
    def local_fraction(self) -> float:
        """Fraction of all memory references that are local."""
        return self.local_refs / self.mem_refs if self.mem_refs else 0.0

    @property
    def load_fraction(self) -> float:
        """Loads as a fraction of all instructions."""
        return self.loads / self.instructions if self.instructions else 0.0

    @property
    def store_fraction(self) -> float:
        """Stores as a fraction of all instructions."""
        return self.stores / self.instructions if self.instructions else 0.0


class Trace:
    """A dynamic instruction stream plus its aggregate statistics."""

    def __init__(self, name: str = "<trace>"):
        self.name = name
        self.insts: List[DynInst] = []
        self.stats = TraceStats()

    def append(self, inst: DynInst) -> None:
        """Append one dynamic instruction, updating statistics."""
        self.insts.append(inst)
        self.stats.observe(inst)

    def extend(self, insts: Iterable[DynInst]) -> None:
        """Append many dynamic instructions."""
        for inst in insts:
            self.append(inst)

    def __len__(self) -> int:
        return len(self.insts)

    def __iter__(self):
        return iter(self.insts)

    def save(self, path: str) -> str:
        """Serialize this trace to *path* in the ``repro.trace`` format.

        Convenience hook for capture callers holding a VM's trace;
        the format lives in :mod:`repro.trace.format` (imported lazily —
        the VM layer has no hard dependency on the trace subsystem).
        """
        from repro.trace.format import write_trace

        return write_trace(self, path)

    @staticmethod
    def load(path: str) -> "Trace":
        """Deserialize a trace previously written with :meth:`save`."""
        from repro.trace.format import read_trace

        return read_trace(path)

    def __repr__(self) -> str:
        return f"Trace({self.name!r}, {len(self.insts)} insts)"

"""Functional virtual machine: executes programs and emits dynamic traces."""

from repro.vm.memory import SparseMemory
from repro.vm.trace import DynInst, Trace, TraceStats
from repro.vm.machine import Machine, run_program

__all__ = [
    "SparseMemory",
    "DynInst",
    "Trace",
    "TraceStats",
    "Machine",
    "run_program",
]

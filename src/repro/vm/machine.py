"""The functional interpreter.

Executes a :class:`~repro.isa.program.Program` instruction by instruction,
optionally emitting a dynamic :class:`~repro.vm.trace.Trace` for the timing
simulator.  The interpreter also maintains the activation-record bookkeeping
the paper's measurements need: per-call frame sizes (Figure 3), call depth,
frame ids and ``$sp``-relative offsets (fast data forwarding keys).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import VmError, VmExit
from repro.isa.instruction import Instruction
from repro.isa.opcodes import FuClass, Opcode, Syscall
from repro.isa.program import (
    HEAP_BASE,
    Program,
    STACK_BASE,
    STACK_LIMIT,
)
from repro.isa.registers import FPR_BASE, Reg, TOTAL_REGS
from repro.utils import to_signed32
from repro.vm.memory import SparseMemory
from repro.vm.trace import DynInst, NO_REG, Trace

_SP = int(Reg.SP)
_FP = int(Reg.FP)
_RA = int(Reg.RA)
_V0 = int(Reg.V0)
_A0 = int(Reg.A0)
_F12 = FPR_BASE + 12


class _Frame:
    """Bookkeeping for one activation record."""

    __slots__ = ("frame_id", "sp_entry", "min_sp", "return_index")

    def __init__(self, frame_id: int, sp_entry: int, return_index: int):
        self.frame_id = frame_id
        self.sp_entry = sp_entry
        self.min_sp = sp_entry
        self.return_index = return_index


class Machine:
    """A functional VM instance bound to one program."""

    def __init__(self, program: Program, trace: bool = True):
        program.resolve()
        self.program = program
        self.memory = SparseMemory()
        self.regs: List[float] = [0] * TOTAL_REGS
        self.pc = program.entry_index
        self.brk = HEAP_BASE
        self.output: List[str] = []
        self.exit_code: Optional[int] = None
        self.trace: Optional[Trace] = (
            Trace(program.source_name) if trace else None
        )
        self.instructions_executed = 0
        self._frames: List[_Frame] = [_Frame(0, STACK_BASE, -1)]
        self._next_frame_id = 1
        self.regs[_SP] = STACK_BASE
        self.regs[_FP] = STACK_BASE
        self._init_data()

    def _init_data(self) -> None:
        for item in self.program.data:
            addr = self.program.data_address(item.name)
            if item.element_size == 1:
                for i, value in enumerate(item.values):
                    self.memory.store_byte(addr + i, int(value))
            else:
                for i, value in enumerate(item.values):
                    self.memory.store_word(addr + i * 4, value)

    # -- register helpers ---------------------------------------------------

    def _read(self, index: int):
        return self.regs[index]

    def _write(self, index: int, value) -> None:
        if index == 0:  # $zero is hardwired
            return
        if index < FPR_BASE and isinstance(value, float):
            value = to_signed32(int(value))
        elif index < FPR_BASE:
            value = to_signed32(value)
        self.regs[index] = value
        if index == _SP:
            frame = self._frames[-1]
            if value < frame.min_sp:
                frame.min_sp = value

    # -- frame bookkeeping ----------------------------------------------------

    @property
    def current_frame_id(self) -> int:
        """Frame id of the innermost activation record."""
        return self._frames[-1].frame_id

    @property
    def call_depth(self) -> int:
        """Current call nesting depth (main == 1)."""
        return len(self._frames)

    def _enter_frame(self, return_index: int) -> None:
        frame = _Frame(self._next_frame_id, int(self.regs[_SP]), return_index)
        self._next_frame_id += 1
        self._frames.append(frame)
        if self.trace is not None:
            stats = self.trace.stats
            stats.calls += 1
            if len(self._frames) > stats.max_call_depth:
                stats.max_call_depth = len(self._frames)

    def _leave_frame(self, target_index: int) -> None:
        if len(self._frames) > 1 and self._frames[-1].return_index == target_index:
            frame = self._frames.pop()
            if self.trace is not None:
                words = max(0, (frame.sp_entry - frame.min_sp) // 4)
                self.trace.stats.frame_sizes.add(words)

    # -- main loop -----------------------------------------------------------

    def run(self, max_instructions: int = 50_000_000) -> int:
        """Run until exit or the instruction budget; returns exit code.

        When the budget is hit before the guest exits, the exit code is -1
        and the (partial) trace remains valid — this is how workloads are
        scaled down.
        """
        code = len(self.program.instructions)
        try:
            while self.instructions_executed < max_instructions:
                if not 0 <= self.pc < code:
                    raise VmError(f"pc out of range: {self.pc}")
                self._step(self.program.instructions[self.pc])
        except VmExit as exit_:
            self.exit_code = exit_.code
            return exit_.code
        self.exit_code = -1
        return -1

    def _step(self, ins: Instruction) -> None:
        op = ins.op
        pc = self.pc
        next_pc = pc + 1
        regs = self.regs
        fu = op.fu

        if fu == FuClass.IALU:
            self._exec_ialu(ins)
        elif fu == FuClass.LOAD or fu == FuClass.STORE:
            self._exec_mem(ins, pc)
            self.instructions_executed += 1
            self.pc = next_pc
            return
        elif fu == FuClass.BRANCH:
            next_pc = self._exec_branch(ins, pc, next_pc)
        elif fu == FuClass.IMULT:
            a, b = regs[ins.rs], regs[ins.rt]
            self._write(ins.rd, to_signed32(int(a) * int(b)))
        elif fu == FuClass.IDIV:
            self._exec_div(ins)
        elif fu in (FuClass.FADD, FuClass.FMUL, FuClass.FDIV):
            self._exec_fp(ins)
        elif fu == FuClass.SYSCALL:
            self._exec_syscall(ins)
        elif fu == FuClass.NONE:
            pass
        else:
            raise VmError(f"unhandled opcode {op.mnemonic}")

        if self.trace is not None:
            self.trace.append(
                DynInst(int(fu), ins.writes[0] if ins.writes else NO_REG,
                        ins.reads, pc=pc)
            )
        self.instructions_executed += 1
        self.pc = next_pc

    # -- execution helpers ---------------------------------------------------

    def _exec_ialu(self, ins: Instruction) -> None:
        op = ins.op
        regs = self.regs
        if op is Opcode.ADD:
            value = int(regs[ins.rs]) + int(regs[ins.rt])
        elif op is Opcode.ADDI:
            value = int(regs[ins.rs]) + ins.imm
        elif op is Opcode.SUB:
            value = int(regs[ins.rs]) - int(regs[ins.rt])
        elif op is Opcode.AND:
            value = int(regs[ins.rs]) & int(regs[ins.rt])
        elif op is Opcode.ANDI:
            value = int(regs[ins.rs]) & ins.imm
        elif op is Opcode.OR:
            value = int(regs[ins.rs]) | int(regs[ins.rt])
        elif op is Opcode.ORI:
            value = int(regs[ins.rs]) | ins.imm
        elif op is Opcode.XOR:
            value = int(regs[ins.rs]) ^ int(regs[ins.rt])
        elif op is Opcode.XORI:
            value = int(regs[ins.rs]) ^ ins.imm
        elif op is Opcode.NOR:
            value = ~(int(regs[ins.rs]) | int(regs[ins.rt]))
        elif op is Opcode.SLL:
            value = int(regs[ins.rs]) << (ins.imm & 31)
        elif op is Opcode.SRL:
            value = (int(regs[ins.rs]) & 0xFFFFFFFF) >> (ins.imm & 31)
        elif op is Opcode.SRA:
            value = int(regs[ins.rs]) >> (ins.imm & 31)
        elif op is Opcode.SLLV:
            value = int(regs[ins.rs]) << (int(regs[ins.rt]) & 31)
        elif op is Opcode.SRLV:
            value = (int(regs[ins.rs]) & 0xFFFFFFFF) >> (int(regs[ins.rt]) & 31)
        elif op is Opcode.SRAV:
            value = int(regs[ins.rs]) >> (int(regs[ins.rt]) & 31)
        elif op is Opcode.SLT:
            value = 1 if int(regs[ins.rs]) < int(regs[ins.rt]) else 0
        elif op is Opcode.SLTI:
            value = 1 if int(regs[ins.rs]) < ins.imm else 0
        elif op is Opcode.SLTU:
            value = 1 if (int(regs[ins.rs]) & 0xFFFFFFFF) < (
                int(regs[ins.rt]) & 0xFFFFFFFF) else 0
        elif op is Opcode.LUI:
            value = ins.imm << 16
        elif op is Opcode.LI or op is Opcode.LA:
            value = ins.imm
        elif op is Opcode.MOVE:
            value = regs[ins.rs]
        else:
            raise VmError(f"unhandled IALU opcode {op.mnemonic}")
        self._write(ins.rd, value)

    def _exec_div(self, ins: Instruction) -> None:
        a = int(self.regs[ins.rs])
        b = int(self.regs[ins.rt])
        if b == 0:
            raise VmError(f"division by zero at pc={self.pc}")
        quotient = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            quotient = -quotient
        if ins.op is Opcode.DIV:
            self._write(ins.rd, quotient)
        else:  # REM
            self._write(ins.rd, a - quotient * b)

    def _exec_fp(self, ins: Instruction) -> None:
        op = ins.op
        regs = self.regs
        if op is Opcode.FADD:
            value = float(regs[ins.rs]) + float(regs[ins.rt])
        elif op is Opcode.FSUB:
            value = float(regs[ins.rs]) - float(regs[ins.rt])
        elif op is Opcode.FMUL:
            value = float(regs[ins.rs]) * float(regs[ins.rt])
        elif op is Opcode.FDIV:
            b = float(regs[ins.rt])
            if b == 0.0:
                raise VmError(f"FP division by zero at pc={self.pc}")
            value = float(regs[ins.rs]) / b
        elif op is Opcode.FNEG:
            value = -float(regs[ins.rs])
        elif op is Opcode.FMOV:
            value = float(regs[ins.rs])
        elif op is Opcode.CVTSW:
            value = float(int(regs[ins.rs]))
        elif op is Opcode.CVTWS:
            value = int(float(regs[ins.rs]))
        elif op is Opcode.CLTS:
            value = 1 if float(regs[ins.rs]) < float(regs[ins.rt]) else 0
        elif op is Opcode.CLES:
            value = 1 if float(regs[ins.rs]) <= float(regs[ins.rt]) else 0
        elif op is Opcode.CEQS:
            value = 1 if float(regs[ins.rs]) == float(regs[ins.rt]) else 0
        else:
            raise VmError(f"unhandled FP opcode {op.mnemonic}")
        self._write(ins.rd, value)

    def _exec_branch(self, ins: Instruction, pc: int, next_pc: int) -> int:
        op = ins.op
        regs = self.regs
        if op is Opcode.BEQ:
            taken = regs[ins.rs] == regs[ins.rt]
        elif op is Opcode.BNE:
            taken = regs[ins.rs] != regs[ins.rt]
        elif op is Opcode.BLEZ:
            taken = int(regs[ins.rs]) <= 0
        elif op is Opcode.BGTZ:
            taken = int(regs[ins.rs]) > 0
        elif op is Opcode.BLTZ:
            taken = int(regs[ins.rs]) < 0
        elif op is Opcode.BGEZ:
            taken = int(regs[ins.rs]) >= 0
        elif op is Opcode.J:
            return ins.imm
        elif op is Opcode.JAL:
            self._write(_RA, next_pc)
            self._enter_frame(next_pc)
            return ins.imm
        elif op is Opcode.JALR:
            target = int(regs[ins.rs])
            self._write(_RA, next_pc)
            self._enter_frame(next_pc)
            return target
        elif op is Opcode.JR:
            target = int(regs[ins.rs])
            self._leave_frame(target)
            return target
        else:
            raise VmError(f"unhandled branch opcode {op.mnemonic}")
        return ins.imm if taken else next_pc

    def _exec_mem(self, ins: Instruction, pc: int) -> None:
        op = ins.op
        base = int(self.regs[ins.rs])
        addr = base + ins.imm
        if op is Opcode.LW:
            value = self.memory.load_word(addr)
            self._write(ins.rd, int(value) if not isinstance(value, float)
                        else int(value))
        elif op is Opcode.LS:
            value = self.memory.load_word(addr)
            self._write(ins.rd, float(value))
        elif op is Opcode.LB:
            self._write(ins.rd, self.memory.load_byte(addr))
        elif op is Opcode.SW:
            self.memory.store_word(addr, int(self.regs[ins.rt]))
        elif op is Opcode.SS:
            self.memory.store_word(addr, float(self.regs[ins.rt]))
        elif op is Opcode.SB:
            self.memory.store_byte(addr, int(self.regs[ins.rt]))
        else:
            raise VmError(f"unhandled memory opcode {op.mnemonic}")

        if self.trace is not None:
            is_local = STACK_LIMIT <= addr < STACK_BASE
            sp_based = ins.rs == _SP or ins.rs == _FP
            frame = self._frames[-1]
            self.trace.append(
                DynInst(
                    int(op.fu),
                    ins.rd if op.is_load else NO_REG,
                    ins.reads,
                    addr=addr,
                    size=ins.mem_size,
                    local_hint=ins.local,
                    is_local=is_local,
                    sp_based=sp_based,
                    frame_id=frame.frame_id if sp_based else 0,
                    offset=addr - int(self.regs[_SP]) if sp_based else 0,
                    pc=pc,
                )
            )

    def _exec_syscall(self, ins: Instruction) -> None:
        call = ins.imm
        if call == Syscall.EXIT:
            if self.trace is not None:
                self.trace.append(
                    DynInst(int(FuClass.SYSCALL), srcs=(_A0,), pc=self.pc)
                )
            self.instructions_executed += 1
            raise VmExit(int(self.regs[_A0]))
        if call == Syscall.PRINT_INT:
            self.output.append(str(int(self.regs[_A0])))
        elif call == Syscall.PRINT_CHAR:
            self.output.append(chr(int(self.regs[_A0]) & 0xFF))
        elif call == Syscall.PRINT_FLOAT:
            self.output.append(f"{float(self.regs[_F12]):.6g}")
        elif call == Syscall.SBRK:
            amount = int(self.regs[_A0])
            if amount < 0:
                raise VmError("sbrk with negative amount")
            self._write(_V0, self.brk)
            self.brk += (amount + 3) & ~3
        else:
            raise VmError(f"unknown syscall {call}")

    @property
    def stdout(self) -> str:
        """Everything the guest printed, concatenated."""
        return "".join(self.output)


def run_program(
    program: Program,
    max_instructions: int = 50_000_000,
    trace: bool = True,
) -> Tuple[Machine, Optional[Trace]]:
    """Convenience wrapper: construct a machine, run it, return (vm, trace)."""
    vm = Machine(program, trace=trace)
    vm.run(max_instructions=max_instructions)
    return vm, vm.trace

"""Functional-unit pools.

The base machine (paper Table 1) has 16 integer ALUs, 16 FP ALUs, 4 integer
MULT/DIV units and 4 FP MULT/DIV units.  ALUs are fully pipelined, so they
are modelled as a per-cycle issue budget.  Multiplies are pipelined on the
MULT/DIV units; divides occupy a unit for their full latency (R10000
behaviour), so those pools track per-unit busy-until times.

Branches, address generation for loads/stores, and syscalls use integer-ALU
issue slots.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigError
from repro.isa.opcodes import FuClass, LATENCY, LATENCY_BY_INT

# Issue-resource kind per int(FuClass): which pool a class draws from.
# Indexed with a plain int so the per-issue dispatch below is a list load
# and integer compares instead of a chain of enum comparisons.
_IALU_KIND, _FALU_KIND, _IMULT_KIND, _FMULT_KIND = 0, 1, 2, 3
_KIND = [_IALU_KIND] * len(FuClass)
_KIND[int(FuClass.FADD)] = _FALU_KIND
_KIND[int(FuClass.IMULT)] = _IMULT_KIND
_KIND[int(FuClass.IDIV)] = _IMULT_KIND
_KIND[int(FuClass.FMUL)] = _FMULT_KIND
_KIND[int(FuClass.FDIV)] = _FMULT_KIND

# Cycles a MULT/DIV unit stays occupied: 1 for pipelined multiplies,
# the full latency for divides (R10000 behaviour).
_OCCUPANCY = [1] * len(FuClass)
_OCCUPANCY[int(FuClass.IDIV)] = LATENCY_BY_INT[int(FuClass.IDIV)]
_OCCUPANCY[int(FuClass.FDIV)] = LATENCY_BY_INT[int(FuClass.FDIV)]

#: Public view of the per-class resource kind, for callers (the processor's
#: issue stage) that inline the pipelined-ALU fast path and only fall back
#: to :meth:`FuPool.try_take` for the MULT/DIV unit pools.
FU_KIND = _KIND
IALU_KIND, FALU_KIND = _IALU_KIND, _FALU_KIND


class _UnitPool:
    """A pool of units with individual busy-until times."""

    __slots__ = ("free_at",)

    def __init__(self, count: int):
        self.free_at: List[int] = [0] * count

    def try_take(self, now: int, occupy_until: int) -> bool:
        free_at = self.free_at
        for i, t in enumerate(free_at):
            if t <= now:
                free_at[i] = occupy_until
                return True
        return False


class FuPool:
    """All functional units of the machine."""

    def __init__(self, ialu: int = 16, falu: int = 16,
                 imultdiv: int = 4, fmultdiv: int = 4):
        if min(ialu, falu, imultdiv, fmultdiv) <= 0:
            raise ConfigError("every functional-unit count must be positive")
        self.ialu = ialu
        self.falu = falu
        self._ialu_left = ialu
        self._falu_left = falu
        self._imult = _UnitPool(imultdiv)
        self._fmult = _UnitPool(fmultdiv)

    def new_cycle(self) -> None:
        """Refill pipelined issue budgets at the start of a cycle."""
        self._ialu_left = self.ialu
        self._falu_left = self.falu

    def try_take(self, fu: int, now: int) -> bool:
        """Reserve a unit of class *fu* for an op issuing at cycle *now*."""
        if not 0 <= fu < len(_KIND):
            raise ConfigError(f"unknown functional-unit class {fu}")
        kind = _KIND[fu]
        if kind == _IALU_KIND:
            if self._ialu_left > 0:
                self._ialu_left -= 1
                return True
            return False
        if kind == _FALU_KIND:
            if self._falu_left > 0:
                self._falu_left -= 1
                return True
            return False
        # Multiplies are pipelined (one-cycle occupancy); divides hold the
        # unit for their full latency.
        if kind == _IMULT_KIND:
            return self._imult.try_take(now, now + _OCCUPANCY[fu])
        return self._fmult.try_take(now, now + _OCCUPANCY[fu])

    def __repr__(self) -> str:
        return (
            f"FuPool(ialu={self.ialu}, falu={self.falu}, "
            f"imultdiv={len(self._imult.free_at)}, "
            f"fmultdiv={len(self._fmult.free_at)})"
        )

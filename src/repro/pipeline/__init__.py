"""Out-of-order pipeline building blocks (RUU/ROB model of Sohi)."""

from repro.pipeline.rob import Rob, RobEntry
from repro.pipeline.fu import FuPool
from repro.pipeline.memqueue import MemQueue, MemQueueEntry

__all__ = ["Rob", "RobEntry", "FuPool", "MemQueue", "MemQueueEntry"]

"""Memory access queues.

One :class:`MemQueue` instance is the conventional load/store queue (LSQ);
a second instance, fed only with local-variable accesses, is the paper's
local variable access queue (LVAQ).  Both follow the sim-outorder
discipline:

* a load may go to memory only when every earlier store *in its own queue*
  has a known address (conservative disambiguation);
* a load whose address matches an earlier store's is satisfied by
  store-to-load forwarding with a one-cycle delay.

The LVAQ additionally supports the paper's **fast data forwarding**:
``$sp``-relative accesses carry a (frame, offset) key that is known at
dispatch, before effective-address computation, so a store→load pair can be
matched (and non-matching sp-relative stores disambiguated) without waiting
for address generation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SimulationError
from repro.pipeline.rob import RobEntry

#: Sentinel "no unknown store" sequence number.
INF_SEQ = 1 << 62


class MemQueueEntry:
    """One load or store resident in a memory access queue."""

    __slots__ = (
        "rob", "is_store", "word", "line", "addr_known_time",
        "dispatch_time", "serviced", "sp_based", "frame_key",
        "use_lvc", "penalty",
    )

    def __init__(self, rob: RobEntry, is_store: bool, dispatch_time: int,
                 sp_based: bool = False,
                 frame_key: Optional[Tuple[int, int]] = None,
                 use_lvc: bool = False, penalty: int = 0):
        self.rob = rob
        self.is_store = is_store
        self.word = -1  # addr >> 2, filled at address generation
        self.line = -1  # line number, filled at address generation
        self.addr_known_time = -1  # -1 while the address is unknown
        self.dispatch_time = dispatch_time
        self.serviced = False
        self.sp_based = sp_based
        self.frame_key = frame_key
        self.use_lvc = use_lvc
        self.penalty = penalty  # extra cycles (classification mispredict)

    @property
    def addr_known(self) -> bool:
        """True once address generation has completed."""
        return self.addr_known_time >= 0

    def __repr__(self) -> str:
        kind = "ST" if self.is_store else "LD"
        return (
            f"MemQueueEntry({kind}, seq={self.rob.seq}, "
            f"addr_known={self.addr_known}, serviced={self.serviced})"
        )


class MemQueue:
    """A bounded, age-ordered queue of in-flight memory operations."""

    def __init__(self, size: int, name: str = "lsq"):
        if size <= 0:
            raise SimulationError("memory queue size must be positive")
        self.size = size
        self.name = name
        self.entries: List[MemQueueEntry] = []

    @property
    def full(self) -> bool:
        """True when dispatch must stall for this queue."""
        return len(self.entries) >= self.size

    def append(self, entry: MemQueueEntry) -> None:
        """Insert a newly dispatched memory op at the tail."""
        if self.full:
            raise SimulationError(f"dispatch into a full {self.name}")
        self.entries.append(entry)

    def retire_committed(self) -> None:
        """Drop committed ops from the head (they left the window)."""
        entries = self.entries
        drop = 0
        from repro.pipeline.rob import COMMITTED

        while drop < len(entries) and entries[drop].rob.state == COMMITTED:
            drop += 1
        if drop:
            del entries[:drop]

    # -- disambiguation --------------------------------------------------------

    def oldest_unknown_store_seq(self) -> int:
        """Sequence number of the oldest store with an unknown address."""
        for entry in self.entries:
            if entry.is_store and not entry.addr_known:
                return entry.rob.seq
        return INF_SEQ

    def oldest_unknown_nonsp_store_seq(self) -> int:
        """Oldest unknown-address store that is *not* sp-relative.

        Fast data forwarding can disambiguate sp-relative stores by their
        static offsets, so only non-sp stores block the fast path.
        """
        for entry in self.entries:
            if entry.is_store and not entry.addr_known and not entry.sp_based:
                return entry.rob.seq
        return INF_SEQ

    # -- forwarding ------------------------------------------------------------

    def forward_source(self, load: MemQueueEntry) -> Optional[MemQueueEntry]:
        """Youngest earlier store writing the load's word, if any.

        Assumes every earlier store has a known address (the caller enforces
        the disambiguation rule first).
        """
        entries = self.entries
        idx = entries.index(load)
        for i in range(idx - 1, -1, -1):
            entry = entries[i]
            if entry.is_store and entry.word == load.word:
                return entry
        return None

    def fast_forward_source(
        self, load: MemQueueEntry
    ) -> Tuple[Optional[MemQueueEntry], bool]:
        """Offset-matched forwarding source for an sp-relative load.

        Returns ``(store, conclusive)``.  ``conclusive`` is True when the
        offset-based check fully disambiguated the load against every
        earlier sp-relative store — i.e. either a match was found, or no
        earlier sp-relative store shares its (frame, offset) key.  The
        caller must still check non-sp stores separately.
        """
        if not load.sp_based or load.frame_key is None:
            return None, False
        entries = self.entries
        idx = entries.index(load)
        for i in range(idx - 1, -1, -1):
            entry = entries[i]
            if not entry.is_store:
                continue
            if entry.sp_based and entry.frame_key == load.frame_key:
                return entry, True
            if not entry.sp_based and not entry.addr_known:
                # An unknown non-sp store may alias: not conclusive.
                return None, False
            if not entry.sp_based and entry.addr_known \
                    and entry.word == load.word:
                # A known-address aliasing store: use the normal path.
                return None, False
        return None, True

    def occupancy(self) -> int:
        """Number of resident entries."""
        return len(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"MemQueue({self.name!r}, {len(self.entries)}/{self.size})"

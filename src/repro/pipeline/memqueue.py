"""Memory access queues.

One :class:`MemQueue` instance is the conventional load/store queue (LSQ);
a second instance, fed only with local-variable accesses, is the paper's
local variable access queue (LVAQ).  Both follow the sim-outorder
discipline:

* a load may go to memory only when every earlier store *in its own queue*
  has a known address (conservative disambiguation);
* a load whose address matches an earlier store's is satisfied by
  store-to-load forwarding with a one-cycle delay.

The LVAQ additionally supports the paper's **fast data forwarding**:
``$sp``-relative accesses carry a (frame, offset) key that is known at
dispatch, before effective-address computation, so a store→load pair can be
matched (and non-matching sp-relative stores disambiguated) without waiting
for address generation.

Indexing
--------

The queue keeps incremental indexes so the processor's per-cycle memory
stage does not rescan every resident entry:

* ``pending_loads()`` — age-ordered loads with a compaction cursor, so the
  memory stage only walks loads (and skips the serviced prefix in O(1));
* ``oldest_unknown_store_seq`` / ``oldest_unknown_nonsp_store_seq`` —
  maintained with lazy cursors over append-ordered store lists instead of
  rescanning the queue (a store's address never becomes unknown again, so
  a cursor can only ever move forward);
* ``_stores_by_word`` — known-address stores bucketed by word, fed by
  ``note_store_addr`` and consumed by ``forward_source_fast``;
* ``_sp_stores`` / ``_nonsp_stores`` — the two store populations fast
  forwarding compares, consumed by ``fast_forward_source_fast``;
* ``_addr_ready`` — loads bucketed by the cycle their address becomes
  known, fed by the issue stage's address generation and drained by the
  memory stage's event-driven eligibility walk.

The ``*_fast`` lookups give the same answers as the original scanning
methods **provided** the processor discipline is followed: entries enter
via :meth:`append`, leave via :meth:`retire_committed`, and every site
that fills a store's address calls :meth:`note_store_addr`.  The original
O(n) methods are kept as the reference semantics (and for tests that
build entries by hand without that discipline).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.pipeline.rob import COMMITTED, RobEntry

#: Sentinel "no unknown store" sequence number.
INF_SEQ = 1 << 62

#: Cursor depth at which the lazily-advanced index lists are compacted.
_COMPACT_AT = 64


class MemQueueEntry:
    """One load or store resident in a memory access queue."""

    __slots__ = (
        "rob", "is_store", "word", "line", "addr_known_time",
        "dispatch_time", "serviced", "sp_based", "frame_key",
        "use_lvc", "penalty", "pos",
    )

    def __init__(self, rob: RobEntry, is_store: bool, dispatch_time: int,
                 sp_based: bool = False,
                 frame_key: Optional[Tuple[int, int]] = None,
                 use_lvc: bool = False, penalty: int = 0):
        self.rob = rob
        self.is_store = is_store
        self.word = -1  # addr >> 2, filled at address generation
        self.line = -1  # line number, filled at address generation
        self.addr_known_time = -1  # -1 while the address is unknown
        self.dispatch_time = dispatch_time
        self.serviced = False
        self.sp_based = sp_based
        self.frame_key = frame_key
        self.use_lvc = use_lvc
        self.penalty = penalty  # extra cycles (classification mispredict)
        self.pos = -1  # queue-lifetime position, assigned by MemQueue.append

    @property
    def addr_known(self) -> bool:
        """True once address generation has completed."""
        return self.addr_known_time >= 0

    def __repr__(self) -> str:
        kind = "ST" if self.is_store else "LD"
        return (
            f"MemQueueEntry({kind}, seq={self.rob.seq}, "
            f"addr_known={self.addr_known}, serviced={self.serviced})"
        )


class MemQueue:
    """A bounded, age-ordered queue of in-flight memory operations."""

    def __init__(self, size: int, name: str = "lsq"):
        if size <= 0:
            raise SimulationError("memory queue size must be positive")
        self.size = size
        self.name = name
        self.entries: List[MemQueueEntry] = []
        #: ``pos`` of ``entries[0]`` — ``entries[e.pos - base] is e``.
        self.base = 0
        #: Loads the memory stage still has to service; the processor
        #: decrements this whenever it sets ``serviced`` on a load.
        self.unserviced_loads = 0
        self._loads: List[MemQueueEntry] = []
        self._load_head = 0
        self._unknown_stores: List[MemQueueEntry] = []
        self._us_head = 0
        self._unknown_nonsp_stores: List[MemQueueEntry] = []
        self._un_head = 0
        self._nonsp_stores: List[MemQueueEntry] = []
        self._ns_head = 0
        self._stores_by_word: Dict[int, List[MemQueueEntry]] = {}
        self._sp_stores: Dict[Tuple[int, int], List[MemQueueEntry]] = {}
        #: Loads becoming address-ready, bucketed by that cycle: filled
        #: by the issue stage's address generation, drained by the
        #: memory stage's eligibility walk (event-driven alternative to
        #: rescanning ``_loads`` every cycle).
        self._addr_ready: Dict[int, List[MemQueueEntry]] = {}

    @property
    def full(self) -> bool:
        """True when dispatch must stall for this queue."""
        return len(self.entries) >= self.size

    def append(self, entry: MemQueueEntry) -> None:
        """Insert a newly dispatched memory op at the tail."""
        entries = self.entries
        if len(entries) >= self.size:
            raise SimulationError(f"dispatch into a full {self.name}")
        entry.pos = self.base + len(entries)
        entries.append(entry)
        if entry.is_store:
            self._unknown_stores.append(entry)
            if entry.sp_based and entry.frame_key is not None:
                self._sp_stores.setdefault(entry.frame_key, []).append(entry)
            if not entry.sp_based:
                self._unknown_nonsp_stores.append(entry)
                self._nonsp_stores.append(entry)
        else:
            self._loads.append(entry)
            self.unserviced_loads += 1

    def note_store_addr(self, entry: MemQueueEntry) -> None:
        """Index a store whose effective address was just filled in.

        Must be called (once) by every site that sets a resident store's
        ``word``; ``forward_source_fast`` relies on the bucket being
        complete.
        """
        if entry.word >= 0:
            self._stores_by_word.setdefault(entry.word, []).append(entry)

    def retire_committed(self) -> None:
        """Drop committed ops from the head (they left the window)."""
        entries = self.entries
        n = len(entries)
        drop = 0
        while drop < n and entries[drop].rob.state == COMMITTED:
            drop += 1
        if not drop:
            return
        by_word = self._stores_by_word
        sp_stores = self._sp_stores
        for i in range(drop):
            qe = entries[i]
            if not qe.is_store:
                continue
            word = qe.word
            if word >= 0:
                bucket = by_word.get(word)
                if bucket is not None:
                    try:
                        bucket.remove(qe)
                    except ValueError:
                        pass
                    if not bucket:
                        del by_word[word]
            if qe.sp_based and qe.frame_key is not None:
                bucket = sp_stores.get(qe.frame_key)
                if bucket is not None:
                    if bucket and bucket[0] is qe:
                        del bucket[0]
                    else:
                        try:
                            bucket.remove(qe)
                        except ValueError:
                            pass
                    if not bucket:
                        del sp_stores[qe.frame_key]
        del entries[:drop]
        self.base += drop
        base = self.base
        ns = self._nonsp_stores
        h = self._ns_head
        m = len(ns)
        while h < m and ns[h].pos < base:
            h += 1
        if h >= _COMPACT_AT:
            del ns[:h]
            h = 0
        self._ns_head = h

    # -- disambiguation --------------------------------------------------------

    def oldest_unknown_store_seq(self) -> int:
        """Sequence number of the oldest store with an unknown address.

        Incremental: a store's address, once known, never becomes unknown
        again (and a store cannot retire with an unknown address), so a
        cursor over the append-ordered store list only ever advances.
        """
        lst = self._unknown_stores
        h = self._us_head
        n = len(lst)
        while h < n and lst[h].addr_known_time >= 0:
            h += 1
        if h >= _COMPACT_AT:
            del lst[:h]
            n -= h
            h = 0
        self._us_head = h
        return lst[h].rob.seq if h < n else INF_SEQ

    def oldest_unknown_nonsp_store_seq(self) -> int:
        """Oldest unknown-address store that is *not* sp-relative.

        Fast data forwarding can disambiguate sp-relative stores by their
        static offsets, so only non-sp stores block the fast path.
        """
        lst = self._unknown_nonsp_stores
        h = self._un_head
        n = len(lst)
        while h < n and lst[h].addr_known_time >= 0:
            h += 1
        if h >= _COMPACT_AT:
            del lst[:h]
            n -= h
            h = 0
        self._un_head = h
        return lst[h].rob.seq if h < n else INF_SEQ

    # -- forwarding ------------------------------------------------------------

    def forward_source(self, load: MemQueueEntry) -> Optional[MemQueueEntry]:
        """Youngest earlier store writing the load's word, if any.

        Assumes every earlier store has a known address (the caller enforces
        the disambiguation rule first).
        """
        entries = self.entries
        idx = entries.index(load)
        for i in range(idx - 1, -1, -1):
            entry = entries[i]
            if entry.is_store and entry.word == load.word:
                return entry
        return None

    def forward_source_fast(self, load: MemQueueEntry) -> Optional[MemQueueEntry]:
        """Indexed :meth:`forward_source`: same answer via the word buckets.

        Valid when every resident known-address store was registered with
        :meth:`note_store_addr` (the processor's discipline).
        """
        bucket = self._stores_by_word.get(load.word)
        if not bucket:
            return None
        lpos = load.pos
        best = None
        best_pos = -1
        for entry in bucket:
            p = entry.pos
            if best_pos < p < lpos:
                best = entry
                best_pos = p
        return best

    def fast_forward_source(
        self, load: MemQueueEntry
    ) -> Tuple[Optional[MemQueueEntry], bool]:
        """Offset-matched forwarding source for an sp-relative load.

        Returns ``(store, conclusive)``.  ``conclusive`` is True when the
        offset-based check fully disambiguated the load against every
        earlier sp-relative store — i.e. either a match was found, or no
        earlier sp-relative store shares its (frame, offset) key.  The
        caller must still check non-sp stores separately.
        """
        if not load.sp_based or load.frame_key is None:
            return None, False
        entries = self.entries
        idx = entries.index(load)
        for i in range(idx - 1, -1, -1):
            entry = entries[i]
            if not entry.is_store:
                continue
            if entry.sp_based and entry.frame_key == load.frame_key:
                return entry, True
            if not entry.sp_based and not entry.addr_known:
                # An unknown non-sp store may alias: not conclusive.
                return None, False
            if not entry.sp_based and entry.addr_known \
                    and entry.word == load.word:
                # A known-address aliasing store: use the normal path.
                return None, False
        return None, True

    def fast_forward_source_fast(
        self, load: MemQueueEntry
    ) -> Tuple[Optional[MemQueueEntry], bool]:
        """Indexed :meth:`fast_forward_source`.

        The scan's outcome is decided by whichever comes first walking
        backwards from the load: the youngest same-key sp-relative store,
        or the youngest *blocking* non-sp store (unknown address, or known
        and aliasing).  Compare the two candidates' positions directly
        instead of walking every entry in between.
        """
        frame_key = load.frame_key
        if not load.sp_based or frame_key is None:
            return None, False
        lpos = load.pos
        source = None
        source_pos = -1
        bucket = self._sp_stores.get(frame_key)
        if bucket:
            for i in range(len(bucket) - 1, -1, -1):
                entry = bucket[i]
                if entry.pos < lpos:
                    source = entry
                    source_pos = entry.pos
                    break
        ns = self._nonsp_stores
        lword = load.word
        for i in range(len(ns) - 1, self._ns_head - 1, -1):
            entry = ns[i]
            p = entry.pos
            if p >= lpos:
                continue
            if p < source_pos:
                break  # every remaining store is older than the sp match
            if entry.addr_known_time < 0 or entry.word == lword:
                return None, False
        if source is not None:
            return source, True
        return None, True

    def pending_loads(self) -> Tuple[List[MemQueueEntry], int]:
        """Age-ordered loads and the index of the first possibly-unserviced
        one.

        The returned list may contain serviced loads past the cursor (they
        are flagged, the caller skips them); the serviced prefix is
        compacted away once it grows past a threshold.
        """
        loads = self._loads
        head = self._load_head
        n = len(loads)
        while head < n and loads[head].serviced:
            head += 1
        if head >= _COMPACT_AT:
            del loads[:head]
            head = 0
        self._load_head = head
        return loads, head

    def occupancy(self) -> int:
        """Number of resident entries."""
        return len(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"MemQueue({self.name!r}, {len(self.entries)}/{self.size})"

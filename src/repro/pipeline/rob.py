"""The reorder buffer (Register Update Unit in Sohi's terminology).

Entries live from dispatch to commit.  Each entry tracks the dataflow state
of one dynamic instruction: how many source operands are still outstanding,
which later entries consume its result, and when its result becomes
available.  Register renaming falls out of the ``producer`` map kept by the
processor: at dispatch each destination register is re-bound to the new
entry, so anti/output dependences never stall anything.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.errors import SimulationError
from repro.vm.trace import DynInst

# Entry lifecycle states.
DISPATCHED = 0
ISSUED = 1
COMPLETED = 2
COMMITTED = 3

_STATE_NAMES = {
    DISPATCHED: "DISPATCHED",
    ISSUED: "ISSUED",
    COMPLETED: "COMPLETED",
    COMMITTED: "COMMITTED",
}


class RobEntry:
    """One in-flight dynamic instruction."""

    __slots__ = (
        "seq", "inst", "state", "pending", "earliest", "issue_time",
        "complete_time", "consumers", "mem", "in_issuable",
    )

    def __init__(self, seq: int, inst: DynInst):
        self.seq = seq
        self.inst = inst
        self.state = DISPATCHED
        self.pending = 0  # outstanding source operands
        self.earliest = 0  # earliest cycle this entry may issue
        self.issue_time = -1
        self.complete_time = -1
        self.consumers: List["RobEntry"] = []
        self.mem = None  # MemQueueEntry for loads/stores
        self.in_issuable = False

    @property
    def completed(self) -> bool:
        """True once the result (or store address+data) is available."""
        return self.state == COMPLETED

    def __repr__(self) -> str:
        return (
            f"RobEntry(seq={self.seq}, {_STATE_NAMES[self.state]}, "
            f"pending={self.pending})"
        )


class Rob:
    """A bounded in-order window of :class:`RobEntry`."""

    def __init__(self, size: int):
        if size <= 0:
            raise SimulationError("ROB size must be positive")
        self.size = size
        # Public so the processor hot loop can bind the deque directly;
        # mutate only through push/pop_head unless you are the processor.
        self.entries: Deque[RobEntry] = deque()

    @property
    def full(self) -> bool:
        """True when no dispatch slot is free."""
        return len(self.entries) >= self.size

    @property
    def empty(self) -> bool:
        """True when nothing is in flight."""
        return not self.entries

    def push(self, entry: RobEntry) -> None:
        """Append a newly dispatched entry; raises when full."""
        if self.full:
            raise SimulationError("dispatch into a full ROB")
        self.entries.append(entry)

    def head(self) -> Optional[RobEntry]:
        """The oldest in-flight entry, or None."""
        return self.entries[0] if self.entries else None

    def pop_head(self) -> RobEntry:
        """Retire the oldest entry."""
        if not self.entries:
            raise SimulationError("commit from an empty ROB")
        entry = self.entries.popleft()
        entry.state = COMMITTED
        return entry

    def occupancy(self) -> int:
        """Entries currently in flight."""
        return len(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __repr__(self) -> str:
        return f"Rob({len(self.entries)}/{self.size})"

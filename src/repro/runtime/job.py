"""The units of work the job engine schedules.

A :class:`SimJob` fully describes a simulation so that any worker process
can reproduce it from scratch: either a named workload (``"130.li"``,
``"mini.qsort"``) at a scale/seed, or an inline mini-C / assembly source
text (the ``repro-cc sim`` path — content-addressed by the source itself,
so editing the file naturally misses the cache).

Every job spec advertises its family with a ``kind`` class attribute
(see :mod:`repro.runtime.registry`); the payload codecs at the bottom
turn service-submission JSON into specs — the single place a machine
configuration is parsed from the wire (``repro-cc`` and the sweep
driver both delegate here).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.config import MachineConfig
from repro.errors import ReproError
from repro.runtime.signature import canonical_json, describe_config, digest


class SimJob:
    """Spec of one (workload x config) timing simulation."""

    kind = "sim"

    __slots__ = ("workload", "config", "scale", "seed", "source_text",
                 "optimize", "opt_level", "max_instructions", "_key")

    def __init__(
        self,
        workload: str,
        config: MachineConfig,
        scale: float = 1.0,
        seed: int = 1,
        source_text: Optional[str] = None,
        optimize: bool = True,
        opt_level: Optional[int] = None,
        max_instructions: Optional[int] = None,
    ):
        self.workload = workload
        self.config = config
        self.scale = scale
        self.seed = seed
        self.source_text = source_text
        self.optimize = optimize
        # None lets the compiler derive the level from ``optimize``
        # (True -> O2, False -> O0); an explicit 0/1/2 wins.  Named
        # workloads instead carry the level in the name ("mini.x@O0").
        self.opt_level = opt_level
        self.max_instructions = max_instructions
        self._key: Optional[str] = None

    def describe(self) -> Dict[str, Any]:
        """A JSON-serialisable description covering everything that can
        affect the simulation's result."""
        body: Dict[str, Any] = {
            "workload": self.workload,
            "scale": self.scale,
            "seed": self.seed,
            "config": describe_config(self.config),
        }
        if self.source_text is not None:
            body["source"] = {
                "sha256": digest(self.source_text),
                "optimize": self.optimize,
                "opt_level": self.opt_level,
                "max_instructions": self.max_instructions,
            }
        return body

    @property
    def key(self) -> str:
        """Content-addressed identity (hex SHA-256 of the description)."""
        if self._key is None:
            self._key = digest(canonical_json(self.describe()))
        return self._key

    def label(self) -> str:
        """Short human-readable tag for progress lines."""
        return f"{self.workload} {self.config.notation()}"

    # SimJob crosses process boundaries via pickle; drop the memoised key
    # so tampering with a config after construction can't ship a stale key.
    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__
                if name != "_key"}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)
        self._key = None

    def __repr__(self) -> str:
        return (f"SimJob({self.workload!r}, {self.config.notation()}, "
                f"scale={self.scale}, seed={self.seed})")


class MixJob:
    """Spec of one multi-programmed mix: N named workloads, one config.

    Engine-compatible with :class:`SimJob` (key/describe/label plus the
    ``workload``/``scale``/``seed`` fields the scheduler sorts on); the
    result is a :class:`repro.trace.mix.MixResult` — the ``mix`` job
    kind's registered result type, which the result store verifies on
    the way back out.
    """

    kind = "mix"

    __slots__ = ("workloads", "config", "scale", "seed", "_key")

    def __init__(self, workloads, config: MachineConfig,
                 scale: float = 1.0, seed: int = 1):
        self.workloads = tuple(workloads)
        if not self.workloads:
            raise ValueError("a mix needs at least one workload")
        self.config = config
        self.scale = scale
        self.seed = seed
        self._key: Optional[str] = None

    @property
    def workload(self) -> str:
        """The scheduler's sort key: the joined program list."""
        return "+".join(self.workloads)

    def describe(self) -> Dict[str, Any]:
        """A JSON-serialisable description covering everything that can
        affect the mix's result."""
        return {
            "kind": "mix",
            "workloads": list(self.workloads),
            "scale": self.scale,
            "seed": self.seed,
            "config": describe_config(self.config),
        }

    @property
    def key(self) -> str:
        """Content-addressed identity (hex SHA-256 of the description)."""
        if self._key is None:
            self._key = digest(canonical_json(self.describe()))
        return self._key

    def label(self) -> str:
        """Short human-readable tag for progress lines."""
        return f"mix[{self.workload}] {self.config.notation()}"

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__
                if name != "_key"}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)
        self._key = None

    def __repr__(self) -> str:
        return (f"MixJob({self.workloads!r}, {self.config.notation()}, "
                f"scale={self.scale}, seed={self.seed})")


# -- machine-config and job payload codecs ----------------------------------
#
# The service API and the sweep driver describe machine configurations as
# JSON: either a bare notation string ("2+2:opt") or an object
#
#     {"notation": "2+0", "overrides": {"lvaq_size": 32,
#                                       "frontend.policy": "gshare",
#                                       "mem.l1_port_policy": "finite"}}
#
# Overrides are dotted attribute paths applied to the constructed config,
# which is exactly how the experiment modules build their off-notation
# sweeps (ablation-realism sets the same attributes in Python).


def parse_notation(text: str) -> MachineConfig:
    """Parse the paper's ``"N+M[:opt]"`` notation into a config."""
    body = text.strip()
    optimized = body.endswith(":opt")
    if optimized:
        body = body[: -len(":opt")]
    try:
        n_text, m_text = body.split("+")
        n, m = int(n_text), int(m_text)
    except ValueError:
        raise ReproError(
            f"bad configuration {text!r}; expected N+M[:opt]") from None
    return MachineConfig.baseline(
        l1_ports=n, lvc_ports=m,
        fast_forwarding=optimized and m > 0,
        combining=2 if (optimized and m > 0) else 1,
    )


def _apply_overrides(config: MachineConfig,
                     overrides: Dict[str, Any]) -> MachineConfig:
    for path in sorted(overrides):
        target = config
        parts = path.split(".")
        for part in parts[:-1]:
            target = getattr(target, part, None)
            if target is None:
                raise ReproError(f"bad config override path {path!r}")
        if not hasattr(target, parts[-1]):
            raise ReproError(f"bad config override path {path!r}")
        setattr(target, parts[-1], overrides[path])
    return config


def config_from_spec(spec: Any) -> MachineConfig:
    """A :class:`MachineConfig` from a wire-format description."""
    if isinstance(spec, str):
        return parse_notation(spec)
    if isinstance(spec, dict):
        notation = spec.get("notation")
        if not isinstance(notation, str):
            raise ReproError("config spec needs a 'notation' string")
        config = parse_notation(notation)
        overrides = spec.get("overrides") or {}
        if not isinstance(overrides, dict):
            raise ReproError("config 'overrides' must be an object")
        return _apply_overrides(config, overrides)
    raise ReproError(
        f"config spec must be a notation string or an object, "
        f"got {type(spec).__name__}")


def sim_job_from_payload(payload: Dict[str, Any]) -> SimJob:
    """The ``sim`` kind's submission decoder (service + sweep driver)."""
    workload = payload.get("workload")
    if not isinstance(workload, str) or not workload:
        raise ReproError("sim job payload needs a 'workload' name")
    return SimJob(
        workload,
        config_from_spec(payload.get("config", "2+0")),
        scale=float(payload.get("scale", 1.0)),
        seed=int(payload.get("seed", 1)),
        source_text=payload.get("source_text"),
        optimize=bool(payload.get("optimize", True)),
        opt_level=payload.get("opt_level"),
        max_instructions=payload.get("max_instructions"),
    )


def mix_job_from_payload(payload: Dict[str, Any]) -> MixJob:
    """The ``mix`` kind's submission decoder."""
    workloads = payload.get("workloads")
    if (not isinstance(workloads, (list, tuple)) or not workloads
            or not all(isinstance(w, str) for w in workloads)):
        raise ReproError("mix job payload needs a 'workloads' name list")
    return MixJob(
        tuple(workloads),
        config_from_spec(payload.get("config", "2+2:opt")),
        scale=float(payload.get("scale", 1.0)),
        seed=int(payload.get("seed", 1)),
    )

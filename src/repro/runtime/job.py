"""The unit of work the job engine schedules: one timing simulation.

A :class:`SimJob` fully describes a simulation so that any worker process
can reproduce it from scratch: either a named workload (``"130.li"``,
``"mini.qsort"``) at a scale/seed, or an inline mini-C / assembly source
text (the ``repro-cc sim`` path — content-addressed by the source itself,
so editing the file naturally misses the cache).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.config import MachineConfig
from repro.runtime.signature import canonical_json, describe_config, digest


class SimJob:
    """Spec of one (workload x config) timing simulation."""

    __slots__ = ("workload", "config", "scale", "seed", "source_text",
                 "optimize", "opt_level", "max_instructions", "_key")

    def __init__(
        self,
        workload: str,
        config: MachineConfig,
        scale: float = 1.0,
        seed: int = 1,
        source_text: Optional[str] = None,
        optimize: bool = True,
        opt_level: Optional[int] = None,
        max_instructions: Optional[int] = None,
    ):
        self.workload = workload
        self.config = config
        self.scale = scale
        self.seed = seed
        self.source_text = source_text
        self.optimize = optimize
        # None lets the compiler derive the level from ``optimize``
        # (True -> O2, False -> O0); an explicit 0/1/2 wins.  Named
        # workloads instead carry the level in the name ("mini.x@O0").
        self.opt_level = opt_level
        self.max_instructions = max_instructions
        self._key: Optional[str] = None

    def describe(self) -> Dict[str, Any]:
        """A JSON-serialisable description covering everything that can
        affect the simulation's result."""
        body: Dict[str, Any] = {
            "workload": self.workload,
            "scale": self.scale,
            "seed": self.seed,
            "config": describe_config(self.config),
        }
        if self.source_text is not None:
            body["source"] = {
                "sha256": digest(self.source_text),
                "optimize": self.optimize,
                "opt_level": self.opt_level,
                "max_instructions": self.max_instructions,
            }
        return body

    @property
    def key(self) -> str:
        """Content-addressed identity (hex SHA-256 of the description)."""
        if self._key is None:
            self._key = digest(canonical_json(self.describe()))
        return self._key

    def label(self) -> str:
        """Short human-readable tag for progress lines."""
        return f"{self.workload} {self.config.notation()}"

    # SimJob crosses process boundaries via pickle; drop the memoised key
    # so tampering with a config after construction can't ship a stale key.
    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__
                if name != "_key"}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)
        self._key = None

    def __repr__(self) -> str:
        return (f"SimJob({self.workload!r}, {self.config.notation()}, "
                f"scale={self.scale}, seed={self.seed})")


class MixJob:
    """Spec of one multi-programmed mix: N named workloads, one config.

    Engine-compatible with :class:`SimJob` (key/describe/label plus the
    ``workload``/``scale``/``seed`` fields the scheduler sorts on); the
    result is a :class:`repro.trace.mix.MixResult`, so mix jobs run
    through a :class:`~repro.runtime.cache.ResultCache` built with that
    ``result_type``.
    """

    __slots__ = ("workloads", "config", "scale", "seed", "_key")

    def __init__(self, workloads, config: MachineConfig,
                 scale: float = 1.0, seed: int = 1):
        self.workloads = tuple(workloads)
        if not self.workloads:
            raise ValueError("a mix needs at least one workload")
        self.config = config
        self.scale = scale
        self.seed = seed
        self._key: Optional[str] = None

    @property
    def workload(self) -> str:
        """The scheduler's sort key: the joined program list."""
        return "+".join(self.workloads)

    def describe(self) -> Dict[str, Any]:
        """A JSON-serialisable description covering everything that can
        affect the mix's result."""
        return {
            "kind": "mix",
            "workloads": list(self.workloads),
            "scale": self.scale,
            "seed": self.seed,
            "config": describe_config(self.config),
        }

    @property
    def key(self) -> str:
        """Content-addressed identity (hex SHA-256 of the description)."""
        if self._key is None:
            self._key = digest(canonical_json(self.describe()))
        return self._key

    def label(self) -> str:
        """Short human-readable tag for progress lines."""
        return f"mix[{self.workload}] {self.config.notation()}"

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__
                if name != "_key"}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)
        self._key = None

    def __repr__(self) -> str:
        return (f"MixJob({self.workloads!r}, {self.config.notation()}, "
                f"scale={self.scale}, seed={self.seed})")

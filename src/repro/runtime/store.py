"""Sharded, content-addressed result store with integrity and GC.

The successor to the flat :class:`repro.runtime.cache.ResultCache`:
results of every registered job kind live in one directory tree, fanned
out by hash prefix, with a per-shard index that makes the store
administrable — ``repro-cc cache stats|verify|gc`` all read it.

Layout (under ``--cache-dir``, ``$REPRO_CACHE_DIR``, or ``~/.cache/repro``)::

    <cache_dir>/
      v2/
        <code_salt>/              one tree per simulator code version
          <key[:2]>/              256-way shard fan-out
            index.json            shard index: key -> entry metadata
            <key>.pkl             pickled result payload

An index entry records the job ``kind`` (the registry validates the
payload type on the way back out), the payload ``size`` and ``sha256``
(integrity verification), the last-access time ``atime`` and cumulative
``hits`` (LRU-by-atime GC and stats).  Payload writes are atomic (temp
file + ``os.replace``); index writes are too, and the index is *soft*
metadata — a payload present on disk but missing from the index is
adopted on first touch, never lost, so a racing writer that loses an
index update costs bookkeeping precision, not results.

Hit-path economy: ``lookup``/``store`` buffer atime/hit movements in
memory and :meth:`flush` writes the dirty shards — the engine flushes
once per run, the service once per batch — so a thousand-hit sweep does
not rewrite index files a thousand times.

Migration: a ``lookup`` that misses v2 probes the v1 flat-cache path for
the same ``(salt, key)`` and **adopts** the entry — moves the payload
into the sharded tree and indexes it — so existing cache directories
warm the new store incrementally, no bulk conversion step required.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.runtime.registry import kind_for, registered_kinds

_FORMAT = "v2"
_V1_FORMAT = "v1"
INDEX_NAME = "index.json"
INDEX_VERSION = 1


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or the conventional per-user cache location."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def _write_atomic(path: str, payload: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


class StoreProblem:
    """One defect ``verify`` found (reported, never raised)."""

    __slots__ = ("key", "shard", "issue")

    def __init__(self, key: str, shard: str, issue: str):
        self.key = key
        self.shard = shard
        self.issue = issue

    def __repr__(self) -> str:
        return f"StoreProblem({self.shard}/{self.key[:12]}: {self.issue})"


class ResultStore:
    """On-disk result store keyed by (code salt, job key), kind-checked."""

    def __init__(self, root: str, salt: str):
        self.root = root
        self.salt = salt
        self.dir = os.path.join(root, _FORMAT, salt)
        self.v1_dir = os.path.join(root, _V1_FORMAT, salt)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.adopted = 0
        # shard -> (index dict, dirty flag); indexes load lazily.
        self._indexes: Dict[str, Tuple[Dict[str, Any], bool]] = {}

    # -- paths and indexes ---------------------------------------------------

    def _shard(self, key: str) -> str:
        return key[:2]

    def _payload_path(self, key: str) -> str:
        return os.path.join(self.dir, self._shard(key), key + ".pkl")

    def _index_path(self, shard: str) -> str:
        return os.path.join(self.dir, shard, INDEX_NAME)

    def _load_index(self, shard: str) -> Dict[str, Any]:
        cached = self._indexes.get(shard)
        if cached is not None:
            return cached[0]
        index = self._read_index(shard)
        self._indexes[shard] = (index, False)
        return index

    def _read_index(self, shard: str) -> Dict[str, Any]:
        try:
            with open(self._index_path(shard), "r") as handle:
                payload = json.load(handle)
            entries = payload.get("entries", {})
            if isinstance(entries, dict):
                return entries
        except (OSError, ValueError):
            pass
        return {}

    def _mark_dirty(self, shard: str) -> None:
        index = self._load_index(shard)
        self._indexes[shard] = (index, True)

    def flush(self) -> None:
        """Write every dirty shard index (merging with on-disk state)."""
        for shard, (index, dirty) in list(self._indexes.items()):
            if not dirty:
                continue
            merged = self._read_index(shard)
            for key, entry in index.items():
                known = merged.get(key)
                if known is not None:
                    # Keep the larger hit count / newer atime: another
                    # process may have advanced them concurrently.
                    entry = dict(entry)
                    entry["hits"] = max(entry.get("hits", 0),
                                        known.get("hits", 0))
                    entry["atime"] = max(entry.get("atime", 0.0),
                                         known.get("atime", 0.0))
                merged[key] = entry
            # Entries we deleted locally stay deleted.
            for key in [k for k in merged
                        if k not in index
                        and not os.path.exists(self._payload_path(k))]:
                del merged[key]
            directory = os.path.join(self.dir, shard)
            os.makedirs(directory, exist_ok=True)
            _write_atomic(
                self._index_path(shard),
                json.dumps({"version": INDEX_VERSION, "entries": merged},
                           sort_keys=True, indent=1).encode("utf-8"))
            self._indexes[shard] = (merged, False)

    # -- core API ------------------------------------------------------------

    def lookup(self, job) -> Optional[Any]:
        """The stored result for *job*, or None (corrupt entries = miss)."""
        kind = kind_for(job)
        key = job.key
        path = self._payload_path(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
            result = pickle.loads(data)
        except FileNotFoundError:
            adopted = self._adopt_v1(job)
            if adopted is not None:
                self.hits += 1
                return adopted
            self.misses += 1
            return None
        except Exception:
            # Truncated/corrupt (e.g. a killed writer pre-os.replace on a
            # filesystem without atomic rename): drop it and recompute.
            self._drop(key)
            self.misses += 1
            return None
        if not isinstance(result, kind.result_type):
            self.misses += 1
            return None
        self._touch(key, kind.name, data)
        self.hits += 1
        return result

    def store(self, job, result: Any) -> None:
        """Store *result* for *job* atomically and index it."""
        kind = kind_for(job)
        key = job.key
        path = self._payload_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        data = pickle.dumps(result, protocol=4)
        _write_atomic(path, data)
        shard = self._shard(key)
        index = self._load_index(shard)
        index[key] = {
            "kind": kind.name,
            "size": len(data),
            "sha256": hashlib.sha256(data).hexdigest(),
            "atime": time.time(),
            "hits": index.get(key, {}).get("hits", 0),
            "meta": job.describe(),
        }
        self._mark_dirty(shard)
        self.writes += 1

    def contains(self, job) -> bool:
        """Whether a payload exists for *job* (no counters, no decode)."""
        return (os.path.exists(self._payload_path(job.key))
                or os.path.exists(self._v1_payload_path(job.key)))

    def _touch(self, key: str, kind_name: str, data: bytes) -> None:
        shard = self._shard(key)
        index = self._load_index(shard)
        entry = index.get(key)
        if entry is None:
            # Payload present but unindexed (lost index race, manual
            # copy): adopt it into the index.
            entry = {"kind": kind_name, "size": len(data),
                     "sha256": hashlib.sha256(data).hexdigest(), "hits": 0}
            index[key] = entry
        entry["hits"] = entry.get("hits", 0) + 1
        entry["atime"] = time.time()
        self._mark_dirty(shard)

    def _drop(self, key: str) -> None:
        try:
            os.remove(self._payload_path(key))
        except OSError:
            pass
        shard = self._shard(key)
        index = self._load_index(shard)
        if index.pop(key, None) is not None:
            self._mark_dirty(shard)

    # -- v1 migration --------------------------------------------------------

    def _v1_payload_path(self, key: str) -> str:
        return os.path.join(self.v1_dir, key[:2], key + ".pkl")

    def _adopt_v1(self, job) -> Optional[Any]:
        """Move a v1 flat-cache entry for *job* into the sharded tree."""
        kind = kind_for(job)
        old = self._v1_payload_path(job.key)
        try:
            with open(old, "rb") as handle:
                data = handle.read()
            result = pickle.loads(data)
        except (OSError, Exception):  # noqa: B014 - any defect = no entry
            return None
        if not isinstance(result, kind.result_type):
            return None
        self.store(job, result)
        self.writes -= 1  # an adoption is not a fresh result
        self.adopted += 1
        for suffix in (".pkl", ".json"):
            try:
                os.remove(os.path.join(self.v1_dir, job.key[:2],
                                       job.key + suffix))
            except OSError:
                pass
        return result

    # -- administration (repro-cc cache) -------------------------------------

    def shards(self) -> List[str]:
        """Every shard directory name present on disk, sorted."""
        try:
            return sorted(
                name for name in os.listdir(self.dir)
                if len(name) == 2
                and os.path.isdir(os.path.join(self.dir, name)))
        except OSError:
            return []

    def _iter_entries(self) -> Iterable[Tuple[str, str, Dict[str, Any]]]:
        """(shard, key, index entry) for every payload on disk.

        Unindexed payloads are surfaced with a synthesized entry so no
        administrative pass can miss data.
        """
        for shard in self.shards():
            index = self._load_index(shard)
            directory = os.path.join(self.dir, shard)
            try:
                names = sorted(os.listdir(directory))
            except OSError:
                continue
            for name in names:
                if not name.endswith(".pkl"):
                    continue
                key = name[: -len(".pkl")]
                entry = index.get(key)
                if entry is None:
                    path = os.path.join(directory, name)
                    try:
                        stat = os.stat(path)
                    except OSError:
                        continue
                    entry = {"kind": None, "size": stat.st_size,
                             "sha256": None, "atime": stat.st_mtime,
                             "hits": 0, "unindexed": True}
                yield shard, key, entry

    def disk_stats(self) -> Dict[str, Any]:
        """Shard-by-shard sizes, entry counts, and cumulative hit counts."""
        self.flush()
        shards: Dict[str, Dict[str, Any]] = {}
        kinds: Dict[str, int] = {}
        total_bytes = 0
        total_entries = 0
        total_hits = 0
        for shard, _key, entry in self._iter_entries():
            agg = shards.setdefault(
                shard, {"entries": 0, "bytes": 0, "hits": 0})
            agg["entries"] += 1
            agg["bytes"] += entry.get("size", 0)
            agg["hits"] += entry.get("hits", 0)
            kind = entry.get("kind") or "?"
            kinds[kind] = kinds.get(kind, 0) + 1
            total_bytes += entry.get("size", 0)
            total_entries += 1
            total_hits += entry.get("hits", 0)
        return {
            "dir": self.dir,
            "salt": self.salt,
            "entries": total_entries,
            "bytes": total_bytes,
            "hits": total_hits,
            "kinds": kinds,
            "shards": shards,
        }

    def verify(self) -> List[StoreProblem]:
        """Integrity pass: every payload unpickles, hashes, and types.

        Corrupt entries are *reported*, never raised — the caller (the
        ``repro-cc cache verify`` verb) decides what to do.
        """
        problems: List[StoreProblem] = []
        kinds = registered_kinds()
        for shard, key, entry in self._iter_entries():
            path = self._payload_path(key)
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError as exc:
                problems.append(StoreProblem(key, shard,
                                             f"unreadable: {exc}"))
                continue
            want = entry.get("sha256")
            if want is not None:
                got = hashlib.sha256(data).hexdigest()
                if got != want:
                    problems.append(StoreProblem(
                        key, shard,
                        f"payload hash mismatch (index {want[:12]}, "
                        f"disk {got[:12]})"))
                    continue
            try:
                result = pickle.loads(data)
            except Exception as exc:  # noqa: BLE001 - reported
                problems.append(StoreProblem(
                    key, shard, f"does not unpickle: "
                                f"{type(exc).__name__}: {exc}"))
                continue
            kind_name = entry.get("kind")
            if kind_name is not None:
                kind = kinds.get(kind_name)
                if kind is None:
                    problems.append(StoreProblem(
                        key, shard, f"unknown kind {kind_name!r}"))
                elif not isinstance(result, kind.result_type):
                    problems.append(StoreProblem(
                        key, shard,
                        f"payload is {type(result).__name__}, kind "
                        f"{kind_name!r} expects "
                        f"{kind.result_type.__name__}"))
        return problems

    def gc(self, budget_bytes: int,
           dry_run: bool = False) -> Dict[str, Any]:
        """Evict least-recently-used entries until under *budget_bytes*.

        Returns a report; with ``dry_run`` nothing is deleted and the
        report describes what *would* go.
        """
        if budget_bytes < 0:
            raise ValueError("GC budget must be >= 0 bytes")
        self.flush()
        entries = sorted(
            self._iter_entries(),
            key=lambda item: (item[2].get("atime", 0.0), item[1]))
        total = sum(entry.get("size", 0) for _s, _k, entry in entries)
        evicted: List[Dict[str, Any]] = []
        freed = 0
        remaining = total
        for shard, key, entry in entries:
            if remaining <= budget_bytes:
                break
            size = entry.get("size", 0)
            evicted.append({"key": key, "shard": shard, "size": size,
                            "kind": entry.get("kind"),
                            "atime": entry.get("atime", 0.0)})
            freed += size
            remaining -= size
            if not dry_run:
                self._drop(key)
        if not dry_run:
            self.flush()
        return {
            "budget_bytes": budget_bytes,
            "bytes_before": total,
            "bytes_after": remaining,
            "freed_bytes": freed,
            "evicted": evicted,
            "kept": len(entries) - len(evicted),
            "dry_run": dry_run,
        }

    # -- session counters ----------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Hits over lookups this session (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """Session counters for the run manifest."""
        return {
            "dir": self.dir,
            "salt": self.salt,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "adopted_v1": self.adopted,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (f"ResultStore({self.dir!r}, hits={self.hits}, "
                f"misses={self.misses})")


def runtime_store(cache_dir: Optional[str] = None,
                  salt: Optional[str] = None) -> Optional[ResultStore]:
    """The standard-location result store, or None when caching is off.

    Mirrors the session policy every runtime entry point shares: an
    explicit directory wins, then ``$REPRO_CACHE_DIR``, else no store.
    """
    from repro.runtime.signature import code_salt

    root = cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if not root:
        return None
    return ResultStore(root, salt if salt else code_salt())

"""Job execution — runs inside worker processes (and in-process fallback).

Kept import-light and top-level so :mod:`concurrent.futures` can ship jobs
to freshly spawned interpreters on any start method.  Traces are memoised
per process: a worker that receives several configs of the same workload
(the common case — the scheduler dispatches jobs in workload order) only
builds the trace once.

This module registers the ``sim`` job kind and hosts
:func:`execute_any`, the registry-dispatched executor every pool worker
can resolve — the engine never switches on a job's type itself.

Warm-state accounting: :func:`warm_snapshot` reads the per-process
counters behind the expensive lazily-built state (specialized-kernel
compiles, trace builds, sidecar decodes); :func:`run_with_stats` wraps
one execution and returns the deltas, so the engine — and through it the
job service — can prove a warm pool did zero recompiles on a repeat.
"""

from __future__ import annotations

from time import monotonic
from typing import Any, Dict, Tuple

from repro.core.metrics import SimResult
from repro.core.processor import Processor
from repro.runtime.job import (MixJob, SimJob, mix_job_from_payload,
                               sim_job_from_payload)
from repro.runtime.registry import JobKind, kind_for, register_kind
from repro.trace.mix import MixResult
from repro.vm.trace import Trace

_SOURCE_TRACES: Dict[Tuple, Trace] = {}

#: Per-process count of traces built from inline source text (the named
#: workload path is counted via ``trace_for``'s lru_cache misses).
source_build_count = 0


def trace_for_job(job: SimJob) -> Trace:
    """Build (or fetch from the per-process memo) the job's trace."""
    if job.source_text is None:
        from repro.experiments.common import trace_for

        return trace_for(job.workload, job.scale, job.seed)
    key = (job.workload, job.source_text, job.optimize, job.opt_level,
           job.max_instructions)
    cached = _SOURCE_TRACES.get(key)
    if cached is not None:
        return cached
    trace = _trace_from_source(job)
    _SOURCE_TRACES[key] = trace
    return trace


def seed_source_trace(job: SimJob, trace: Trace) -> None:
    """Pre-populate the per-process memo with an already-built trace.

    Callers that have executed the program once (e.g. ``repro-cc sim``
    prints trace statistics before timing) seed the memo so fork-started
    workers inherit the trace instead of recompiling.
    """
    _SOURCE_TRACES[(job.workload, job.source_text, job.optimize,
                    job.opt_level, job.max_instructions)] = trace


def _trace_from_source(job: SimJob) -> Trace:
    global source_build_count

    from repro.asm import assemble
    from repro.lang import CompilerOptions, compile_source
    from repro.vm.machine import Machine

    source_build_count += 1
    if job.workload.endswith(".s"):
        program = assemble(job.source_text, source_name=job.workload)
    else:
        program = compile_source(
            job.source_text,
            CompilerOptions(source_name=job.workload,
                            optimize=job.optimize,
                            opt_level=job.opt_level),
        )
    vm = Machine(program, trace=True)
    vm.run(max_instructions=job.max_instructions or 5_000_000)
    trace = vm.trace
    assert trace is not None
    return trace


def execute_job(job: SimJob) -> SimResult:
    """Run one timing simulation to completion (pure; no cache I/O)."""
    trace = trace_for_job(job)
    return Processor(job.config).run(trace.insts, job.workload)


def execute_any(job) -> Any:
    """Execute *job* through its registered kind.

    The single executor the engine defaults to: top-level (picklable),
    kind-dispatched, and loud about unknown kinds — a spec whose kind is
    not registered raises ``RuntimeError`` naming the registered kinds.
    """
    return kind_for(job).execute(job)


# -- warm-state accounting ---------------------------------------------------

def warm_snapshot() -> Dict[str, int]:
    """Per-process counters behind the expensive warm state.

    * ``kernel_compiles`` — specialized-kernel compilations
      (:mod:`repro.core.stages.specialize`);
    * ``trace_builds``    — traces built by the functional frontend
      (named-workload memo misses plus inline-source builds);
    * ``trace_decodes``   — pre-decoded sidecar decodes and ``DynInst``
      materializations (:mod:`repro.trace.predecode`).

    A warm repeat of identical work leaves every counter unchanged.
    """
    from repro.core.stages import specialize
    from repro.experiments.common import trace_for
    from repro.trace import predecode

    return {
        "kernel_compiles": specialize.compile_count,
        "trace_builds": (trace_for.cache_info().misses
                         + source_build_count),
        "trace_decodes": predecode.decode_count,
    }


def warm_delta(before: Dict[str, int]) -> Dict[str, int]:
    """Counter movement since *before* (a :func:`warm_snapshot`)."""
    after = warm_snapshot()
    return {name: after[name] - before.get(name, 0) for name in after}


def run_with_stats(execute, job):
    """Run one job, returning ``(result, warm-state deltas)``.

    Top-level so the engine can submit it to a pool around any execute
    callable; the deltas are measured inside the worker process that
    actually ran the job.
    """
    before = warm_snapshot()
    result = execute(job)
    return result, warm_delta(before)


def run_job_batch(execute, jobs):
    """Run several jobs in one worker round trip.

    One submission amortizes the per-job IPC plus the worker's warm
    state: the per-process trace memo and the specialized-kernel cache
    (:mod:`repro.core.stages.specialize`) are both keyed so that every
    job after the first with the same workload or machine config reuses
    them.  Returns one ``("ok", result, wall_s, stats)`` or
    ``("error", message, wall_s, stats)`` quadruple per job, in order —
    a failed job never takes its batch siblings down with it.
    """
    out = []
    for job in jobs:
        t0 = monotonic()
        before = warm_snapshot()
        try:
            result = execute(job)
        except Exception as exc:  # noqa: BLE001 - reported per job
            out.append(("error", f"{type(exc).__name__}: {exc}",
                        monotonic() - t0, warm_delta(before)))
        else:
            out.append(("ok", result, monotonic() - t0,
                        warm_delta(before)))
    return out


def execute_mix_job(job):
    """Run one multi-programmed mix to completion (pure; no cache I/O).

    *job* is a :class:`repro.runtime.job.MixJob`; per-program traces
    come from the same per-process memo path as solo jobs, and the
    result is a :class:`repro.trace.mix.MixResult`.
    """
    from repro.core.multicore import run_mix
    from repro.experiments.common import trace_for

    streams = [(name, trace_for(name, job.scale, job.seed).insts)
               for name in job.workloads]
    results = run_mix(streams, job.config)
    return MixResult(job.config.notation(), results)


def encode_sim_result(result: SimResult) -> Dict[str, Any]:
    """The ``sim`` kind's JSON rendering: every field bit-identity needs."""
    return {
        "config": result.config_name,
        "workload": result.workload_name,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "ipc": result.ipc,
        "counters": result.counters.as_dict(),
    }


def encode_mix_result(result) -> Dict[str, Any]:
    """The ``mix`` kind's JSON rendering (the summary is complete)."""
    return result.summary()


register_kind(JobKind(
    "sim", SimJob, SimResult, execute_job,
    decode_spec=sim_job_from_payload,
    encode_result=encode_sim_result,
))

register_kind(JobKind(
    "mix", MixJob, MixResult, execute_mix_job,
    decode_spec=mix_job_from_payload,
    encode_result=encode_mix_result,
))

"""Job execution — runs inside worker processes (and in-process fallback).

Kept import-light and top-level so :mod:`concurrent.futures` can ship jobs
to freshly spawned interpreters on any start method.  Traces are memoised
per process: a worker that receives several configs of the same workload
(the common case — the scheduler dispatches jobs in workload order) only
builds the trace once.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.metrics import SimResult
from repro.core.processor import Processor
from repro.runtime.job import SimJob
from repro.vm.trace import Trace

_SOURCE_TRACES: Dict[Tuple, Trace] = {}


def trace_for_job(job: SimJob) -> Trace:
    """Build (or fetch from the per-process memo) the job's trace."""
    if job.source_text is None:
        from repro.experiments.common import trace_for

        return trace_for(job.workload, job.scale, job.seed)
    key = (job.workload, job.source_text, job.optimize, job.opt_level,
           job.max_instructions)
    cached = _SOURCE_TRACES.get(key)
    if cached is not None:
        return cached
    trace = _trace_from_source(job)
    _SOURCE_TRACES[key] = trace
    return trace


def seed_source_trace(job: SimJob, trace: Trace) -> None:
    """Pre-populate the per-process memo with an already-built trace.

    Callers that have executed the program once (e.g. ``repro-cc sim``
    prints trace statistics before timing) seed the memo so fork-started
    workers inherit the trace instead of recompiling.
    """
    _SOURCE_TRACES[(job.workload, job.source_text, job.optimize,
                    job.opt_level, job.max_instructions)] = trace


def _trace_from_source(job: SimJob) -> Trace:
    from repro.asm import assemble
    from repro.lang import CompilerOptions, compile_source
    from repro.vm.machine import Machine

    if job.workload.endswith(".s"):
        program = assemble(job.source_text, source_name=job.workload)
    else:
        program = compile_source(
            job.source_text,
            CompilerOptions(source_name=job.workload,
                            optimize=job.optimize,
                            opt_level=job.opt_level),
        )
    vm = Machine(program, trace=True)
    vm.run(max_instructions=job.max_instructions or 5_000_000)
    trace = vm.trace
    assert trace is not None
    return trace


def execute_job(job: SimJob) -> SimResult:
    """Run one timing simulation to completion (pure; no cache I/O)."""
    trace = trace_for_job(job)
    return Processor(job.config).run(trace.insts, job.workload)


def run_job_batch(execute, jobs):
    """Run several jobs in one worker round trip.

    One submission amortizes the per-job IPC plus the worker's warm
    state: the per-process trace memo and the specialized-kernel cache
    (:mod:`repro.core.stages.specialize`) are both keyed so that every
    job after the first with the same workload or machine config reuses
    them.  Returns one ``("ok", result, wall_s)`` or
    ``("error", message, wall_s)`` triple per job, in order — a failed
    job never takes its batch siblings down with it.
    """
    from time import monotonic

    out = []
    for job in jobs:
        t0 = monotonic()
        try:
            result = execute(job)
        except Exception as exc:  # noqa: BLE001 - reported per job
            out.append(("error", f"{type(exc).__name__}: {exc}",
                        monotonic() - t0))
        else:
            out.append(("ok", result, monotonic() - t0))
    return out


def execute_mix_job(job):
    """Run one multi-programmed mix to completion (pure; no cache I/O).

    *job* is a :class:`repro.runtime.job.MixJob`; per-program traces
    come from the same per-process memo path as solo jobs, and the
    result is a :class:`repro.trace.mix.MixResult`.
    """
    from repro.core.multicore import run_mix
    from repro.experiments.common import trace_for
    from repro.trace.mix import MixResult

    streams = [(name, trace_for(name, job.scale, job.seed).insts)
               for name in job.workloads]
    results = run_mix(streams, job.config)
    return MixResult(job.config.notation(), results)

"""repro.runtime — a parallel, cached simulation job engine.

The experiment suite is a large sweep of (workload x machine-config)
simulations, and several figures share configurations (the (2+0) baseline
appears in Figures 7, 9, 10 and 11).  This package turns those sweeps into
a deduplicated job graph executed by a multiprocessing worker pool with a
persistent on-disk result cache:

* :mod:`repro.runtime.signature` — stable content-addressed keys derived
  from the config dataclasses' fields plus a code-version salt;
* :mod:`repro.runtime.job`       — the :class:`SimJob` spec;
* :mod:`repro.runtime.cache`     — the on-disk :class:`ResultCache`;
* :mod:`repro.runtime.engine`    — the :class:`JobEngine` worker pool and
  the :class:`RuntimeSession` facade used by ``experiments.common``;
* :mod:`repro.runtime.manifest`  — run manifest + live progress reporting;
* :mod:`repro.runtime.plans`     — per-experiment job enumeration used to
  prewarm the cache before the (sequential, deterministic) render pass.

See ``docs/runtime.md`` for the architecture and the cache layout.
"""

from repro.runtime.cache import ResultCache, default_cache_dir
from repro.runtime.engine import JobEngine, JobOutcome, RuntimeSession
from repro.runtime.job import SimJob
from repro.runtime.manifest import ProgressPrinter, RunManifest
from repro.runtime.signature import (
    canonical_json,
    code_salt,
    config_signature,
    describe_config,
)

__all__ = [
    "JobEngine",
    "JobOutcome",
    "ProgressPrinter",
    "ResultCache",
    "RunManifest",
    "RuntimeSession",
    "SimJob",
    "canonical_json",
    "code_salt",
    "config_signature",
    "default_cache_dir",
    "describe_config",
]

"""repro.runtime — a layered, cached, parallel simulation job service.

The experiment suite is a large sweep of (workload x machine-config)
simulations, and several figures share configurations (the (2+0) baseline
appears in Figures 7, 9, 10 and 11).  This package turns those sweeps into
a deduplicated job graph executed by warm worker pools over a sharded
content-addressed result store, with an async service and a
design-space-exploration driver on top.  The layers, bottom up:

* :mod:`repro.runtime.signature` — stable content-addressed keys derived
  from the config dataclasses' fields plus a code-version salt;
* :mod:`repro.runtime.registry`  — the :class:`JobKind` registry: one
  protocol (spec/execute/result/codec) for every family of work;
* :mod:`repro.runtime.job`       — the :class:`SimJob`/:class:`MixJob`
  specs and the wire-payload codecs;
* :mod:`repro.runtime.store`     — the sharded :class:`ResultStore`
  (per-shard indexes, integrity verify, LRU GC, v1 migration);
* :mod:`repro.runtime.cache`     — the legacy flat :class:`ResultCache`
  (still engine-compatible via the lookup/store/flush protocol);
* :mod:`repro.runtime.engine`    — the :class:`WorkerPool`,
  :class:`JobEngine`, and the :class:`RuntimeSession` facade used by
  ``experiments.common``;
* :mod:`repro.runtime.service`   — the local async job service behind
  ``repro-cc serve`` (submit/status/result/stream over JSON);
* :mod:`repro.runtime.sweep`     — the budgeted DSE sweep driver behind
  ``repro-cc sweep``;
* :mod:`repro.runtime.manifest`  — run manifest + live progress reporting;
* :mod:`repro.runtime.plans`     — per-experiment job enumeration used to
  prewarm the store before the (sequential, deterministic) render pass.

See ``docs/runtime.md`` for the architecture and the store layout.
"""

from repro.runtime.cache import ResultCache, default_cache_dir
from repro.runtime.engine import (
    JobEngine,
    JobOutcome,
    RuntimeSession,
    WorkerPool,
)
from repro.runtime.job import MixJob, SimJob
from repro.runtime.manifest import ProgressPrinter, RunManifest
from repro.runtime.registry import (
    JobKind,
    get_kind,
    kind_for,
    register_kind,
    registered_kinds,
)
from repro.runtime.signature import (
    canonical_json,
    code_salt,
    config_signature,
    describe_config,
)
from repro.runtime.store import ResultStore

__all__ = [
    "JobEngine",
    "JobKind",
    "JobOutcome",
    "MixJob",
    "ProgressPrinter",
    "ResultCache",
    "ResultStore",
    "RunManifest",
    "RuntimeSession",
    "SimJob",
    "WorkerPool",
    "canonical_json",
    "code_salt",
    "config_signature",
    "default_cache_dir",
    "describe_config",
    "get_kind",
    "kind_for",
    "register_kind",
    "registered_kinds",
]

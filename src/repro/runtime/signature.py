"""Stable content-addressed signatures for simulation jobs.

Two ingredients make a cache key:

* the **config signature** — derived *generically* from the configuration
  objects' instance fields, so a newly added ``MachineConfig`` /
  ``MemSystemConfig`` / ``DecoupleConfig`` field is picked up automatically
  and can never silently poison the result cache;
* the **code-version salt** — a hash over the source files of every
  subpackage that affects simulation results, so editing the simulator
  invalidates stale cached results without any manual version bump.

Everything here must be stable across interpreter runs and across
processes: no builtin ``hash``, no dict-iteration-order dependence.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Tuple

_SCALARS = (bool, int, float, str, bytes, type(None))

#: Subpackages (and modules) whose source participates in the code salt.
#: ``experiments``/``runtime``/``cli`` are deliberately excluded: they
#: orchestrate simulations but cannot change a simulation's result.
_SALT_SOURCES = (
    "analysis",
    "analyze",
    "asm",
    "core",
    "fuzz",
    "isa",
    "lang",
    "mem",
    "perf",
    "pipeline",
    "stats",
    "trace",
    "vm",
    "workloads",
    "errors.py",
    "utils.py",
)

#: Subpackages that determine a *captured trace's* content: the language
#: frontend, the functional VM, and the workload generators.  The timing
#: core is deliberately absent — a kernel-only change must not invalidate
#: captured traces (replay exists precisely to skip re-running the VM),
#: while any change that could alter the committed stream must.
TRACE_SALT_SOURCES = (
    "asm",
    "isa",
    "lang",
    "vm",
    "workloads",
    "errors.py",
    "utils.py",
)


def describe_value(value: Any) -> Any:
    """*value* as a JSON-serialisable structure, recursing into objects."""
    if isinstance(value, _SCALARS):
        if isinstance(value, bytes):
            return value.hex()
        return value
    if isinstance(value, (list, tuple)):
        return [describe_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): describe_value(v) for k, v in sorted(value.items())}
    if hasattr(value, "__dict__"):
        body: Dict[str, Any] = {"__type__": type(value).__name__}
        for name, attr in sorted(vars(value).items()):
            body[name] = describe_value(attr)
        return body
    raise TypeError(
        f"cannot derive a stable signature from {type(value).__name__!r}"
    )


def describe_config(config: Any) -> Dict[str, Any]:
    """Every field of *config* (recursively) as a JSON-serialisable dict."""
    return describe_value(config)


def _freeze(value: Any) -> Any:
    """A hashable (tuple-based) mirror of :func:`describe_value` output."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple((k, _freeze(v)) for k, v in sorted(value.items()))
    return value


def config_signature(config: Any) -> Tuple:
    """A hashable signature covering *every* field of *config*.

    Unlike a hand-maintained field list, this cannot drift when a config
    class grows a knob.
    """
    return _freeze(describe_config(config))


def canonical_json(obj: Any) -> str:
    """Deterministic JSON used for hashing and for manifest payloads."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def digest(text: str) -> str:
    """Hex SHA-256 of *text*."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


_CODE_SALT: Dict[str, str] = {}


def source_salt(entries: Tuple[str, ...], extra: str = "") -> str:
    """16-hex-char hash over the named subpackages' source (+ *extra*).

    The building block behind :func:`code_salt` and the trace capture
    salt (:func:`repro.trace.capture.capture_salt`): stable across
    processes, sensitive to every byte of the listed sources.
    """
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    hasher = hashlib.sha256()
    if extra:
        hasher.update(extra.encode("utf-8"))
    for entry in entries:
        path = os.path.join(package_root, entry)
        for source in sorted(_python_files(path)):
            hasher.update(os.path.relpath(source, package_root).encode())
            with open(source, "rb") as handle:
                hasher.update(handle.read())
    return hasher.hexdigest()[:16]


def code_salt() -> str:
    """Hash of the simulator's source code (cached per process).

    ``REPRO_CACHE_SALT`` overrides the computed value — tests use this to
    exercise invalidation, and deployments can pin it to share a cache
    across trivially different checkouts.
    """
    override = os.environ.get("REPRO_CACHE_SALT")
    if override:
        return override
    cached = _CODE_SALT.get("salt")
    if cached is not None:
        return cached
    salt = source_salt(_SALT_SOURCES)
    _CODE_SALT["salt"] = salt
    return salt


def _python_files(path: str):
    if os.path.isfile(path):
        yield path
        return
    for root, _dirs, files in os.walk(path):
        for name in files:
            if name.endswith(".py"):
                yield os.path.join(root, name)

"""Per-experiment job enumeration (the scheduler's shopping list).

``jobs_for(name, scale)`` mirrors each experiment module's default sweep —
using the *same* constants the modules themselves export — so the runner
can prewarm the cache in parallel before the (sequential) render pass.

Fidelity here is a performance concern, never a correctness one: the
render pass recomputes anything a plan missed, and a planned job that the
experiment no longer needs just warms an unused cache entry.  The test
suite asserts the plans stay in sync with what the experiments actually
execute.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence

from repro.experiments import (
    ablation_multiport,
    ablation_realism,
    ablation_window,
    disc_small_l1,
    fig5_bandwidth,
    fig7_ports,
    fig8_combining,
    fig11_programs,
    mix_interference,
    opt_levels,
)
from repro.experiments.common import nm_config
from repro.runtime.job import SimJob
from repro.workloads.spec import ALL_PROGRAMS, INT_PROGRAMS


def _jobs(programs: Sequence[str], configs: Iterable, scale: float
          ) -> List[SimJob]:
    configs = list(configs)
    return [SimJob(name, config, scale=scale)
            for name in programs for config in configs]


def _fig7_like(scale: float, programs: Sequence[str],
               n_values: Sequence[int], m_values: Sequence[int],
               fast_forwarding: bool, combining: int) -> List[SimJob]:
    out: List[SimJob] = []
    for name in programs:
        out.append(SimJob(name, nm_config(2, 0), scale=scale))
        for n in n_values:
            for m in m_values:
                config = nm_config(n, m, fast_forwarding=fast_forwarding,
                                   combining=combining if m else 1)
                out.append(SimJob(name, config, scale=scale))
    return out


def _plan_table3(scale: float) -> List[SimJob]:
    return _jobs(ALL_PROGRAMS,
                 [nm_config(3, 2), nm_config(3, 2, fast_forwarding=True)],
                 scale)


def _plan_fig5(scale: float) -> List[SimJob]:
    ports = list(fig5_bandwidth.PORT_COUNTS) + [fig5_bandwidth.LIMIT_PORTS]
    return _jobs(ALL_PROGRAMS, [nm_config(n, 0) for n in ports], scale)


def _plan_fig7(scale: float) -> List[SimJob]:
    return _fig7_like(scale, ALL_PROGRAMS, fig7_ports.N_VALUES,
                      fig7_ports.M_VALUES, False, 1)


def _plan_fig8(scale: float) -> List[SimJob]:
    configs = [nm_config(n, m, combining=degree)
               for n, m in fig8_combining.CONFIGS
               for degree in fig8_combining.DEGREES]
    return _jobs(INT_PROGRAMS, configs, scale)


def _plan_fig9(scale: float) -> List[SimJob]:
    return _fig7_like(scale, ALL_PROGRAMS, fig7_ports.N_VALUES,
                      fig7_ports.M_VALUES, True, 2)


def _plan_fig10(scale: float) -> List[SimJob]:
    configs = [
        nm_config(2, 0),
        nm_config(2, 2, fast_forwarding=True, combining=2),
        nm_config(4, 0),
        nm_config(4, 0, l1_hit_latency=3),
    ]
    return _jobs(ALL_PROGRAMS, configs, scale)


def _plan_fig11(scale: float) -> List[SimJob]:
    return _fig7_like(scale, fig11_programs.PROGRAMS,
                      fig11_programs.N_VALUES, fig11_programs.M_VALUES,
                      True, 2)


def _plan_ablation_multiport(scale: float) -> List[SimJob]:
    return _jobs(INT_PROGRAMS, ablation_multiport._configs().values(),
                 scale)


def _plan_ablation_realism(scale: float) -> List[SimJob]:
    configs = [config
               for pair in ablation_realism._configs().values()
               for config in pair.values()]
    return _jobs(INT_PROGRAMS, configs, scale)


def _plan_ablation_window(scale: float) -> List[SimJob]:
    configs = ([ablation_window._config(rob=size)
                for size in ablation_window.ROB_SIZES]
               + [ablation_window._config(lvaq=size)
                  for size in ablation_window.LVAQ_SIZES])
    return _jobs(ablation_window.PROGRAMS, configs, scale)


def _plan_disc_small_l1(scale: float) -> List[SimJob]:
    configs = []
    for latency in disc_small_l1.L2_LATENCIES:
        configs.append(nm_config(2, 0, l2_latency=latency))
        configs.append(nm_config(2, 0, l1_size=2 * 1024, l1_assoc=1,
                                 l1_hit_latency=1, l2_latency=latency))
    return _jobs(INT_PROGRAMS, configs, scale)


def _plan_mix_interference(scale: float) -> List[SimJob]:
    """Only the *solo* baselines are SimJobs; the mixes themselves run
    through the mix-typed engine inside the experiment."""
    programs = sorted({name for pair in mix_interference.MIX_PAIRS
                       for name in pair})
    configs = [make() for make in mix_interference.CONFIGS.values()]
    return _jobs(programs, configs, scale)


def _plan_opt_levels(scale: float) -> List[SimJob]:
    workloads = [f"{name}@O{level}"
                 for name in opt_levels.PROGRAMS
                 for level in opt_levels.LEVELS]
    return _jobs(workloads, opt_levels.configs().values(), scale)


#: Experiments absent here (table1/table2/fig2/fig3/fig6) run no timing
#: simulations in their ``main()`` — there is nothing to prewarm.
PLANNERS: Dict[str, Callable[[float], List[SimJob]]] = {
    "table3": _plan_table3,
    "fig5": _plan_fig5,
    "fig7": _plan_fig7,
    "fig8": _plan_fig8,
    "fig9": _plan_fig9,
    "fig10": _plan_fig10,
    "fig11": _plan_fig11,
    "ablation-multiport": _plan_ablation_multiport,
    "ablation-realism": _plan_ablation_realism,
    "ablation-window": _plan_ablation_window,
    "disc-small-l1": _plan_disc_small_l1,
    "mix-interference": _plan_mix_interference,
    "opt-levels": _plan_opt_levels,
}


def jobs_for(name: str, scale: float) -> List[SimJob]:
    """Every timing simulation experiment *name* will request (pre-dedup)."""
    planner = PLANNERS.get(name)
    return planner(scale) if planner is not None else []


def collect(names: Iterable[str], scale: float) -> List[SimJob]:
    """The union of all named experiments' jobs (dedup happens in the
    engine, but the shared (2+0) baselines already collapse there)."""
    out: List[SimJob] = []
    for name in names:
        out.extend(jobs_for(name, scale))
    return out

"""The async job service: submit/status/result/stream over local JSON.

``repro-cc serve`` turns the runtime stack into a long-lived process —
one warm :class:`~repro.runtime.engine.WorkerPool`, one sharded
:class:`~repro.runtime.store.ResultStore` — that accepts job batches over
a local HTTP API and runs them through the same
:class:`~repro.runtime.engine.JobEngine` the CLIs use, so a result
computed through the service is bit-identical to one computed directly.

Endpoints (all JSON):

* ``POST /submit``              — ``{"jobs": [payload, ...]}``; each
  payload names its kind (``{"kind": "sim", "workload": ..., "config":
  ...}`` — see :func:`repro.runtime.registry.decode_job`); returns
  ``{"batch": id, "keys": [...]}``.
* ``GET /status``               — service-wide: batches, warm pool,
  store counters, cumulative warm-state movement.
* ``GET /status/<batch>``       — one batch: state, done/total, per-batch
  warm counters (all-zero on a warm repeat — the service's proof that
  nothing was recompiled).
* ``GET /result/<key>``         — the stored result, JSON-rendered by its
  kind; ``?format=pickle`` returns the exact result object
  (base64-pickled) for bit-identity checks.
* ``GET /stream/<batch>``       — newline-delimited JSON progress events,
  held open until the batch completes.
* ``POST /shutdown``            — drain and stop.

The service is deliberately **local-first**: it binds a loopback TCP
port, speaks stdlib-only HTTP (no new dependencies), and trusts its
clients — it is a build-machine experiment daemon, not an internet
service.
"""

from __future__ import annotations

import base64
import json
import pickle
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterator, List, Optional

from repro.runtime.engine import JobEngine, RuntimeSession
from repro.runtime.registry import decode_job, encode_result, kind_for


class ServiceError(RuntimeError):
    """A client-visible service failure (maps to an HTTP error)."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class Batch:
    """One submitted batch of jobs and everything observed about it."""

    __slots__ = ("id", "jobs", "state", "done", "total", "events",
                 "warm", "summary", "error", "submitted_at",
                 "finished_at")

    def __init__(self, batch_id: str, jobs: List[Any]):
        self.id = batch_id
        self.jobs = jobs
        self.state = "queued"     # "queued" | "running" | "done" | "failed"
        self.done = 0
        self.total = len(jobs)
        self.events: List[Dict[str, Any]] = []
        self.warm: Dict[str, int] = {}
        self.summary: Dict[str, Any] = {}
        self.error: Optional[str] = None
        self.submitted_at = time.time()
        self.finished_at: Optional[float] = None

    def status(self) -> Dict[str, Any]:
        return {
            "batch": self.id,
            "state": self.state,
            "done": self.done,
            "total": self.total,
            "keys": [job.key for job in self.jobs],
            "warm": self.warm,
            "summary": self.summary,
            "error": self.error,
        }


class JobService:
    """The engine room behind the HTTP front: queue, scheduler, results.

    One background scheduler thread drains the batch queue through one
    :class:`RuntimeSession` whose warm pool and result store persist for
    the service's whole life — that persistence is the point: the second
    submission of a batch finds every trace memo, specialized kernel,
    and pre-decoded sidecar already in the workers, and its per-batch
    warm counters come back all-zero.
    """

    def __init__(self, jobs: int = 1, cache_dir: Optional[str] = None,
                 no_cache: bool = False, timeout: Optional[float] = None,
                 retries: int = 1, batch: int = 1):
        self.session = RuntimeSession(
            jobs=jobs, cache_dir=cache_dir, no_cache=no_cache,
            timeout=timeout, retries=retries, batch=batch,
            keep_pool=True)
        self._lock = threading.Condition()
        self._queue: List[Batch] = []
        self._batches: Dict[str, Batch] = {}
        self._results: Dict[str, Any] = {}
        self._jobs_by_key: Dict[str, Any] = {}
        self._warm_total = {"kernel_compiles": 0, "trace_builds": 0,
                            "trace_decodes": 0}
        self._serial = 0
        self._stopping = False
        self._scheduler = threading.Thread(
            target=self._drain, name="repro-job-scheduler", daemon=True)
        self._scheduler.start()

    # -- submission ---------------------------------------------------------

    def submit_payloads(self, payloads: List[Dict[str, Any]]) -> Batch:
        """Decode wire payloads into job specs and enqueue one batch."""
        if not isinstance(payloads, list) or not payloads:
            raise ServiceError("submit body needs a non-empty 'jobs' list")
        try:
            jobs = [decode_job(payload) for payload in payloads]
        except Exception as exc:  # noqa: BLE001 - client error, report it
            raise ServiceError(f"bad job payload: {exc}") from exc
        return self.submit_jobs(jobs)

    def submit_jobs(self, jobs: List[Any]) -> Batch:
        """Enqueue already-constructed job specs as one batch."""
        with self._lock:
            if self._stopping:
                raise ServiceError("service is shutting down", status=503)
            self._serial += 1
            batch = Batch(f"b{self._serial:04d}", jobs)
            self._batches[batch.id] = batch
            for job in jobs:
                self._jobs_by_key[job.key] = job
            self._queue.append(batch)
            self._lock.notify_all()
        return batch

    # -- the scheduler thread ----------------------------------------------

    def _drain(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._stopping:
                    self._lock.wait()
                if self._stopping and not self._queue:
                    return
                batch = self._queue.pop(0)
                batch.state = "running"
                self._event(batch, {"event": "batch-start",
                                    "total": batch.total})
            try:
                self._run_batch(batch)
            except Exception as exc:  # noqa: BLE001 - batch fails, not svc
                with self._lock:
                    batch.state = "failed"
                    batch.error = f"{type(exc).__name__}: {exc}"
                    batch.finished_at = time.time()
                    self._event(batch, {"event": "batch-failed",
                                        "error": batch.error})

    def _run_batch(self, batch: Batch) -> None:
        def progress(status, outcome, done, total):
            with self._lock:
                batch.done = done
                self._event(batch, {
                    "event": "job",
                    "status": status,
                    "key": outcome.job.key,
                    "label": outcome.job.label(),
                    "done": done,
                    "total": total,
                    "wall": round(outcome.wall, 4),
                    "error": outcome.error,
                    "stats": outcome.stats,
                })

        engine = self.session.engine()
        engine.progress = progress
        report = engine.run(batch.jobs)
        with self._lock:
            for key, outcome in report.outcomes.items():
                if outcome.result is not None:
                    self._results[key] = outcome.result
            batch.warm = report.warm()
            for name, value in batch.warm.items():
                self._warm_total[name] = (self._warm_total.get(name, 0)
                                          + value)
            batch.summary = {
                "ran": report.ran,
                "cached": report.cached,
                "failed": len(report.failed),
                "elapsed": round(report.elapsed, 4),
                "duplicates": report.duplicates,
            }
            batch.state = "done"
            batch.done = batch.total
            batch.finished_at = time.time()
            self._event(batch, {"event": "batch-done",
                                "warm": batch.warm,
                                "summary": batch.summary})

    def _event(self, batch: Batch, body: Dict[str, Any]) -> None:
        body["seq"] = len(batch.events)
        body["batch"] = batch.id
        batch.events.append(body)
        self._lock.notify_all()

    # -- queries ------------------------------------------------------------

    def status(self, batch_id: Optional[str] = None) -> Dict[str, Any]:
        with self._lock:
            if batch_id is not None:
                batch = self._batches.get(batch_id)
                if batch is None:
                    raise ServiceError(f"unknown batch {batch_id!r}",
                                       status=404)
                return batch.status()
            store = self.session.cache
            pool = self.session.pool
            return {
                "batches": [b.status() for b in self._batches.values()],
                "queued": len(self._queue),
                "warm_total": dict(self._warm_total),
                "pool": ({"workers": pool.workers, "alive": pool.alive,
                          "rebuilds": pool.rebuilds,
                          "submissions": pool.submissions}
                         if pool is not None else None),
                "store": store.stats() if store is not None else None,
            }

    def events_since(self, batch_id: str, seq: int,
                     wait_s: float = 10.0) -> List[Dict[str, Any]]:
        """Events after *seq*, blocking up to *wait_s* for new ones."""
        deadline = time.monotonic() + wait_s
        with self._lock:
            batch = self._batches.get(batch_id)
            if batch is None:
                raise ServiceError(f"unknown batch {batch_id!r}",
                                   status=404)
            while (len(batch.events) <= seq
                   and batch.state in ("queued", "running")):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._lock.wait(remaining)
            return list(batch.events[seq:])

    def result(self, key: str, fmt: str = "json") -> Dict[str, Any]:
        with self._lock:
            result = self._results.get(key)
            job = self._jobs_by_key.get(key)
        if result is None and job is not None:
            store = self.session.cache
            kind = kind_for(job, required=False)
            if store is not None and kind is not None and kind.cacheable:
                result = store.lookup(job)
        if result is None or job is None:
            raise ServiceError(f"no result for key {key!r}", status=404)
        if fmt == "pickle":
            blob = base64.b64encode(
                pickle.dumps(result, protocol=4)).decode("ascii")
            return {"key": key, "format": "pickle", "pickle": blob}
        return {"key": key, "format": "json",
                "result": encode_result(job, result)}

    def shutdown(self) -> None:
        with self._lock:
            self._stopping = True
            self._lock.notify_all()
        self._scheduler.join(timeout=30)
        self.session.close()


# -- the HTTP front ----------------------------------------------------------

def _make_handler(service: JobService, server_box: Dict[str, Any]):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt, *args):  # noqa: A003 - quiet by default
            pass

        def _reply(self, payload: Dict[str, Any], status: int = 200):
            body = (json.dumps(payload) + "\n").encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, exc: Exception):
            status = exc.status if isinstance(exc, ServiceError) else 500
            self._reply({"error": str(exc)}, status=status)

        def _body(self) -> Dict[str, Any]:
            length = int(self.headers.get("Content-Length") or 0)
            if not length:
                return {}
            try:
                return json.loads(self.rfile.read(length))
            except ValueError as exc:
                raise ServiceError(f"bad JSON body: {exc}") from exc

        def do_POST(self):  # noqa: N802 - http.server API
            try:
                if self.path == "/submit":
                    body = self._body()
                    batch = service.submit_payloads(body.get("jobs"))
                    self._reply({"batch": batch.id,
                                 "keys": [j.key for j in batch.jobs]})
                elif self.path == "/shutdown":
                    self._reply({"ok": True})
                    threading.Thread(
                        target=server_box["server"].shutdown,
                        daemon=True).start()
                else:
                    raise ServiceError(f"no such endpoint {self.path!r}",
                                       status=404)
            except Exception as exc:  # noqa: BLE001
                self._error(exc)

        def do_GET(self):  # noqa: N802 - http.server API
            try:
                path, _, query = self.path.partition("?")
                params = dict(
                    part.split("=", 1) for part in query.split("&")
                    if "=" in part)
                if path == "/status":
                    self._reply(service.status())
                elif path.startswith("/status/"):
                    self._reply(service.status(path[len("/status/"):]))
                elif path.startswith("/result/"):
                    key = path[len("/result/"):]
                    self._reply(service.result(
                        key, fmt=params.get("format", "json")))
                elif path.startswith("/stream/"):
                    self._stream(path[len("/stream/"):])
                else:
                    raise ServiceError(f"no such endpoint {path!r}",
                                       status=404)
            except Exception as exc:  # noqa: BLE001
                self._error(exc)

        def _stream(self, batch_id: str):
            """Newline-delimited JSON events until the batch finishes."""
            # Probe first so an unknown batch is a clean 404, not a
            # half-started chunked response.
            service.events_since(batch_id, 0, wait_s=0)
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()

            def chunk(data: bytes):
                self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
                self.wfile.write(data + b"\r\n")

            seq = 0
            while True:
                events = service.events_since(batch_id, seq, wait_s=10.0)
                for event in events:
                    chunk((json.dumps(event) + "\n").encode("utf-8"))
                    seq = event["seq"] + 1
                self.wfile.flush()
                status = service.status(batch_id)
                if status["state"] in ("done", "failed") and not events:
                    break
            chunk(b"")  # terminal zero-length chunk

    return Handler


class ServiceHandle:
    """A started server: address, service, and a clean stop."""

    def __init__(self, server: ThreadingHTTPServer, service: JobService,
                 thread: threading.Thread):
        self.server = server
        self.service = service
        self.thread = thread

    @property
    def url(self) -> str:
        host, port = self.server.server_address[:2]
        return f"http://{host}:{port}"

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.service.shutdown()
        self.thread.join(timeout=10)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_service(host: str = "127.0.0.1", port: int = 0,
                  **service_kwargs) -> ServiceHandle:
    """Start the job service on a background thread; returns a handle.

    ``port=0`` binds an ephemeral port — read it back from ``.url``.
    """
    service = JobService(**service_kwargs)
    server_box: Dict[str, Any] = {}
    server = ThreadingHTTPServer(
        (host, port), _make_handler(service, server_box))
    server.daemon_threads = True
    server_box["server"] = server
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-job-service", daemon=True)
    thread.start()
    return ServiceHandle(server, service, thread)


def serve_forever(host: str = "127.0.0.1", port: int = 7399,
                  **service_kwargs) -> int:
    """Blocking entry point for ``repro-cc serve``."""
    handle = start_service(host=host, port=port, **service_kwargs)
    print(f"repro-cc serve: listening on {handle.url} "
          f"(jobs={handle.service.session.jobs}, "
          f"store={'on' if handle.service.session.cache else 'off'})")
    try:
        handle.thread.join()
    except KeyboardInterrupt:
        pass
    finally:
        handle.stop()
    return 0


# -- the client --------------------------------------------------------------

class ServiceClient:
    """Talk to a running job service (stdlib urllib; no dependencies)."""

    def __init__(self, url: str, timeout: float = 60.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _request(self, path: str, body: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
        import urllib.error
        import urllib.request

        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        request = urllib.request.Request(
            self.url + path, data=data,
            headers={"Content-Type": "application/json"},
            method="POST" if data is not None else "GET")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as reply:
                return json.loads(reply.read())
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read()).get("error", "")
            except Exception:  # noqa: BLE001
                detail = ""
            raise ServiceError(detail or str(exc),
                               status=exc.code) from exc

    def submit(self, payloads: List[Dict[str, Any]]) -> Dict[str, Any]:
        return self._request("/submit", {"jobs": payloads})

    def status(self, batch_id: Optional[str] = None) -> Dict[str, Any]:
        path = "/status" if batch_id is None else f"/status/{batch_id}"
        return self._request(path)

    def result(self, key: str, fmt: str = "json") -> Dict[str, Any]:
        return self._request(f"/result/{key}?format={fmt}")

    def result_object(self, key: str) -> Any:
        """The exact result object (for bit-identity comparisons)."""
        reply = self.result(key, fmt="pickle")
        return pickle.loads(base64.b64decode(reply["pickle"]))

    def stream(self, batch_id: str) -> Iterator[Dict[str, Any]]:
        """Yield progress events until the batch completes."""
        import urllib.error
        import urllib.request

        request = urllib.request.Request(self.url + f"/stream/{batch_id}")
        try:
            reply = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read()).get("error", "")
            except Exception:  # noqa: BLE001
                detail = ""
            raise ServiceError(detail or str(exc),
                               status=exc.code) from exc
        with reply:
            for line in reply:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def wait(self, batch_id: str, timeout: float = 600.0
             ) -> Dict[str, Any]:
        """Block until the batch is done (or failed); returns its status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(batch_id)
            if status["state"] in ("done", "failed"):
                return status
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"batch {batch_id} still {status['state']} after "
                    f"{timeout}s", status=504)
            time.sleep(0.1)

    def shutdown(self) -> None:
        self._request("/shutdown", {})

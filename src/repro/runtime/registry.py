"""The job-kind registry: one protocol for every unit of schedulable work.

Before this module existed, each job family grew its own plumbing — the
engine took an explicit ``execute`` callable, the cache a ``result_type``
class, the service layer would have needed a dispatch table of its own.
A :class:`JobKind` bundles everything the runtime needs to know about a
family of jobs in one registration:

* ``spec_type``   — the job-spec class (``SimJob``, ``MixJob``, ...);
* ``result_type`` — what an execution produces (integrity gate for the
  result store: a deserialized payload of any other type is a miss);
* ``execute``     — a **top-level, picklable** function mapping a spec to
  a result, so process-pool workers can run any kind;
* ``decode_spec`` — optional JSON-payload -> spec constructor (the job
  service's submission path; kinds without one are not submittable
  over the wire);
* ``encode_result`` — optional result -> JSON-able dict (the service's
  ``/result`` endpoint);
* ``cacheable``   — whether the engine should route results through the
  result store (trace captures own their store and opt out).

Job specs advertise their kind with a ``kind`` class attribute; the
common spec surface (``key``, ``describe()``, ``label()``, and the
``workload``/``scale``/``seed`` scheduling hints) is unchanged.

Builtin kinds register at import time of their home module; lookups
that miss trigger :func:`ensure_builtin_kinds`, which imports those
modules, so a fresh worker process resolves any builtin kind without
the parent having to pre-import anything.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

#: Modules whose import registers the builtin job kinds.  This is a
#: plugin-loading list, not a dispatch table: execution always goes
#: through the registered :class:`JobKind` object.
_BUILTIN_MODULES = (
    "repro.runtime.worker",      # sim, mix
    "repro.fuzz.campaign",       # fuzz
    "repro.trace.capture",       # trace
)


class JobKind:
    """Everything the runtime needs to know about one job family."""

    __slots__ = ("name", "spec_type", "result_type", "execute",
                 "decode_spec", "encode_result", "cacheable")

    def __init__(self, name: str, spec_type: type, result_type: type,
                 execute: Callable[[Any], Any],
                 decode_spec: Optional[Callable[[Dict[str, Any]], Any]] = None,
                 encode_result: Optional[Callable[[Any], Dict[str, Any]]] = None,
                 cacheable: bool = True):
        self.name = name
        self.spec_type = spec_type
        self.result_type = result_type
        self.execute = execute
        self.decode_spec = decode_spec
        self.encode_result = encode_result
        self.cacheable = cacheable

    def __repr__(self) -> str:
        return (f"JobKind({self.name!r}, {self.spec_type.__name__} -> "
                f"{self.result_type.__name__})")


_KINDS: Dict[str, JobKind] = {}
_ENSURED = False


def register_kind(kind: JobKind) -> JobKind:
    """Register *kind* (idempotent for an identical re-registration)."""
    existing = _KINDS.get(kind.name)
    if existing is not None and existing.spec_type is not kind.spec_type:
        raise RuntimeError(
            f"job kind {kind.name!r} already registered for "
            f"{existing.spec_type.__name__}")
    _KINDS[kind.name] = kind
    return kind


def ensure_builtin_kinds() -> None:
    """Import every module that registers a builtin kind (once)."""
    global _ENSURED
    if _ENSURED:
        return
    _ENSURED = True
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def registered_kinds() -> Dict[str, JobKind]:
    """Name -> kind for every registered kind (builtin kinds loaded)."""
    ensure_builtin_kinds()
    return dict(_KINDS)


def get_kind(name: str) -> JobKind:
    """The kind registered under *name*; unknown names fail loudly."""
    ensure_builtin_kinds()
    kind = _KINDS.get(name)
    if kind is None:
        raise RuntimeError(
            f"unknown job kind {name!r}; registered kinds: "
            f"{', '.join(sorted(_KINDS)) or '(none)'}")
    return kind


def kind_for(job: Any, required: bool = True) -> Optional[JobKind]:
    """The :class:`JobKind` a job spec belongs to.

    With ``required`` (the default) a spec without a ``kind`` attribute
    or with an unregistered one raises ``RuntimeError`` naming the
    registered kinds; ``required=False`` returns None instead (legacy
    callers that bring their own ``execute`` and cache).
    """
    name = getattr(job, "kind", None)
    if name is None:
        if required:
            raise RuntimeError(
                f"job spec {type(job).__name__} declares no job kind; "
                f"registered kinds: "
                f"{', '.join(sorted(registered_kinds())) or '(none)'}")
        return None
    if not required:
        ensure_builtin_kinds()
        return _KINDS.get(name)
    return get_kind(name)


def decode_job(payload: Dict[str, Any]) -> Any:
    """Build a job spec from a service-submission payload.

    The payload names its kind (``{"kind": "sim", ...}``); the kind's
    ``decode_spec`` does the rest.  Kinds without a decoder are not
    submittable and say so.
    """
    if not isinstance(payload, dict):
        raise RuntimeError(f"job payload must be an object, "
                           f"got {type(payload).__name__}")
    kind = get_kind(payload.get("kind", "<missing>"))
    if kind.decode_spec is None:
        submittable = sorted(name for name, k in registered_kinds().items()
                             if k.decode_spec is not None)
        raise RuntimeError(
            f"job kind {kind.name!r} is not submittable over the service "
            f"API; submittable kinds: {', '.join(submittable) or '(none)'}")
    return kind.decode_spec(payload)


def encode_result(job: Any, result: Any) -> Dict[str, Any]:
    """JSON-able rendering of *result* via the job's kind."""
    kind = kind_for(job)
    if kind.encode_result is None:
        return {"repr": repr(result)}
    return kind.encode_result(result)

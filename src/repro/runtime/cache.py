"""Persistent, content-addressed simulation-result cache.

Layout (under ``--cache-dir``, ``$REPRO_CACHE_DIR``, or ``~/.cache/repro``)::

    <cache_dir>/
      v1/
        <code_salt>/           one directory per simulator code version
          <key[:2]>/
            <key>.pkl          pickled SimResult
            <key>.json         the job description (debuggability only)

The two-level fan-out keeps directories small on big sweeps.  Writes are
atomic (temp file + ``os.replace``) so concurrent workers and concurrent
``repro-experiments`` invocations can share one cache directory; a corrupt
or truncated entry is treated as a miss and deleted.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from typing import Any, Dict, Optional

from repro.core.metrics import SimResult

_FORMAT = "v1"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or the conventional per-user cache location."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


class ResultCache:
    """On-disk result store keyed by (code salt, job key).

    ``result_type`` is the payload class the cache accepts back out:
    timing simulations store :class:`SimResult` (the default), while other
    job families (the fuzz campaign's shard results, say) pass their own.
    A deserialized entry of any other type is treated as a miss, so one
    cache directory can safely hold several job families — their
    content-addressed keys never collide meaningfully, and a stray
    cross-family hit is rejected here.
    """

    def __init__(self, root: str, salt: str, result_type: type = SimResult):
        self.root = root
        self.salt = salt
        self.result_type = result_type
        self.dir = os.path.join(root, _FORMAT, salt)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, key: str, suffix: str = ".pkl") -> str:
        return os.path.join(self.dir, key[:2], key + suffix)

    def get(self, key: str) -> Optional[Any]:
        """The cached result for *key*, or None (corrupt entries = miss)."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Truncated/corrupt (e.g. a killed writer pre-os.replace on a
            # filesystem without atomic rename): drop it and recompute.
            try:
                os.remove(path)
            except OSError:
                pass
            self.misses += 1
            return None
        if not isinstance(result, self.result_type):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: Any,
            meta: Optional[Dict[str, Any]] = None) -> None:
        """Store *result* under *key* atomically."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        self._write_atomic(path, pickle.dumps(result, protocol=4))
        if meta is not None:
            self._write_atomic(self._path(key, ".json"),
                               json.dumps(meta, sort_keys=True,
                                          indent=2).encode("utf-8"))
        self.writes += 1

    @staticmethod
    def _write_atomic(path: str, payload: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise

    # -- engine store protocol ----------------------------------------------
    #
    # The job engine talks to its cache through lookup(job)/store(job,
    # result)/flush() — the sharded :class:`repro.runtime.store.ResultStore`
    # is the primary implementation; these shims keep the legacy flat
    # cache drop-in compatible (tests and pinned-salt tools still build
    # one directly).

    def lookup(self, job) -> Optional[Any]:
        """Engine-protocol alias for :meth:`get`."""
        return self.get(job.key)

    def store(self, job, result: Any) -> None:
        """Engine-protocol alias for :meth:`put`."""
        self.put(job.key, result, meta=job.describe())

    def flush(self) -> None:
        """No-op: the flat cache writes through on every ``put``."""

    @property
    def hit_rate(self) -> float:
        """Hits over lookups this session (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """Session counters for the run manifest."""
        return {
            "dir": self.dir,
            "salt": self.salt,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return f"ResultCache({self.dir!r}, hits={self.hits}, misses={self.misses})"

"""The job engine: deduplicated fan-out over a process pool, with cache.

Scheduling model
----------------

``JobEngine.run`` takes any iterable of :class:`SimJob` specs and:

1. **dedupes** them by content-addressed key (the (2+0) baseline shows up
   in four different figures — it runs once);
2. answers what it can from the :class:`ResultCache`;
3. fans the misses out across a ``ProcessPoolExecutor``, dispatching in
   workload order so each worker's per-process trace memo gets reuse;
4. enforces a **per-job timeout** (a wave-dispatch deadline per future),
   **bounded retries**, and **graceful degradation**: a hung worker is
   killed and the pool rebuilt; a died worker (``BrokenProcessPool``)
   retries and finally falls back to in-process execution; an engine that
   cannot create a pool at all just runs everything inline.

Determinism: a simulation is a pure function of its job spec, so parallel
execution is bit-identical to sequential execution — the engine only
changes *when* a result is computed, never *what* it is.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.metrics import SimResult
from repro.runtime.cache import ResultCache
from repro.runtime.job import SimJob
from repro.runtime.signature import code_salt
from repro.runtime.worker import execute_job, run_job_batch

ProgressFn = Callable[[str, "JobOutcome", int, int], None]


class JobOutcome:
    """What happened to one deduplicated job."""

    __slots__ = ("job", "status", "result", "wall", "attempts", "worker",
                 "error")

    def __init__(self, job: SimJob, status: str,
                 result: Optional[SimResult] = None, wall: float = 0.0,
                 attempts: int = 0, worker: str = "inline",
                 error: Optional[str] = None):
        self.job = job
        self.status = status      # "cached" | "ran" | "failed" | "timeout"
        self.result = result
        self.wall = wall
        self.attempts = attempts
        self.worker = worker      # "cache" | "pool" | "inline"
        self.error = error

    @property
    def ok(self) -> bool:
        return self.status in ("cached", "ran")

    def __repr__(self) -> str:
        return (f"JobOutcome({self.job.label()}, {self.status}, "
                f"wall={self.wall:.2f}s)")


class EngineReport:
    """Aggregate view of one ``JobEngine.run`` call."""

    def __init__(self, outcomes: Dict[str, JobOutcome], elapsed: float,
                 duplicates: int, workers: int):
        self.outcomes = outcomes
        self.elapsed = elapsed
        self.duplicates = duplicates
        self.workers = workers

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.status == "cached")

    @property
    def ran(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.status == "ran")

    @property
    def failed(self) -> List[JobOutcome]:
        return [o for o in self.outcomes.values() if not o.ok]

    @property
    def cache_hit_rate(self) -> float:
        total = len(self.outcomes)
        return self.cached / total if total else 0.0

    @property
    def busy(self) -> float:
        """Total worker-seconds spent simulating (excludes cache hits)."""
        return sum(o.wall for o in self.outcomes.values()
                   if o.status == "ran")

    @property
    def utilization(self) -> float:
        """Busy worker-seconds over available worker-seconds."""
        capacity = self.elapsed * max(1, self.workers)
        return min(1.0, self.busy / capacity) if capacity else 0.0

    def results(self) -> Dict[str, SimResult]:
        """key -> SimResult for every successful job."""
        return {key: o.result for key, o in self.outcomes.items()
                if o.result is not None}


class JobEngine:
    """Runs a batch of jobs with dedup, cache, pool, timeout and retries."""

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 timeout: Optional[float] = None, retries: int = 1,
                 progress: Optional[ProgressFn] = None,
                 max_pool_rebuilds: int = 3, batch: int = 1):
        if jobs < 1:
            raise ValueError("worker count must be >= 1")
        if batch < 1:
            raise ValueError("batch size must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self.max_pool_rebuilds = max_pool_rebuilds
        self.batch = batch
        self._rebuilds = 0

    # -- public entry -------------------------------------------------------

    def run(self, jobs: Iterable[SimJob],
            execute: Callable[[SimJob], SimResult] = execute_job
            ) -> EngineReport:
        """Execute every job (deduplicated), returning per-job outcomes."""
        started = time.monotonic()
        unique: Dict[str, SimJob] = {}
        duplicates = 0
        for job in jobs:
            if job.key in unique:
                duplicates += 1
            else:
                unique[job.key] = job
        self._total = len(unique)
        self._done = 0
        outcomes: Dict[str, JobOutcome] = {}
        pending: List[str] = []
        for key, job in unique.items():
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                self._finish(outcomes, key,
                             JobOutcome(job, "cached", cached,
                                        worker="cache"))
            else:
                pending.append(key)
        # Workload-major order maximises per-process trace-memo reuse.
        pending.sort(key=lambda k: (unique[k].workload, unique[k].scale,
                                    unique[k].seed))
        if pending:
            # The pool path is also what enforces per-job timeouts, so a
            # single pending job still goes parallel when one is set.
            if self.jobs > 1 and (len(pending) > 1
                                  or self.timeout is not None):
                if self.batch > 1:
                    self._run_pool_batched(unique, pending, outcomes,
                                           execute)
                else:
                    self._run_pool(unique, pending, outcomes, execute)
            else:
                self._run_inline(unique, pending, outcomes, execute)
        ordered = {key: outcomes[key] for key in unique}
        return EngineReport(ordered, time.monotonic() - started,
                            duplicates, self.jobs)

    # -- bookkeeping --------------------------------------------------------

    def _finish(self, outcomes: Dict[str, JobOutcome], key: str,
                outcome: JobOutcome) -> None:
        outcomes[key] = outcome
        self._done += 1
        if outcome.status == "ran" and self.cache is not None:
            self.cache.put(key, outcome.result,
                           meta=outcome.job.describe())
        if self.progress is not None:
            self.progress(outcome.status, outcome, self._done, self._total)

    # -- sequential path ----------------------------------------------------

    def _run_inline(self, unique: Dict[str, SimJob], pending: List[str],
                    outcomes: Dict[str, JobOutcome],
                    execute: Callable[[SimJob], SimResult]) -> None:
        for key in pending:
            job = unique[key]
            t0 = time.monotonic()
            try:
                result = execute(job)
            except Exception as exc:  # noqa: BLE001 - recorded, not hidden
                self._finish(outcomes, key,
                             JobOutcome(job, "failed", None,
                                        time.monotonic() - t0, 1, "inline",
                                        f"{type(exc).__name__}: {exc}"))
            else:
                self._finish(outcomes, key,
                             JobOutcome(job, "ran", result,
                                        time.monotonic() - t0, 1, "inline"))

    # -- parallel path ------------------------------------------------------

    def _make_pool(self) -> Optional[ProcessPoolExecutor]:
        try:
            return ProcessPoolExecutor(max_workers=self.jobs)
        except Exception:  # noqa: BLE001 - no multiprocessing available
            return None

    @staticmethod
    def _stop_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down even when a worker is hung."""
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # pragma: no cover - Python < 3.9
            pool.shutdown(wait=False)
        except Exception:  # noqa: BLE001
            pass
        procs = getattr(pool, "_processes", None) or {}
        for proc in list(procs.values()):
            try:
                proc.terminate()
            except Exception:  # noqa: BLE001
                pass

    def _rebuild_pool(self, pool: Optional[ProcessPoolExecutor]
                      ) -> Optional[ProcessPoolExecutor]:
        if pool is not None:
            self._stop_pool(pool)
        self._rebuilds += 1
        if self._rebuilds > self.max_pool_rebuilds:
            return None
        return self._make_pool()

    def _run_pool_batched(self, unique: Dict[str, SimJob],
                          pending: List[str],
                          outcomes: Dict[str, JobOutcome],
                          execute: Callable[[SimJob], SimResult]) -> None:
        """Chunked fan-out: ``batch`` jobs per worker round trip.

        One submission amortizes IPC plus the worker's warm per-process
        state (trace memo, specialized-kernel cache).  This loop only
        handles the happy path; any anomaly — a worker death, a blown
        deadline, a per-job error — routes the affected keys back
        through the proven single-job pool machinery, which owns
        retries and pool rebuilds.
        """
        pool = self._make_pool()
        if pool is None:
            self._run_inline(unique, pending, outcomes, execute)
            return
        chunks = deque(
            pending[i:i + self.batch]
            for i in range(0, len(pending), self.batch))
        in_flight: Dict[object, tuple] = {}  # future -> (keys, t0, ddl)
        fallback: List[str] = []
        try:
            while chunks or in_flight:
                while chunks and len(in_flight) < self.jobs:
                    chunk = chunks.popleft()
                    now = time.monotonic()
                    deadline = (now + self.timeout * len(chunk)
                                if self.timeout is not None else None)
                    try:
                        future = pool.submit(
                            run_job_batch, execute,
                            [unique[key] for key in chunk])
                    except Exception:  # noqa: BLE001 - pool broken
                        fallback.extend(chunk)
                        continue
                    in_flight[future] = (chunk, now, deadline)
                if not in_flight:
                    continue
                wait_for = None
                now = time.monotonic()
                deadlines = [d for (_k, _t, d) in in_flight.values()
                             if d is not None]
                if deadlines:
                    wait_for = max(0.0, min(deadlines) - now)
                done, _ = wait(set(in_flight), timeout=wait_for,
                               return_when=FIRST_COMPLETED)
                anomaly = False
                for future in done:
                    chunk, _t0, _deadline = in_flight.pop(future)
                    try:
                        statuses = future.result()
                    except Exception:  # noqa: BLE001 - incl. broken pool
                        anomaly = True
                        fallback.extend(chunk)
                        continue
                    for key, (status, payload, wall) in zip(chunk,
                                                            statuses):
                        if status == "ok":
                            self._finish(outcomes, key,
                                         JobOutcome(unique[key], "ran",
                                                    payload, wall, 1,
                                                    "pool"))
                        else:
                            # Give the failure the single-job path's
                            # full retry budget.
                            fallback.append(key)
                if not done:
                    now = time.monotonic()
                    if any(d is not None and now >= d
                           for (_k, _t, d) in in_flight.values()):
                        anomaly = True
                if anomaly:
                    for _future, (chunk, _t0, _d) in in_flight.items():
                        fallback.extend(chunk)
                    in_flight.clear()
                    while chunks:
                        fallback.extend(chunks.popleft())
        finally:
            self._stop_pool(pool)
        if fallback:
            self._run_pool(unique, fallback, outcomes, execute)

    def _run_pool(self, unique: Dict[str, SimJob], pending: List[str],
                  outcomes: Dict[str, JobOutcome],
                  execute: Callable[[SimJob], SimResult]) -> None:
        pool = self._make_pool()
        if pool is None:
            self._run_inline(unique, pending, outcomes, execute)
            return
        queue = deque(pending)
        attempts: Dict[str, int] = {key: 0 for key in pending}
        in_flight: Dict[object, tuple] = {}  # future -> (key, t0, deadline)
        inline_later: List[str] = []
        try:
            while queue or in_flight:
                if pool is None:
                    inline_later.extend(queue)
                    queue.clear()
                    break
                while queue and len(in_flight) < self.jobs:
                    key = queue.popleft()
                    attempts[key] += 1
                    now = time.monotonic()
                    deadline = (now + self.timeout
                                if self.timeout is not None else None)
                    try:
                        future = pool.submit(execute, unique[key])
                    except Exception:  # noqa: BLE001 - pool already broken
                        pool = self._rebuild_pool(pool)
                        queue.appendleft(key)
                        attempts[key] -= 1
                        break
                    in_flight[future] = (key, now, deadline)
                if not in_flight:
                    continue
                wait_for = None
                now = time.monotonic()
                deadlines = [d for (_k, _t, d) in in_flight.values()
                             if d is not None]
                if deadlines:
                    wait_for = max(0.0, min(deadlines) - now)
                done, _ = wait(set(in_flight), timeout=wait_for,
                               return_when=FIRST_COMPLETED)
                if done:
                    broke = False
                    for future in done:
                        key, t0, _deadline = in_flight.pop(future)
                        job = unique[key]
                        wall = time.monotonic() - t0
                        try:
                            result = future.result()
                        except BrokenProcessPool:
                            broke = True
                            queue.appendleft(key)
                            break
                        except Exception as exc:  # noqa: BLE001
                            if attempts[key] <= self.retries:
                                queue.append(key)
                            else:
                                self._finish(
                                    outcomes, key,
                                    JobOutcome(job, "failed", None, wall,
                                               attempts[key], "pool",
                                               f"{type(exc).__name__}: "
                                               f"{exc}"))
                        else:
                            self._finish(outcomes, key,
                                         JobOutcome(job, "ran", result,
                                                    wall, attempts[key],
                                                    "pool"))
                    if broke:
                        # Every other in-flight future died with the pool.
                        for future, (key, _t0, _d) in in_flight.items():
                            if attempts[key] <= self.retries:
                                queue.append(key)
                            else:
                                inline_later.append(key)
                        in_flight.clear()
                        pool = self._rebuild_pool(pool)
                    continue
                # wait() timed out: at least one job blew its deadline.
                now = time.monotonic()
                expired = [f for f, (_k, _t, d) in in_flight.items()
                           if d is not None and now >= d]
                if not expired:
                    continue
                for future in expired:
                    key, t0, _d = in_flight.pop(future)
                    job = unique[key]
                    if attempts[key] <= self.retries:
                        queue.append(key)
                    else:
                        self._finish(outcomes, key,
                                     JobOutcome(job, "timeout", None,
                                                now - t0, attempts[key],
                                                "pool",
                                                f"exceeded {self.timeout}s"))
                # The hung worker poisons its slot; survivors are requeued
                # (no attempt charged) and the pool is rebuilt.
                for future, (key, _t0, _d) in in_flight.items():
                    attempts[key] -= 1
                    queue.appendleft(key)
                in_flight.clear()
                pool = self._rebuild_pool(pool)
        finally:
            if pool is not None:
                self._stop_pool(pool)
        if inline_later:
            # Workers died repeatedly on these jobs: last resort inline.
            self._run_inline(unique, inline_later, outcomes, execute)


class RuntimeSession:
    """The facade ``experiments.common`` and the CLIs build on.

    Owns the cache handle and the engine knobs; ``simulate`` is the
    single-job fast path ``run_sim`` uses, ``prewarm`` is the batch
    entry the experiment runner uses to fill the cache in parallel.
    """

    def __init__(self, jobs: int = 1, cache_dir: Optional[str] = None,
                 no_cache: bool = False, timeout: Optional[float] = None,
                 retries: int = 1, progress: Optional[ProgressFn] = None,
                 batch: int = 1):
        self.jobs = max(1, jobs)
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self.batch = max(1, batch)
        self.salt = code_salt()
        if no_cache:
            self.cache: Optional[ResultCache] = None
        elif cache_dir:
            self.cache = ResultCache(cache_dir, self.salt)
        elif os.environ.get("REPRO_CACHE_DIR"):
            self.cache = ResultCache(os.environ["REPRO_CACHE_DIR"],
                                     self.salt)
        else:
            self.cache = None

    def engine(self) -> JobEngine:
        """A fresh engine with this session's knobs."""
        return JobEngine(jobs=self.jobs, cache=self.cache,
                         timeout=self.timeout, retries=self.retries,
                         progress=self.progress, batch=self.batch)

    def simulate(self, job: SimJob) -> SimResult:
        """Run one job inline, going through the cache."""
        if self.cache is not None:
            cached = self.cache.get(job.key)
            if cached is not None:
                return cached
        result = execute_job(job)
        if self.cache is not None:
            self.cache.put(job.key, result, meta=job.describe())
        return result

    def prewarm(self, jobs: Iterable[SimJob],
                execute: Callable[[SimJob], SimResult] = execute_job
                ) -> EngineReport:
        """Dedupe + fan out *jobs*, filling the cache; returns the report."""
        return self.engine().run(jobs, execute=execute)
